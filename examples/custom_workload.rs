//! Building a custom synthetic workload and studying its optimal core.
//!
//! The nine built-in profiles are calibrated to the paper's suite, but the
//! workload model is fully parameterized: this example constructs a
//! hypothetical streaming-analytics kernel (wide vectorizable loops over a
//! multi-megabyte working set with highly predictable control flow),
//! checks its simulated character, and finds its efficiency-optimal core
//! with the regression models.
//!
//! Run with: `cargo run --release --example custom_workload`

use udse::core::model::PaperModels;
use udse::core::oracle::{Metrics, Oracle};
use udse::core::space::{DesignPoint, DesignSpace};
use udse::sim::Simulator;
use udse::trace::{Benchmark, InstructionMix, Trace, TraceGenerator, WorkloadProfile};

/// An oracle for a hand-built workload profile.
struct CustomOracle {
    profile: WorkloadProfile,
    trace_len: usize,
}

impl Oracle for CustomOracle {
    fn evaluate(&self, _b: Benchmark, p: &DesignPoint) -> Metrics {
        let gen = TraceGenerator::with_profile(self.profile.clone(), 99);
        let trace = Trace::from_instructions(Benchmark::Jbb, gen.take(self.trace_len).collect());
        let r = Simulator::new(p.to_machine_config()).run_with_warmup(&trace, self.trace_len / 4);
        Metrics { bips: r.bips, watts: r.watts }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A streaming-analytics kernel: ILP-rich, fp-light, working set far
    // beyond any L2, but with strong spatial streaming.
    let profile = WorkloadProfile {
        mix: InstructionMix::new(0.40, 0.10, 0.30, 0.10, 0.10),
        dep_mean: 14.0,
        second_src_frac: 0.5,
        branch_sites: 64,
        branch_entropy: 0.02,
        hard_branch_frac: 0.01,
        data_footprint: 60_000,
        data_alpha: 1.2,
        data_cold_frac: 0.30, // heavy streaming component
        code_footprint: 64,
        code_alpha: 1.8,
        code_cold_frac: 0.0005,
        pointer_chase_frac: 0.0,
        data_far_band: None,
    };
    profile.validate();

    // Inspect its simulated character at the baseline.
    let oracle = CustomOracle { profile, trace_len: 40_000 };
    let baseline = udse::core::baseline::baseline_point();
    let base = oracle.evaluate(Benchmark::Jbb, &baseline);
    println!(
        "baseline character: {:.2} bips @ {:.1} W (bips^3/w = {:.4})",
        base.bips,
        base.watts,
        base.bips_cubed_per_watt()
    );

    // Train models against this oracle and locate the optimal core.
    let samples = DesignSpace::paper().sample_uar(250, 5);
    println!("simulating {} samples of the custom workload...", samples.len());
    let models = PaperModels::train(&oracle, Benchmark::Jbb, &samples)?;
    println!(
        "model quality: perf R^2 = {:.3}, power R^2 = {:.3}",
        models.performance_model().r_squared(),
        models.power_model().r_squared()
    );

    let best =
        udse::core::search::random_restart_hill_climb(&DesignSpace::exploration(), 12, 3, |p| {
            models.predict_efficiency(p)
        });
    let p = best.best;
    println!(
        "predicted optimal core: {} FO4, width {}, {} GPR, I$ {}K, D$ {}K, L2 {}K",
        p.fo4(),
        p.decode_width(),
        p.gpr(),
        p.il1_kb(),
        p.dl1_kb(),
        p.l2_kb()
    );
    let check = oracle.evaluate(Benchmark::Jbb, &p);
    println!(
        "simulated at the optimum: {:.2} bips @ {:.1} W -> {:.2}x baseline efficiency",
        check.bips,
        check.watts,
        check.bips_cubed_per_watt() / base.bips_cubed_per_watt()
    );
    Ok(())
}
