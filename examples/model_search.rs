//! Heuristic search with regression models (the paper's §8 direction):
//! find a benchmark's bips^3/w-optimal design without evaluating all
//! 262,500 points.
//!
//! Run with: `cargo run --release --example model_search [bench]`

use udse::core::model::PaperModels;
use udse::core::oracle::SimOracle;
use udse::core::search::{hill_climb, random_restart_hill_climb, simulated_annealing};
use udse::core::space::DesignSpace;
use udse::trace::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench: Benchmark =
        std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(Benchmark::Twolf);

    let oracle = SimOracle::with_trace_len(50_000);
    let samples = DesignSpace::paper().sample_uar(400, 21);
    println!("training {bench} models on {} simulated samples...", samples.len());
    let models = PaperModels::train(&oracle, bench, &samples)?;
    let space = DesignSpace::exploration();
    let objective = |p: &udse::core::space::DesignPoint| models.predict_efficiency(p);

    // Reference: exhaustive prediction (cheap with a model, impossible
    // with a simulator).
    let t0 = std::time::Instant::now();
    let exhaustive = space.iter().map(|p| objective(&p)).fold(f64::NEG_INFINITY, f64::max);
    println!(
        "exhaustive optimum: {exhaustive:.5} ({} evaluations, {:.1}s)",
        space.len(),
        t0.elapsed().as_secs_f64()
    );

    // Single hill climb from the space's first corner.
    let hc1 = hill_climb(&space, space.decode(0).unwrap(), objective);
    println!(
        "single hill climb:  {:.5} = {:.1}% of optimum  ({} evaluations)",
        hc1.best_value,
        100.0 * hc1.best_value / exhaustive,
        hc1.evaluations
    );

    // Multistart hill climbing.
    let hc = random_restart_hill_climb(&space, 20, 7, objective);
    println!(
        "20-restart climb:   {:.5} = {:.1}% of optimum  ({} evaluations)",
        hc.best_value,
        100.0 * hc.best_value / exhaustive,
        hc.evaluations
    );
    println!(
        "  best design: {} FO4, width {}, {} GPR, I$ {}K, D$ {}K, L2 {}K",
        hc.best.fo4(),
        hc.best.decode_width(),
        hc.best.gpr(),
        hc.best.il1_kb(),
        hc.best.dl1_kb(),
        hc.best.l2_kb()
    );

    // Simulated annealing with a budget similar to the climbs.
    let sa = simulated_annealing(&space, 20_000, exhaustive.abs() * 0.2, 3, objective);
    println!(
        "annealing:          {:.5} = {:.1}% of optimum  ({} evaluations)",
        sa.best_value,
        100.0 * sa.best_value / exhaustive,
        sa.evaluations
    );
    println!(
        "\nthe heuristics reach the optimum with ~{}x fewer objective evaluations",
        space.len() / hc.evaluations.max(1)
    );
    Ok(())
}
