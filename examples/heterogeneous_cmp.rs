//! Heterogeneous multiprocessor design (the paper's §6 study).
//!
//! Finds each benchmark's predicted bips^3/w-optimal core, clusters the
//! optima with K-means into K compromise cores, and reports the
//! efficiency gains over a homogeneous baseline as K grows.
//!
//! Run with: `cargo run --release --example heterogeneous_cmp`

use udse::core::oracle::SimOracle;
use udse::core::studies::heterogeneity::{
    compromise_clusters, predicted_gains, BenchmarkArchitectures,
};
use udse::core::studies::{StudyConfig, TrainedSuite};
use udse::core::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Reduced scale so the example runs in tens of seconds.
    let mut config = StudyConfig::quick();
    config.train_samples = 300;
    config.eval_stride = 50;
    let oracle = SimOracle::with_trace_len(50_000);

    println!("training 9 benchmark model pairs ({} samples each)...", config.train_samples);
    let suite = TrainedSuite::train(&oracle, &config)?;

    println!("locating per-benchmark bips^3/w optima...");
    let engine = Engine::new(suite.clone(), &config);
    let optima = BenchmarkArchitectures::find(&engine);
    for (b, p) in &optima.optima {
        println!(
            "  {:8} -> {} FO4, width {}, {} GPR, I$ {}K, D$ {}K, L2 {}K",
            b.name(),
            p.fo4(),
            p.decode_width(),
            p.gpr(),
            p.il1_kb(),
            p.dl1_kb(),
            p.l2_kb()
        );
    }

    println!("\nK=4 compromise cores (K-means in normalized parameter space):");
    for (i, c) in compromise_clusters(&suite, &optima, 4, 64).iter().enumerate() {
        let members: Vec<&str> = c.members.iter().map(|b| b.name()).collect();
        println!(
            "  core {}: {} FO4, width {}, L2 {}K  <- {}",
            i + 1,
            c.architecture.fo4(),
            c.architecture.decode_width(),
            c.architecture.l2_kb(),
            members.join(", ")
        );
    }

    println!("\nefficiency gain vs baseline as heterogeneity grows:");
    let gains = predicted_gains(&suite, &optima, 64);
    for (k, avg) in gains.k_values.iter().zip(gains.averages()) {
        let bar = "#".repeat((avg * 20.0) as usize);
        println!("  K={k}: {avg:>5.2}x {bar}");
    }
    println!("\ntheoretical upper bound (one core per benchmark): {:.2}x", gains.upper_bound());
    Ok(())
}
