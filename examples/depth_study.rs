//! Pipeline depth study (the paper's §5): how a constrained depth sweep
//! differs from letting every other parameter vary.
//!
//! Run with: `cargo run --release --example depth_study`

use udse::core::oracle::SimOracle;
use udse::core::studies::depth::DepthStudy;
use udse::core::studies::{StudyConfig, TrainedSuite};
use udse::core::Engine;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = StudyConfig::quick();
    config.train_samples = 300;
    config.eval_stride = 25;
    let oracle = SimOracle::with_trace_len(50_000);

    println!("training models on {} simulated samples x 9 benchmarks...", config.train_samples);
    let suite = TrainedSuite::train(&oracle, &config)?;

    println!("running depth study ({} designs per depth)...", 37_500 / config.eval_stride);
    let engine = Engine::new(suite, &config);
    let study = DepthStudy::run(&engine);

    println!("\nefficiency relative to the original bips^3/w optimum:");
    println!(
        "{:>5} {:>10} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "FO4", "orig_line", "q1", "median", "q3", "bound", "%>orig_opt"
    );
    for (i, &d) in study.depths.iter().enumerate() {
        let bp = &study.enhanced_boxplots[i];
        println!(
            "{d:>5} {:>10.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>11.1}%",
            study.original_relative[i],
            bp.q1,
            bp.median,
            bp.q3,
            bp.max,
            study.fraction_above_original[i] * 100.0
        );
    }
    println!(
        "\nconstrained (original) optimum: {} FO4; unconstrained bound optimum: {} FO4",
        study.optimal_original_depth(),
        study.optimal_bound_depth()
    );

    println!("\nbound architectures per depth (what the best designs look like):");
    for (d, p) in study.depths.iter().zip(&study.bound_points) {
        println!(
            "  {d:>2} FO4 -> width {}, {} GPR, resv {} FX, I$ {}K, D$ {}K, L2 {}K",
            p.decode_width(),
            p.gpr(),
            p.resv_fx(),
            p.il1_kb(),
            p.dl1_kb(),
            p.l2_kb()
        );
    }

    println!("\nD-L1 sizes among the top 5% designs at each depth (the paper's Fig 5b):");
    for (d, h) in study.depths.iter().zip(&study.dcache_top_percentile) {
        let mut parts = Vec::new();
        for kb in [8u64, 16, 32, 64, 128] {
            parts.push(format!("{kb}K:{:.0}%", h.fraction(kb) * 100.0));
        }
        println!("  {d:>2} FO4 -> {}", parts.join("  "));
    }
    Ok(())
}
