//! Pareto frontier exploration (the paper's §4 study on one benchmark).
//!
//! Trains models for a memory-bound benchmark (`mcf`), exhaustively
//! characterizes the 262,500-point exploration space, extracts the
//! power-delay pareto frontier, and validates several frontier designs
//! against the simulator.
//!
//! Run with: `cargo run --release --example pareto_explorer [bench]`

use udse::core::model::PaperModels;
use udse::core::oracle::{Oracle, SimOracle};
use udse::core::pareto::ParetoFrontier;
use udse::core::space::DesignSpace;
use udse::trace::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench: Benchmark =
        std::env::args().nth(1).map(|s| s.parse()).transpose()?.unwrap_or(Benchmark::Mcf);

    let oracle = SimOracle::with_trace_len(50_000);
    let samples = DesignSpace::paper().sample_uar(400, 7);
    println!("training {bench} models on {} simulated samples...", samples.len());
    let models = PaperModels::train(&oracle, bench, &samples)?;

    // Exhaustive characterization: every design's predicted delay/power.
    let space = DesignSpace::exploration();
    let t0 = std::time::Instant::now();
    let points: Vec<(f64, f64)> = space
        .iter()
        .map(|p| {
            let m = models.predict_metrics(&p);
            (m.delay_seconds(), m.watts)
        })
        .collect();
    println!(
        "characterized {} designs in {:.1}s (the paper's 'fewer than four hours' \
         per benchmark, via regression)",
        points.len(),
        t0.elapsed().as_secs_f64()
    );

    let frontier = ParetoFrontier::from_points(&points, 100);
    println!("pareto frontier: {} designs", frontier.len());
    println!("\n{:>12} {:>9} {:>8}  design", "delay(s)", "power(W)", "sim(W)");
    for (&idx, &(delay, power)) in
        frontier.indices().iter().zip(frontier.points()).step_by(frontier.len().div_ceil(12))
    {
        let point = space.decode(idx as u64).expect("frontier index valid");
        let sim = oracle.evaluate(bench, &point);
        println!(
            "{delay:>12.3} {power:>9.1} {:>8.1}  {}fo4/w{} regs{} I${}K D${}K L2-{}K",
            sim.watts,
            point.fo4(),
            point.decode_width(),
            point.gpr(),
            point.il1_kb(),
            point.dl1_kb(),
            point.l2_kb()
        );
    }

    // The knee of the curve: the bips^3/w optimum.
    let (best_idx, _) = points
        .iter()
        .enumerate()
        .max_by(|a, b| {
            let ea = (1.0 / a.1 .0).powi(3) / a.1 .1;
            let eb = (1.0 / b.1 .0).powi(3) / b.1 .1;
            ea.total_cmp(&eb)
        })
        .expect("non-empty space");
    let best = space.decode(best_idx as u64).expect("index valid");
    println!(
        "\nbips^3/w optimum: {} FO4, width {}, {} GPR, L2 {} KB",
        best.fo4(),
        best.decode_width(),
        best.gpr(),
        best.l2_kb()
    );
    Ok(())
}
