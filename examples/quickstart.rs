//! Quickstart: train the paper's regression models for one benchmark and
//! predict performance/power across the design space.
//!
//! Run with: `cargo run --release --example quickstart`

use udse::core::model::PaperModels;
use udse::core::oracle::{Oracle, SimOracle};
use udse::core::space::DesignSpace;
use udse::trace::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The Table 1 design space: 375,000 sampling points.
    let space = DesignSpace::paper();
    println!("design space: {} points", space.len());

    // 2. Sample uniformly at random and simulate each sampled design.
    //    (The paper uses 1,000 samples; 300 keeps this example snappy.)
    let oracle = SimOracle::with_trace_len(50_000);
    let samples = space.sample_uar(300, 42);
    println!("simulating {} samples of gzip...", samples.len());

    // 3. Fit the paper's sqrt/log spline models.
    let models = PaperModels::train(&oracle, Benchmark::Gzip, &samples)?;
    println!(
        "performance model R^2 = {:.3}, power model R^2 = {:.3}",
        models.performance_model().r_squared(),
        models.power_model().r_squared()
    );

    // 4. Predict any design instantly — here, the POWER4-like baseline
    //    region vs an aggressive deep/wide machine.
    let exploration = DesignSpace::exploration();
    let baseline = udse::core::baseline::baseline_point();
    let aggressive = exploration
        .iter()
        .find(|p| p.fo4() == 12 && p.decode_width() == 8 && p.l2_kb() == 4096)
        .expect("aggressive corner exists");
    for (name, p) in [("baseline-like", baseline), ("deep/wide corner", aggressive)] {
        let m = models.predict_metrics(&p);
        println!(
            "{name:>18}: predicted {:.2} bips @ {:.1} W (bips^3/w = {:.4})",
            m.bips,
            m.watts,
            m.bips_cubed_per_watt()
        );
    }

    // 5. Check one prediction against the simulator.
    let sim = oracle.evaluate(Benchmark::Gzip, &baseline);
    let pred = models.predict_metrics(&baseline);
    println!(
        "baseline check: simulated {:.2} bips / {:.1} W, predicted {:.2} bips / {:.1} W",
        sim.bips, sim.watts, pred.bips, pred.watts
    );
    Ok(())
}
