set terminal pngcairo size 900,600
set output 'fig5a.png'
set datafile separator ','
set key autotitle columnheader
set title 'Figure 5a: efficiency vs pipeline depth'
set xlabel 'FO4 per stage'
set ylabel 'relative bips^3/w'
set key bottom
plot 'fig5a.csv' using 1:4:3:7 with yerrorbars title 'enhanced (q1..q3 around median)', '' using 1:2 with linespoints lw 2 title 'original analysis', '' using 1:8 with linespoints title 'bound architecture'
