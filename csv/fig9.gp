set terminal pngcairo size 900,600
set output 'fig9.png'
set datafile separator ','
set key autotitle columnheader
set title 'Figure 9: efficiency gain vs heterogeneity (cluster count)'
set xlabel 'clusters (K)'
set ylabel 'bips^3/w gain vs baseline'
set key left
plot 'fig9.csv' using 1:3 with points pt 7 ps 0.5 title 'per-benchmark predicted', '' using 1:4 with points pt 6 ps 0.5 title 'per-benchmark simulated'
