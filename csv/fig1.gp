set terminal pngcairo size 900,600
set output 'fig1.png'
set datafile separator ','
set key autotitle columnheader
set title 'Figure 1: median prediction error per benchmark'
set ylabel 'median |obs-pred|/pred'
set style data histogram
set style histogram clustered
set style fill solid 0.7
set yrange [0:*]
plot 'fig1.csv' using 2:xtic(1) title 'performance', '' using 5 title 'power'
