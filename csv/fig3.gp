set terminal pngcairo size 900,600
set output 'fig3.png'
set datafile separator ','
set key autotitle columnheader
set title 'Figure 3: pareto frontier, predicted vs simulated'
set xlabel 'delay (s per 10^9 instructions)'
set ylabel 'power (W)'
plot 'fig3.csv' using 2:3 with points pt 7 title 'predicted', '' using 4:5 with points pt 6 title 'simulated'
