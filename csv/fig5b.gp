set terminal pngcairo size 900,600
set output 'fig5b.png'
set datafile separator ','
set key autotitle columnheader
set title 'Figure 5b: D-L1 sizes among top designs per depth'
set xlabel 'FO4 per stage'
set ylabel 'fraction of 95th-percentile designs'
set key outside
plot for [kb in '8 16 32 64 128'] '<awk -F, -v k='.kb.' "$2==k" fig5b.csv' using 1:3 with linespoints title kb.' KB'
