use crate::quantiles::quantile_sorted;

/// Boxplot statistics as defined in the paper (§3.4):
///
/// 1. horizontal lines at the median and the upper/lower quartiles,
/// 2. whiskers drawn to the most extreme data points within 1.5 IQR of the
///    upper/lower quartile,
/// 3. points beyond the whiskers are outliers.
///
/// # Examples
///
/// ```
/// use udse_stats::Boxplot;
///
/// let bp = Boxplot::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0, 50.0]);
/// assert_eq!(bp.q1, 2.25);
/// assert_eq!(bp.q3, 4.75);
/// assert_eq!(bp.outliers, vec![50.0]);
/// assert_eq!(bp.upper_whisker, 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Boxplot {
    /// Lower quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Upper quartile (75th percentile).
    pub q3: f64,
    /// Most extreme sample within `q1 - 1.5 * IQR`.
    pub lower_whisker: f64,
    /// Most extreme sample within `q3 + 1.5 * IQR`.
    pub upper_whisker: f64,
    /// Samples beyond the whiskers, in ascending order.
    pub outliers: Vec<f64>,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

impl Boxplot {
    /// Computes boxplot statistics for a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains NaN.
    pub fn from_samples(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "boxplot of empty sample");
        let mut sorted: Vec<f64> = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in boxplot input"));
        let q1 = quantile_sorted(&sorted, 0.25);
        let med = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let lower_whisker = sorted.iter().copied().find(|&x| x >= lo_fence).unwrap_or(sorted[0]);
        let upper_whisker = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(*sorted.last().expect("non-empty"));
        let outliers: Vec<f64> =
            sorted.iter().copied().filter(|&x| x < lo_fence || x > hi_fence).collect();
        Boxplot {
            q1,
            median: med,
            q3,
            lower_whisker,
            upper_whisker,
            outliers,
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            n: sorted.len(),
        }
    }

    /// Interquartile range `q3 - q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Renders a one-line textual summary, convenient for the `repro`
    /// harness output.
    pub fn to_row(&self) -> String {
        format!(
            "min={:.4} whisk_lo={:.4} q1={:.4} med={:.4} q3={:.4} whisk_hi={:.4} max={:.4} outliers={}",
            self.min, self.lower_whisker, self.q1, self.median, self.q3, self.upper_whisker,
            self.max, self.outliers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_outliers_whiskers_are_extremes() {
        let bp = Boxplot::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(bp.median, 3.0);
        assert_eq!(bp.q1, 2.0);
        assert_eq!(bp.q3, 4.0);
        assert_eq!(bp.lower_whisker, 1.0);
        assert_eq!(bp.upper_whisker, 5.0);
        assert!(bp.outliers.is_empty());
    }

    #[test]
    fn outliers_detected_both_sides() {
        let bp = Boxplot::from_samples(&[-100.0, 1.0, 2.0, 3.0, 4.0, 5.0, 100.0]);
        assert_eq!(bp.outliers, vec![-100.0, 100.0]);
        assert_eq!(bp.lower_whisker, 1.0);
        assert_eq!(bp.upper_whisker, 5.0);
    }

    #[test]
    fn whiskers_inside_fences() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 20.0];
        let bp = Boxplot::from_samples(&xs);
        let hi_fence = bp.q3 + 1.5 * bp.iqr();
        assert!(bp.upper_whisker <= hi_fence);
        assert!(bp.outliers.iter().all(|&x| x > hi_fence));
    }

    #[test]
    fn constant_sample_degenerates_gracefully() {
        let bp = Boxplot::from_samples(&[2.0; 10]);
        assert_eq!(bp.median, 2.0);
        assert_eq!(bp.iqr(), 0.0);
        assert_eq!(bp.lower_whisker, 2.0);
        assert_eq!(bp.upper_whisker, 2.0);
        assert!(bp.outliers.is_empty());
    }

    #[test]
    fn single_sample() {
        let bp = Boxplot::from_samples(&[3.5]);
        assert_eq!(bp.median, 3.5);
        assert_eq!(bp.n, 1);
        assert!(bp.outliers.is_empty());
    }

    #[test]
    fn to_row_is_nonempty() {
        let bp = Boxplot::from_samples(&[1.0, 2.0]);
        assert!(bp.to_row().contains("med="));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = Boxplot::from_samples(&[]);
    }
}
