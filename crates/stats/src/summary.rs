/// One-pass summary of a sample: count, mean, variance, extremes.
///
/// Uses Welford's algorithm so it is stable for long accumulations and can
/// be built incrementally from an iterator.
///
/// # Examples
///
/// ```
/// use udse_stats::Summary;
///
/// let s: Summary = [1.0, 2.0, 3.0, 4.0].iter().copied().collect();
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (n-1 denominator); 0 when fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observation.
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty.
    pub fn min(&self) -> f64 {
        assert!(self.n > 0, "min of empty summary");
        self.min
    }

    /// Maximum observation.
    ///
    /// # Panics
    ///
    /// Panics if the summary is empty.
    pub fn max(&self) -> f64 {
        assert!(self.n > 0, "max of empty summary");
        self.max
    }

    /// Builds a summary from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        xs.iter().copied().collect()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_mean_and_variance() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance = 32/7.
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_min_panics() {
        let _ = Summary::new().min();
    }

    #[test]
    fn extend_matches_collect() {
        let mut a = Summary::new();
        a.extend([1.0, 2.0, 3.0]);
        let b: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        assert!((a.mean() - b.mean()).abs() < 1e-15);
        assert!((a.sample_variance() - b.sample_variance()).abs() < 1e-15);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn welford_is_stable_for_shifted_data() {
        // Large offset: naive sum-of-squares would lose precision.
        let base = 1e9;
        let s = Summary::from_slice(&[base + 1.0, base + 2.0, base + 3.0]);
        assert!((s.sample_variance() - 1.0).abs() < 1e-6);
    }
}
