/// Computes the `p`-th sample quantile (R type-7, linear interpolation),
/// the default estimator in the R environment the paper uses.
///
/// # Panics
///
/// Panics if `xs` is empty, `p` is outside `[0, 1]`, or any value is NaN.
///
/// # Examples
///
/// ```
/// use udse_stats::quantile;
///
/// let xs = [3.0, 1.0, 2.0, 4.0];
/// assert_eq!(quantile(&xs, 0.0), 1.0);
/// assert_eq!(quantile(&xs, 0.5), 2.5);
/// assert_eq!(quantile(&xs, 1.0), 4.0);
/// ```
pub fn quantile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&p), "quantile probability must be in [0, 1]");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, p)
}

/// Computes several quantiles of the same sample, sorting only once.
///
/// # Panics
///
/// Same conditions as [`quantile`].
pub fn quantiles(xs: &[f64], ps: &[f64]) -> Vec<f64> {
    assert!(!xs.is_empty(), "quantile of empty sample");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    ps.iter()
        .map(|&p| {
            assert!((0.0..=1.0).contains(&p), "quantile probability must be in [0, 1]");
            quantile_sorted(&sorted, p)
        })
        .collect()
}

/// Median of a sample; shorthand for `quantile(xs, 0.5)`.
///
/// # Panics
///
/// Panics if `xs` is empty or contains NaN.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

pub(crate) fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n as f64 - 1.0) * p;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn known_quartiles_match_r_type7() {
        // R: quantile(c(1,2,3,4,5), c(.25,.5,.75)) -> 2, 3, 4
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.25), 2.0);
        assert_eq!(quantile(&xs, 0.50), 3.0);
        assert_eq!(quantile(&xs, 0.75), 4.0);
        // R: quantile(c(1,2,3,4), .25) -> 1.75
        let ys = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&ys, 0.25), 1.75);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(median(&xs), 5.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 9.0);
    }

    #[test]
    fn quantiles_batch_matches_single() {
        let xs = [2.0, 8.0, 4.0, 6.0, 0.0, 10.0];
        let ps = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        let batch = quantiles(&xs, &ps);
        for (q, &p) in batch.iter().zip(&ps) {
            assert_eq!(*q, quantile(&xs, p));
        }
    }

    #[test]
    fn interpolation_is_linear() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.35), 3.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_p_panics() {
        let _ = quantile(&[1.0], 1.5);
    }
}
