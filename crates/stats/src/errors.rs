use crate::quantiles::quantile;
use crate::Boxplot;

/// The paper's prediction-error metric: `|obs - pred| / pred`
/// (§3.4, "the error is expressed as |obs-pred|/pred").
///
/// # Panics
///
/// Panics if `pred` is zero.
///
/// # Examples
///
/// ```
/// use udse_stats::rel_error;
///
/// assert!((rel_error(11.0, 10.0) - 0.1).abs() < 1e-12);
/// assert!((rel_error(9.0, 10.0) - 0.1).abs() < 1e-12);
/// ```
pub fn rel_error(obs: f64, pred: f64) -> f64 {
    assert!(pred != 0.0, "relative error undefined for zero prediction");
    ((obs - pred) / pred).abs()
}

/// Signed relative errors `(obs - pred) / pred` for paired samples, as
/// reported in the paper's Table 2 (negative = over-prediction).
///
/// # Panics
///
/// Panics if lengths differ or any prediction is zero.
pub fn signed_rel_errors(obs: &[f64], pred: &[f64]) -> Vec<f64> {
    assert_eq!(obs.len(), pred.len(), "paired samples must have equal length");
    obs.iter()
        .zip(pred)
        .map(|(&o, &p)| {
            assert!(p != 0.0, "relative error undefined for zero prediction");
            (o - p) / p
        })
        .collect()
}

/// Absolute relative errors for paired samples.
///
/// # Panics
///
/// Panics if lengths differ or any prediction is zero.
pub fn abs_rel_errors(obs: &[f64], pred: &[f64]) -> Vec<f64> {
    signed_rel_errors(obs, pred).into_iter().map(f64::abs).collect()
}

/// Median of the absolute relative errors — the headline accuracy number
/// the paper reports per benchmark (e.g. 7.2 % performance, 5.4 % power).
///
/// # Panics
///
/// Panics if the inputs are empty, lengths differ, or any prediction is
/// zero.
pub fn median_abs_rel_error(obs: &[f64], pred: &[f64]) -> f64 {
    let errs = abs_rel_errors(obs, pred);
    quantile(&errs, 0.5)
}

/// Aggregate description of a validation-error distribution, mirroring the
/// boxplot panels of Figures 1 and 4.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorSummary {
    /// Boxplot of the absolute relative errors.
    pub boxplot: Boxplot,
    /// Mean absolute relative error.
    pub mean: f64,
    /// 90th percentile of absolute relative error.
    pub p90: f64,
    /// Worst-case absolute relative error.
    pub max: f64,
}

impl ErrorSummary {
    /// Builds the summary from paired observations and predictions.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty, lengths differ, or any prediction is
    /// zero.
    pub fn from_pairs(obs: &[f64], pred: &[f64]) -> Self {
        let errs = abs_rel_errors(obs, pred);
        assert!(!errs.is_empty(), "error summary of empty sample");
        let boxplot = Boxplot::from_samples(&errs);
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let p90 = quantile(&errs, 0.9);
        let max = errs.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
        ErrorSummary { boxplot, mean, p90, max }
    }

    /// Median absolute relative error.
    pub fn median(&self) -> f64 {
        self.boxplot.median
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_error_symmetric_in_magnitude() {
        assert_eq!(rel_error(12.0, 10.0), rel_error(8.0, 10.0));
    }

    #[test]
    fn signed_errors_preserve_direction() {
        let e = signed_rel_errors(&[11.0, 9.0], &[10.0, 10.0]);
        assert!((e[0] - 0.1).abs() < 1e-12);
        assert!((e[1] + 0.1).abs() < 1e-12);
    }

    #[test]
    fn median_error_known() {
        let obs = [10.0, 10.0, 10.0];
        let pred = [10.0, 20.0, 8.0];
        // errors: 0, 0.5, 0.25 -> median 0.25
        assert!((median_abs_rel_error(&obs, &pred) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summary_fields_consistent() {
        let obs = [1.0, 2.0, 3.0, 4.0];
        let pred = [1.1, 1.9, 3.3, 3.6];
        let s = ErrorSummary::from_pairs(&obs, &pred);
        assert!(s.median() <= s.p90 + 1e-12);
        assert!(s.p90 <= s.max + 1e-12);
        assert!(s.mean > 0.0);
        assert_eq!(s.boxplot.n, 4);
    }

    #[test]
    #[should_panic(expected = "zero prediction")]
    fn zero_prediction_panics() {
        let _ = rel_error(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = signed_rel_errors(&[1.0], &[1.0, 2.0]);
    }
}
