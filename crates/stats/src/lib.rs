//! Descriptive statistics for design space studies.
//!
//! Implements exactly the statistical summaries the paper's figures are
//! built from:
//!
//! - [`quantile`]: sample quantiles (R type-7, the R default used by the
//!   paper's Hmisc/Design environment), medians and percentiles.
//! - [`Boxplot`]: the paper's §3.4 boxplot definition — median, quartiles,
//!   whiskers at the most extreme points within 1.5 IQR, and outliers.
//! - [`Summary`]: mean/variance/min/max one-pass summaries.
//! - [`rel_error`] and friends: the paper's `|obs - pred| / pred` error
//!   metric and aggregates over validation sets.
//! - [`pearson`] / [`spearman`]: correlation measures used for predictor
//!   screening.
//! - [`Histogram`]: binned counts for parameter-distribution figures
//!   (e.g. Figure 5b).
//!
//! # Examples
//!
//! ```
//! use udse_stats::{quantile, Boxplot};
//!
//! let xs = [1.0, 2.0, 3.0, 4.0, 100.0];
//! assert_eq!(quantile(&xs, 0.5), 3.0);
//! let bp = Boxplot::from_samples(&xs);
//! assert_eq!(bp.median, 3.0);
//! assert_eq!(bp.outliers, vec![100.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boxplot;
mod correlation;
mod errors;
mod histogram;
mod quantiles;
mod special;
mod summary;

pub use boxplot::Boxplot;
pub use correlation::{pearson, spearman};
pub use errors::{
    abs_rel_errors, median_abs_rel_error, rel_error, signed_rel_errors, ErrorSummary,
};
pub use histogram::Histogram;
pub use quantiles::{median, quantile, quantiles};
pub use special::{
    ln_gamma, mean_confidence_interval, regularized_incomplete_beta, student_t_cdf,
    student_t_quantile, two_sided_t_pvalue,
};
pub use summary::Summary;
