//! Special functions for statistical inference: log-gamma, the
//! regularized incomplete beta function, the Student-t distribution, and
//! confidence intervals built on them.
//!
//! Self-contained implementations (Lanczos approximation and Lentz's
//! continued fraction, as in Numerical Recipes) so the workspace needs no
//! external statistics dependency.

/// Two-sided p-value of a t statistic with `dof` degrees of freedom.
pub fn two_sided_t_pvalue(t: f64, dof: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    let p_one = 1.0 - student_t_cdf(t.abs(), dof);
    (2.0 * p_one).clamp(0.0, 1.0)
}

/// CDF of the Student-t distribution with `dof` degrees of freedom,
/// computed through the regularized incomplete beta function:
/// `P(T <= t) = 1 - I_{v/(v+t^2)}(v/2, 1/2) / 2` for `t >= 0`.
///
/// # Panics
///
/// Panics if `dof <= 0`.
pub fn student_t_cdf(t: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "degrees of freedom must be positive");
    if t == 0.0 {
        return 0.5;
    }
    let x = dof / (dof + t * t);
    let ib = regularized_incomplete_beta(0.5 * dof, 0.5, x);
    if t > 0.0 {
        1.0 - 0.5 * ib
    } else {
        0.5 * ib
    }
}

/// Quantile (inverse CDF) of the Student-t distribution, by bisection on
/// the monotone CDF.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)` or `dof <= 0`.
pub fn student_t_quantile(p: f64, dof: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0, 1)");
    assert!(dof > 0.0, "degrees of freedom must be positive");
    let (mut lo, mut hi) = (-1e6, 1e6);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, dof) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Two-sided confidence interval for the mean of a sample, using the
/// t distribution: `mean ± t_{(1+level)/2, n-1} * s / sqrt(n)`.
///
/// Returns `(low, high)`; degenerates to `(mean, mean)` for `n == 1`.
///
/// # Panics
///
/// Panics if the sample is empty or `level` is not in `(0, 1)`.
pub fn mean_confidence_interval(xs: &[f64], level: f64) -> (f64, f64) {
    assert!(!xs.is_empty(), "confidence interval of empty sample");
    assert!(level > 0.0 && level < 1.0, "confidence level must be in (0, 1)");
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() == 1 {
        return (mean, mean);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    let se = (var / n).sqrt();
    let t = student_t_quantile(0.5 * (1.0 + level), n - 1.0);
    (mean - t * se, mean + t * se)
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Lentz's method).
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation for faster continued-fraction convergence.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Gamma(1) = Gamma(2) = 1; Gamma(5) = 24; Gamma(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a, b) = 1 - I_{1-x}(b, a).
        let x = 0.37;
        let lhs = regularized_incomplete_beta(2.5, 1.5, x);
        let rhs = 1.0 - regularized_incomplete_beta(1.5, 2.5, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-10);
        // I_x(1, 1) = x (uniform).
        assert!((regularized_incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn t_cdf_matches_known_quantiles() {
        // t(10): P(T <= 1.812) ~ 0.95; t(1) is Cauchy: P(T <= 1) = 0.75.
        assert!((student_t_cdf(1.812, 10.0) - 0.95).abs() < 2e-3);
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-6);
        assert!((student_t_cdf(0.0, 5.0) - 0.5).abs() < 1e-12);
        // Symmetry.
        let v = student_t_cdf(-1.3, 7.0) + student_t_cdf(1.3, 7.0);
        assert!((v - 1.0).abs() < 1e-10);
        // Large dof approaches the normal: P(T <= 1.96) ~ 0.975.
        assert!((student_t_cdf(1.96, 1_000.0) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn t_quantile_inverts_cdf() {
        for dof in [1.0, 5.0, 30.0] {
            for p in [0.05, 0.5, 0.9, 0.975] {
                let q = student_t_quantile(p, dof);
                assert!((student_t_cdf(q, dof) - p).abs() < 1e-9, "dof {dof} p {p}");
            }
        }
        // Known: t_{0.975, 10} = 2.228.
        assert!((student_t_quantile(0.975, 10.0) - 2.228).abs() < 2e-3);
    }

    #[test]
    fn pvalue_behaviour() {
        // |t| = 0 -> p = 1; huge |t| -> p ~ 0.
        assert!((two_sided_t_pvalue(0.0, 10.0) - 1.0).abs() < 1e-12);
        assert!(two_sided_t_pvalue(50.0, 10.0) < 1e-9);
        assert!(two_sided_t_pvalue(-50.0, 10.0) < 1e-9);
        // t(10) = 2.228 is the 97.5% quantile -> two-sided p ~ 0.05.
        assert!((two_sided_t_pvalue(2.228, 10.0) - 0.05).abs() < 2e-3);
    }

    #[test]
    fn confidence_interval_brackets_the_mean() {
        let xs: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let (lo, hi) = mean_confidence_interval(&xs, 0.95);
        assert!(lo < mean && mean < hi);
        // Wider at higher confidence.
        let (lo99, hi99) = mean_confidence_interval(&xs, 0.99);
        assert!(lo99 < lo && hi < hi99);
        // Single observation degenerates.
        assert_eq!(mean_confidence_interval(&[3.0], 0.95), (3.0, 3.0));
    }
}
