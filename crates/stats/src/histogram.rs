use std::collections::BTreeMap;
use std::fmt;

/// A categorical histogram over discrete values, used for
/// parameter-distribution figures such as the paper's Figure 5(b)
/// (distribution of D-L1 cache sizes among top-percentile designs).
///
/// Values are bucketed exactly (no binning); use the integer-valued design
/// parameters directly as keys.
///
/// # Examples
///
/// ```
/// use udse_stats::Histogram;
///
/// let mut h = Histogram::new();
/// h.add(8);
/// h.add(8);
/// h.add(64);
/// assert_eq!(h.count(8), 2);
/// assert!((h.fraction(8) - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Adds one observation of `value`.
    pub fn add(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Count observed for `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations equal to `value`; 0 for an empty histogram.
    pub fn fraction(&self, value: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Iterates over `(value, count)` pairs in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }

    /// The distinct values observed, ascending.
    pub fn values(&self) -> Vec<u64> {
        self.counts.keys().copied().collect()
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.add(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.total == 0 {
            return write!(f, "(empty histogram)");
        }
        for (v, c) in self.iter() {
            writeln!(f, "{v:>8}: {c:>8} ({:5.1}%)", 100.0 * c as f64 / self.total as f64)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_fractions() {
        let h: Histogram = [1u64, 1, 2, 3, 3, 3].into_iter().collect();
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(3), 3);
        assert_eq!(h.count(99), 0);
        assert!((h.fraction(1) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.values(), vec![1, 2, 3]);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction(5), 0.0);
        assert_eq!(format!("{h}"), "(empty histogram)");
    }

    #[test]
    fn iter_is_sorted() {
        let h: Histogram = [5u64, 1, 3].into_iter().collect();
        let vals: Vec<u64> = h.iter().map(|(v, _)| v).collect();
        assert_eq!(vals, vec![1, 3, 5]);
    }

    #[test]
    fn extend_accumulates() {
        let mut h = Histogram::new();
        h.extend([1u64, 2]);
        h.extend([2u64]);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn display_contains_percentages() {
        let h: Histogram = [4u64, 4].into_iter().collect();
        let s = format!("{h}");
        assert!(s.contains("100.0%"));
    }
}
