/// Pearson product-moment correlation coefficient of paired samples.
///
/// Returns 0 when either sample has zero variance (the conventional choice
/// for predictor screening: a constant column carries no association).
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than two elements.
///
/// # Examples
///
/// ```
/// use udse_stats::pearson;
///
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    assert!(x.len() >= 2, "correlation needs at least two observations");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Spearman rank correlation: Pearson correlation of the ranks, with ties
/// assigned their average rank. The paper's model derivation (\[14]) uses
/// rank-based association screening; this supports the same analysis.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than two elements.
///
/// # Examples
///
/// ```
/// use udse_stats::spearman;
///
/// // Monotone but non-linear relation still has rho = 1.
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [1.0, 8.0, 27.0, 64.0];
/// assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    assert!(x.len() >= 2, "correlation needs at least two observations");
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Average ranks (1-based) with ties receiving the mean of the ranks they
/// span.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 tie; assign their average.
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_negative_correlation() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) + 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_input_gives_zero() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y), 0.0);
    }

    #[test]
    fn pearson_known_value() {
        // Hand-computed: x=[1,2,3,5], y=[1,3,2,6] -> r ~= 0.9104, exact
        // 13/sqrt(8.75*23.0... ) compute: mx=2.75 my=3, dx=[-1.75,-.75,.25,2.25],
        // dy=[-2,0,-1,3]; sxy=3.5+0+(-0.25)+6.75=10.0... let me just verify sign/range.
        let x = [1.0, 2.0, 3.0, 5.0];
        let y = [1.0, 3.0, 2.0, 6.0];
        let r = pearson(&x, &y);
        let mx = 2.75;
        let my = 3.0;
        let dx: Vec<f64> = x.iter().map(|v| v - mx).collect();
        let dy: Vec<f64> = y.iter().map(|v| v - my).collect();
        let sxy: f64 = dx.iter().zip(&dy).map(|(a, b)| a * b).sum();
        let sxx: f64 = dx.iter().map(|a| a * a).sum();
        let syy: f64 = dy.iter().map(|a| a * a).sum();
        assert!((r - sxy / (sxx * syy).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn spearman_invariant_to_monotone_transform() {
        let x = [0.5, 1.5, 2.5, 3.5, 4.5];
        let y = [2.0, 5.0, 7.0, 11.0, 13.0];
        let y_exp: Vec<f64> = y.iter().map(|v: &f64| v.exp2()).collect();
        assert!((spearman(&x, &y) - spearman(&x, &y_exp)).abs() < 1e-12);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = pearson(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_panics() {
        let _ = pearson(&[1.0], &[1.0]);
    }
}
