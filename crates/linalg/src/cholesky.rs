use crate::triangular::{solve_lower, solve_upper};
use crate::{LinalgError, Matrix, Result};

/// Cholesky factorization `A = L L^T` of a symmetric positive-definite
/// matrix.
///
/// Used as an independent cross-check of the QR least-squares path (via the
/// normal equations `X^T X beta = X^T y`) and for solving the small
/// symmetric systems that arise in model diagnostics.
///
/// # Examples
///
/// ```
/// use udse_linalg::{Matrix, Cholesky};
///
/// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
/// let ch = Cholesky::new(&a).unwrap();
/// let x = ch.solve(&[8.0, 7.0]).unwrap();
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry is assumed, not
    /// checked.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `a` is not square, or
    /// [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        let n = a.rows();
        if a.cols() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "cholesky",
                left: a.shape(),
                right: a.shape(),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 || !s.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { index: i });
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Returns the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward then backward substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = solve_lower(&self.l, b)?;
        solve_upper(&self.l.transpose(), &y)
    }

    /// Log-determinant of `A`, computed as `2 * sum(log(diag(L)))`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_reconstructs() {
        let a = Matrix::from_rows(&[
            vec![25.0, 15.0, -5.0],
            vec![15.0, 18.0, 0.0],
            vec![-5.0, 0.0, 11.0],
        ]);
        let ch = Cholesky::new(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose()).unwrap();
        assert!(recon.sub(&a).unwrap().max_abs() < 1e-12);
        // Known factor: L = [[5,0,0],[3,3,0],[-1,1,3]].
        assert!((ch.l()[(0, 0)] - 5.0).abs() < 1e-12);
        assert!((ch.l()[(1, 0)] - 3.0).abs() < 1e-12);
        assert!((ch.l()[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_matches_known_solution() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        // A [1.25, 1.5]^T = [8, 7]^T.
        let x = ch.solve(&[8.0, 7.0]).unwrap();
        assert!((x[0] - 1.25).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn not_positive_definite_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(matches!(Cholesky::new(&a), Err(LinalgError::NotPositiveDefinite { index: 1 })));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Cholesky::new(&a), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn log_det_matches_known() {
        // det([[4,2],[2,3]]) = 8.
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - 8.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn normal_equations_agree_with_qr() {
        use crate::qr::lstsq;
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0],
            vec![1.0, 2.0, 4.0],
            vec![1.0, 3.0, 9.0],
            vec![1.0, 4.0, 16.0],
        ]);
        let y = [1.0, 2.7, 5.8, 11.1, 17.9];
        let beta_qr = lstsq(&x, &y).unwrap();
        let g = x.gram();
        let xty = x.tr_matvec(&y).unwrap();
        let beta_ch = Cholesky::new(&g).unwrap().solve(&xty).unwrap();
        for (a, b) in beta_qr.iter().zip(&beta_ch) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }
}
