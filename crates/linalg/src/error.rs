use std::error::Error;
use std::fmt;

/// Error type for linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: &'static str,
        /// Dimensions of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Dimensions of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// The matrix is rank deficient (or numerically so) and the requested
    /// factorization or solve cannot proceed.
    RankDeficient {
        /// Index of the first pivot that collapsed to (near) zero.
        pivot: usize,
    },
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite {
        /// Index of the failing diagonal entry.
        index: usize,
    },
    /// The system has more unknowns than equations.
    Underdetermined {
        /// Number of equations (rows).
        rows: usize,
        /// Number of unknowns (columns).
        cols: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context, left, right } => write!(
                f,
                "dimension mismatch in {context}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::RankDeficient { pivot } => {
                write!(f, "matrix is rank deficient at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(f, "matrix is not positive definite at diagonal index {index}")
            }
            LinalgError::Underdetermined { rows, cols } => {
                write!(f, "underdetermined system: {rows} equations, {cols} unknowns")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            LinalgError::DimensionMismatch { context: "matmul", left: (2, 3), right: (4, 5) },
            LinalgError::RankDeficient { pivot: 1 },
            LinalgError::NotPositiveDefinite { index: 0 },
            LinalgError::Underdetermined { rows: 2, cols: 5 },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
