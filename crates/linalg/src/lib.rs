//! Dense numerical linear algebra for regression modeling.
//!
//! This crate provides the minimal, dependency-free linear algebra needed by
//! the regression models of the design space exploration framework: a dense
//! row-major [`Matrix`] type, Householder [`Qr`] factorization, [`Cholesky`]
//! factorization, triangular solves, and a least-squares driver
//! ([`lstsq`]).
//!
//! The implementation favours numerical robustness over raw speed: least
//! squares is solved through a column-pivoted-free Householder QR (stable for
//! the well-conditioned, centered design matrices produced by the regression
//! crate) rather than normal equations, though a Cholesky-based path is also
//! provided for cross-checking.
//!
//! # Examples
//!
//! Solve an overdetermined system in the least-squares sense:
//!
//! ```
//! use udse_linalg::{Matrix, lstsq};
//!
//! // y ~= 2 + 3x sampled with no noise.
//! let x = Matrix::from_rows(&[
//!     vec![1.0, 0.0],
//!     vec![1.0, 1.0],
//!     vec![1.0, 2.0],
//!     vec![1.0, 3.0],
//! ]);
//! let y = vec![2.0, 5.0, 8.0, 11.0];
//! let beta = lstsq(&x, &y).unwrap();
//! assert!((beta[0] - 2.0).abs() < 1e-10);
//! assert!((beta[1] - 3.0).abs() < 1e-10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod error;
mod matrix;
mod qr;
mod triangular;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use qr::{lstsq, Qr};
pub use triangular::{solve_lower, solve_upper};

/// Result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
