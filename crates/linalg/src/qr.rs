use crate::triangular::solve_upper;
use crate::{LinalgError, Matrix, Result};

/// Householder QR factorization of an `m x n` matrix with `m >= n`.
///
/// The factorization is stored in compact form: the upper triangle of the
/// working matrix holds `R`; the Householder reflector for column `k` is the
/// vector whose head is `heads[k]` and whose tail occupies the
/// strictly-lower part of column `k`, with scaling factor `betas[k]` such
/// that `H_k = I - betas[k] * v v^T`.
///
/// # Examples
///
/// ```
/// use udse_linalg::{Matrix, Qr};
///
/// let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]);
/// let qr = Qr::new(&a).unwrap();
/// let recon = qr.q().matmul(&qr.r()).unwrap();
/// assert!(recon.sub(&a).unwrap().max_abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    packed: Matrix,
    betas: Vec<f64>,
    heads: Vec<f64>,
    m: usize,
    n: usize,
}

impl Qr {
    /// Factorizes `a` as `Q R` using Householder reflections.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Underdetermined`] if `a` has more columns than
    /// rows.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::Underdetermined { rows: m, cols: n });
        }
        let mut w = a.clone();
        let mut betas = vec![0.0; n];
        let mut heads = vec![0.0; n];
        for k in 0..n {
            // Norm of column k below (and including) the diagonal.
            let mut norm = 0.0f64;
            for i in k..m {
                norm = norm.hypot(w[(i, k)]);
            }
            if norm == 0.0 {
                continue; // beta stays 0: identity reflector, R diagonal 0.
            }
            let alpha = if w[(k, k)] >= 0.0 { -norm } else { norm };
            let vk = w[(k, k)] - alpha;
            let mut vnorm2 = vk * vk;
            for i in k + 1..m {
                vnorm2 += w[(i, k)] * w[(i, k)];
            }
            if vnorm2 == 0.0 {
                w[(k, k)] = alpha;
                continue;
            }
            let beta = 2.0 / vnorm2;
            // Apply H_k = I - beta v v^T to the trailing columns.
            for j in k + 1..n {
                let mut dot = vk * w[(k, j)];
                for i in k + 1..m {
                    dot += w[(i, k)] * w[(i, j)];
                }
                let s = beta * dot;
                w[(k, j)] -= s * vk;
                for i in k + 1..m {
                    let vi = w[(i, k)];
                    w[(i, j)] -= s * vi;
                }
            }
            w[(k, k)] = alpha;
            betas[k] = beta;
            heads[k] = vk;
            // The tail of v (rows k+1..m of column k) is left in place.
        }
        Ok(Qr { packed: w, betas, heads, m, n })
    }

    /// Number of rows of the factorized matrix.
    pub fn rows(&self) -> usize {
        self.m
    }

    /// Number of columns of the factorized matrix.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Applies `Q^T` to a vector of length `m`, returning a vector of
    /// length `m` whose first `n` entries feed the triangular solve.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != m`.
    #[allow(clippy::needless_range_loop)] // index form mirrors the Householder update math
    pub fn q_transpose_apply(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.m {
            return Err(LinalgError::DimensionMismatch {
                context: "q_transpose_apply",
                left: (self.m, self.n),
                right: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        for k in 0..self.n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let vk = self.heads[k];
            let mut dot = vk * y[k];
            for i in k + 1..self.m {
                dot += self.packed[(i, k)] * y[i];
            }
            let s = beta * dot;
            y[k] -= s * vk;
            for i in k + 1..self.m {
                y[i] -= s * self.packed[(i, k)];
            }
        }
        Ok(y)
    }

    /// Returns the upper-triangular factor `R` as an `n x n` matrix.
    pub fn r(&self) -> Matrix {
        let mut r = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for j in i..self.n {
                r[(i, j)] = self.packed[(i, j)];
            }
        }
        r
    }

    /// Materializes the thin `m x n` orthogonal factor `Q`.
    ///
    /// This is O(m·n²) and intended for testing and diagnostics; solving
    /// uses [`Qr::q_transpose_apply`] instead.
    pub fn q(&self) -> Matrix {
        // Q(thin) = H_0 H_1 ... H_{n-1} applied to the thin identity,
        // reflectors applied in reverse order.
        let mut q = Matrix::zeros(self.m, self.n);
        for j in 0..self.n {
            q[(j, j)] = 1.0;
        }
        for k in (0..self.n).rev() {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let vk = self.heads[k];
            for j in 0..self.n {
                let mut dot = vk * q[(k, j)];
                for i in k + 1..self.m {
                    dot += self.packed[(i, k)] * q[(i, j)];
                }
                let s = beta * dot;
                q[(k, j)] -= s * vk;
                for i in k + 1..self.m {
                    let vi = self.packed[(i, k)];
                    q[(i, j)] -= s * vi;
                }
            }
        }
        q
    }

    /// Solves the least-squares problem `min ||a x - b||_2` given this
    /// factorization of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::RankDeficient`] if `R` has a numerically zero
    /// diagonal entry, or [`LinalgError::DimensionMismatch`] for a
    /// wrong-sized `b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let y = self.q_transpose_apply(b)?;
        solve_upper(&self.r(), &y[..self.n])
    }
}

/// Solves the least-squares problem `min ||x beta - y||_2` for `beta`.
///
/// This is the primary entry point used by the regression crate.
///
/// # Errors
///
/// Propagates factorization errors from [`Qr::new`] and solve errors from
/// [`Qr::solve`].
///
/// # Examples
///
/// ```
/// use udse_linalg::{Matrix, lstsq};
///
/// let x = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 2.0], vec![1.0, 3.0]]);
/// let beta = lstsq(&x, &[2.0, 3.0, 4.0]).unwrap();
/// assert!((beta[0] - 1.0).abs() < 1e-10);
/// assert!((beta[1] - 1.0).abs() < 1e-10);
/// ```
pub fn lstsq(x: &Matrix, y: &[f64]) -> Result<Vec<f64>> {
    Qr::new(x)?.solve(y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b}");
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.5],
            vec![1.0, 3.0, -2.0],
            vec![0.0, 1.0, 4.0],
            vec![-1.0, 0.5, 1.0],
        ]);
        let qr = Qr::new(&a).unwrap();
        let recon = qr.q().matmul(&qr.r()).unwrap();
        assert!(recon.sub(&a).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let q = Qr::new(&a).unwrap().q();
        let qtq = q.transpose().matmul(&q).unwrap();
        assert!(qtq.sub(&Matrix::identity(2)).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 10.0],
            vec![1.0, 1.0, 1.0],
        ]);
        let r = Qr::new(&a).unwrap().r();
        for i in 0..3 {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn exact_solve_square_system() {
        // A x = b with A invertible: least squares gives the exact solution.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = lstsq(&a, &[5.0, 10.0]).unwrap();
        // Solution of [2 1; 1 3] x = [5; 10] is x = [1, 3].
        assert_close(x[0], 1.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
    }

    #[test]
    fn least_squares_matches_normal_equations_result() {
        // Overdetermined noisy fit; compare against solution computed by hand
        // via normal equations for y = b0 + b1 x over x = 0..5 with
        // y = [0, 1.1, 1.9, 3.2, 3.8, 5.1].
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [0.0, 1.1, 1.9, 3.2, 3.8, 5.1];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let x = Matrix::from_rows(&rows);
        let beta = lstsq(&x, &ys).unwrap();
        // Normal-equation solution: b1 = Sxy/Sxx, b0 = ybar - b1 xbar.
        let xbar = 2.5;
        let ybar: f64 = ys.iter().sum::<f64>() / 6.0;
        let sxx: f64 = xs.iter().map(|x| (x - xbar) * (x - xbar)).sum();
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - xbar) * (y - ybar)).sum();
        let b1 = sxy / sxx;
        let b0 = ybar - b1 * xbar;
        assert_close(beta[0], b0, 1e-10);
        assert_close(beta[1], b1, 1e-10);
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        let x = Matrix::from_rows(&[
            vec![1.0, 0.5, 2.0],
            vec![1.0, 1.5, 0.0],
            vec![1.0, 2.5, 1.0],
            vec![1.0, 3.5, 3.0],
            vec![1.0, 4.5, 2.0],
        ]);
        let y = [1.0, 2.0, 1.5, 4.0, 3.0];
        let beta = lstsq(&x, &y).unwrap();
        let yhat = x.matvec(&beta).unwrap();
        let resid: Vec<f64> = y.iter().zip(&yhat).map(|(a, b)| a - b).collect();
        let xtr = x.tr_matvec(&resid).unwrap();
        for v in xtr {
            assert!(v.abs() < 1e-10, "residual not orthogonal: {v}");
        }
    }

    #[test]
    fn underdetermined_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Qr::new(&a), Err(LinalgError::Underdetermined { .. })));
    }

    #[test]
    fn rank_deficient_solve_is_reported() {
        // Two identical columns.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let qr = Qr::new(&a).unwrap();
        assert!(matches!(qr.solve(&[1.0, 2.0, 3.0]), Err(LinalgError::RankDeficient { .. })));
    }

    #[test]
    fn wrong_rhs_length_is_rejected() {
        let a = Matrix::identity(3);
        let qr = Qr::new(&a).unwrap();
        assert!(qr.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn zero_column_handled() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 2.0], vec![0.0, 3.0]]);
        let qr = Qr::new(&a).unwrap();
        // R(0,0) is zero so solve must report rank deficiency rather than
        // produce NaN.
        assert!(matches!(qr.solve(&[1.0, 2.0, 3.0]), Err(LinalgError::RankDeficient { .. })));
    }
}
