use crate::{LinalgError, Matrix, Result};

/// Solves the upper-triangular system `U x = b` by back substitution.
///
/// Only the upper triangle of `u` is read; entries below the diagonal are
/// ignored, so a packed QR result can be passed directly.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `u` is not square or `b` has
/// the wrong length, and [`LinalgError::RankDeficient`] if a diagonal entry is
/// numerically zero.
pub fn solve_upper(u: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = u.rows();
    if u.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "solve_upper",
            left: u.shape(),
            right: (b.len(), 1),
        });
    }
    let tol = pivot_tolerance(n, (0..n).map(|i| u[(i, i)]));
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in i + 1..n {
            s -= u[(i, j)] * x[j];
        }
        let d = u[(i, i)];
        if d.abs() <= tol || !d.is_finite() {
            return Err(LinalgError::RankDeficient { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Solves the lower-triangular system `L x = b` by forward substitution.
///
/// Only the lower triangle of `l` is read.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `l` is not square or `b` has
/// the wrong length, and [`LinalgError::RankDeficient`] if a diagonal entry is
/// numerically zero.
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = l.rows();
    if l.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "solve_lower",
            left: l.shape(),
            right: (b.len(), 1),
        });
    }
    let tol = pivot_tolerance(n, (0..n).map(|i| l[(i, i)]));
    let mut x = b.to_vec();
    for i in 0..n {
        let mut s = x[i];
        for j in 0..i {
            s -= l[(i, j)] * x[j];
        }
        let d = l[(i, i)];
        if d.abs() <= tol || !d.is_finite() {
            return Err(LinalgError::RankDeficient { pivot: i });
        }
        x[i] = s / d;
    }
    Ok(x)
}

/// Relative pivot tolerance: a diagonal entry is treated as zero when it is
/// smaller than `n * eps * max|diag|`, the conventional rank test for
/// triangular factors.
fn pivot_tolerance(n: usize, diag: impl Iterator<Item = f64>) -> f64 {
    let max = diag.fold(0.0f64, |m, d| m.max(d.abs()));
    (n as f64) * f64::EPSILON * max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_solve_known() {
        // U = [[2, 1], [0, 4]], b = [4, 8] -> x = [1, 2]
        let u = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 4.0]]);
        let x = solve_upper(&u, &[4.0, 8.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lower_solve_known() {
        // L = [[2, 0], [1, 4]], b = [2, 9] -> x = [1, 2]
        let l = Matrix::from_rows(&[vec![2.0, 0.0], vec![1.0, 4.0]]);
        let x = solve_lower(&l, &[2.0, 9.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_diagonal_is_reported() {
        let u = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 0.0]]);
        assert_eq!(solve_upper(&u, &[1.0, 1.0]), Err(LinalgError::RankDeficient { pivot: 1 }));
        let l = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        assert_eq!(solve_lower(&l, &[1.0, 1.0]), Err(LinalgError::RankDeficient { pivot: 0 }));
    }

    #[test]
    fn dimension_checks() {
        let u = Matrix::zeros(2, 3);
        assert!(solve_upper(&u, &[1.0, 2.0]).is_err());
        let l = Matrix::identity(2);
        assert!(solve_lower(&l, &[1.0]).is_err());
    }

    #[test]
    fn strict_triangle_is_ignored() {
        // Garbage below the diagonal must not affect solve_upper.
        let u = Matrix::from_rows(&[vec![2.0, 1.0], vec![999.0, 4.0]]);
        let x = solve_upper(&u, &[4.0, 8.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }
}
