use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{LinalgError, Result};

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse container for design matrices and factorization
/// results. It deliberately exposes a small, explicit API rather than
/// operator overloads for everything: regression code is easier to audit when
/// each O(n·p) pass is a named method call.
///
/// # Examples
///
/// ```
/// use udse_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(a.rows(), 2);
/// assert_eq!(a[(1, 0)], 3.0);
/// let at = a.transpose();
/// assert_eq!(at[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows` x `cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows.checked_mul(cols).expect("matrix size overflow");
        Matrix { rows, cols, data: vec![0.0; len] }
    }

    /// Creates the `n` x `n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix { rows: nrows, cols: ncols, data }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows * cols");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Views the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the underlying row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix-matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(r);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols() != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                context: "matvec",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.rows).map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum()).collect())
    }

    /// Computes `self^T * self`, the Gram matrix (symmetric positive
    /// semi-definite).
    pub fn gram(&self) -> Matrix {
        let p = self.cols;
        let mut g = Matrix::zeros(p, p);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..p {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                for j in i..p {
                    g[(i, j)] += xi * row[j];
                }
            }
        }
        for i in 0..p {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Computes `self^T * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.rows() != v.len()`.
    pub fn tr_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::DimensionMismatch {
                context: "tr_matvec",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            if vr == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(r)) {
                *o += a * vr;
            }
        }
        Ok(out)
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                context: "sub",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram();
        let expected = a.transpose().matmul(&a).unwrap();
        assert!(g.sub(&expected).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn tr_matvec_matches_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let v = vec![1.0, -1.0, 2.0];
        let direct = a.tr_matvec(&v).unwrap();
        let via_t = a.transpose().matvec(&v).unwrap();
        assert_eq!(direct, via_t);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn debug_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a:?}").is_empty());
    }
}
