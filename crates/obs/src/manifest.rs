//! Run manifests: a machine-readable record of what a run did.
//!
//! A [`RunManifest`] accumulates per-artifact wall times plus arbitrary
//! configuration entries (seeds, study config, command line), and at
//! write time folds in a snapshot of the global metrics registry and
//! span collector. The result is a single JSON document (see
//! [`crate::json`]) that answers "what ran, how long did each piece
//! take, and what did the counters say" without scraping logs.
//!
//! # Examples
//!
//! ```
//! use udse_obs::{Json, RunManifest};
//!
//! let mut m = RunManifest::new("repro");
//! m.set("quick", Json::Bool(true));
//! m.record_artifact("fig3", 0.25);
//! let doc = m.to_json();
//! assert_eq!(doc.get("tool").and_then(Json::as_str), Some("repro"));
//! ```

use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::metrics::MetricValue;
use crate::{metrics, span};

/// Manifest JSON layout version, bumped on incompatible changes.
pub const SCHEMA_VERSION: i64 = 1;

/// One produced artifact and how long it took.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactRecord {
    /// Artifact name as passed to the producing command (e.g. `fig3`).
    pub name: String,
    /// Wall-clock seconds spent producing it.
    pub wall_seconds: f64,
}

/// An in-progress record of a run, serialized to JSON at the end.
#[derive(Debug)]
pub struct RunManifest {
    tool: String,
    command: Vec<String>,
    custom: Vec<(String, Json)>,
    artifacts: Vec<ArtifactRecord>,
}

impl RunManifest {
    /// Starts a manifest for the named tool, capturing the process
    /// command line.
    pub fn new(tool: &str) -> Self {
        RunManifest {
            tool: tool.to_string(),
            command: std::env::args().collect(),
            custom: Vec::new(),
            artifacts: Vec::new(),
        }
    }

    /// Adds (or replaces) a configuration entry such as a seed or flag.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Some(slot) = self.custom.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.custom.push((key.to_string(), value));
        }
    }

    /// Records that `name` was produced in `wall_seconds`.
    pub fn record_artifact(&mut self, name: &str, wall_seconds: f64) {
        self.artifacts.push(ArtifactRecord { name: name.to_string(), wall_seconds });
    }

    /// Artifacts recorded so far, in execution order.
    pub fn artifacts(&self) -> &[ArtifactRecord] {
        &self.artifacts
    }

    /// Assembles the manifest document, snapshotting the global metrics
    /// registry and span collector at call time.
    pub fn to_json(&self) -> Json {
        let created_unix_ms =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as i64).unwrap_or(0);

        let artifacts = Json::Arr(
            self.artifacts
                .iter()
                .map(|a| {
                    Json::obj([
                        ("name", Json::str(a.name.as_str())),
                        ("wall_seconds", Json::Float(a.wall_seconds)),
                    ])
                })
                .collect(),
        );

        let metrics = Json::Obj(
            metrics::global()
                .snapshot()
                .into_iter()
                .map(|m| (m.name.to_string(), metric_to_json(&m.value)))
                .collect(),
        );

        let spans = Json::Obj(
            span::global()
                .snapshot()
                .into_iter()
                .map(|(path, s)| {
                    (
                        path,
                        Json::obj([
                            ("count", Json::Int(s.count as i64)),
                            ("total_seconds", Json::Float(s.total.as_secs_f64())),
                            ("max_seconds", Json::Float(s.max.as_secs_f64())),
                        ]),
                    )
                })
                .collect(),
        );

        Json::obj([
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            ("tool", Json::str(self.tool.as_str())),
            ("created_unix_ms", Json::Int(created_unix_ms)),
            ("command", Json::Arr(self.command.iter().map(|a| Json::str(a.as_str())).collect())),
            ("config", Json::Obj(self.custom.clone())),
            ("artifacts", artifacts),
            ("metrics", metrics),
            ("spans", spans),
        ])
    }

    /// Writes the pretty-printed manifest to `path`.
    pub fn write_to_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string_pretty())
    }
}

fn metric_to_json(value: &MetricValue) -> Json {
    match value {
        MetricValue::Counter(v) => Json::Int(*v as i64),
        MetricValue::Gauge(v) => Json::Float(*v),
        MetricValue::Histogram { count, sum, buckets } => Json::obj([
            ("count", Json::Int(*count as i64)),
            ("sum", Json::Float(*sum)),
            (
                "buckets",
                Json::Arr(
                    buckets
                        .iter()
                        .map(|(le, n)| {
                            Json::obj([
                                (
                                    "le",
                                    if le.is_finite() {
                                        Json::Float(*le)
                                    } else {
                                        Json::str("+inf")
                                    },
                                ),
                                ("count", Json::Int(*n as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_through_json() {
        let mut m = RunManifest::new("repro-test");
        m.set("seed", Json::Int(20071215));
        m.set("quick", Json::Bool(true));
        m.set("seed", Json::Int(42)); // replace, not duplicate
        m.record_artifact("fig3", 0.125);
        m.record_artifact("tab4", 2.5);

        let text = m.to_json().to_string_pretty();
        let back = Json::parse(&text).expect("manifest is valid JSON");

        assert_eq!(back.get("schema_version").and_then(Json::as_i64), Some(SCHEMA_VERSION));
        assert_eq!(back.get("tool").and_then(Json::as_str), Some("repro-test"));
        assert!(back.get("created_unix_ms").and_then(Json::as_i64).unwrap_or(0) > 0);
        let config = back.get("config").expect("config object");
        assert_eq!(config.get("seed").and_then(Json::as_i64), Some(42));
        assert_eq!(config.get("quick"), Some(&Json::Bool(true)));

        let artifacts = back.get("artifacts").and_then(Json::as_arr).expect("artifacts");
        assert_eq!(artifacts.len(), 2);
        assert_eq!(artifacts[0].get("name").and_then(Json::as_str), Some("fig3"));
        assert_eq!(artifacts[1].get("wall_seconds").and_then(Json::as_f64), Some(2.5));

        // Metrics and spans sections exist even when empty.
        assert!(back.get("metrics").is_some());
        assert!(back.get("spans").is_some());
    }

    #[test]
    fn manifest_includes_global_metrics_and_spans() {
        metrics::counter("manifest.test.counter").add(7);
        {
            let _g = span::enter("manifest_test_span");
        }
        let m = RunManifest::new("t");
        let doc = m.to_json();
        let metrics = doc.get("metrics").expect("metrics");
        // The registry is process-global, so other tests may also bump it.
        assert!(metrics.get("manifest.test.counter").and_then(Json::as_i64).unwrap_or(0) >= 7);
        let spans = doc.get("spans").expect("spans");
        assert!(spans.get("manifest_test_span").is_some());
    }

    #[test]
    fn write_to_path_emits_parseable_file() {
        let mut m = RunManifest::new("writer");
        m.record_artifact("a", 0.0);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("udse_obs_manifest_test_{}.json", std::process::id()));
        m.write_to_path(&path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        let back = Json::parse(&text).expect("valid JSON on disk");
        assert_eq!(back.get("tool").and_then(Json::as_str), Some("writer"));
        let _ = std::fs::remove_file(&path);
    }
}
