//! Run manifests: a machine-readable record of what a run did.
//!
//! A [`RunManifest`] accumulates per-artifact wall times plus arbitrary
//! configuration entries (seeds, study config, command line), and at
//! write time folds in a snapshot of the global metrics registry and
//! span collector. The result is a single JSON document (see
//! [`crate::json`]) that answers "what ran, how long did each piece
//! take, and what did the counters say" without scraping logs.
//!
//! # Examples
//!
//! ```
//! use udse_obs::{Json, RunManifest};
//!
//! let mut m = RunManifest::new("repro");
//! m.set("quick", Json::Bool(true));
//! m.record_artifact("fig3", 0.25);
//! let doc = m.to_json();
//! assert_eq!(doc.get("tool").and_then(Json::as_str), Some("repro"));
//! ```

use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::metrics::MetricValue;
use crate::quality::QualityRecord;
use crate::{metrics, quality, span};

/// Manifest JSON layout version, bumped on incompatible changes.
///
/// v2 added the `quality` section (model-quality records, see
/// [`crate::quality`]) and p50/p90/p99 quantile fields on histogram
/// metrics. v3 (this version) adds the `resources` section (process
/// allocation totals, peak RSS, CPU time — see [`ResourceTotals`]) and
/// per-span `cpu_seconds`/`allocs`/`alloc_bytes` columns.
/// [`ParsedManifest`] still reads v1 and v2 documents, treating the
/// additions as absent (no resources section, zero span resources).
pub const SCHEMA_VERSION: i64 = 3;

/// One produced artifact and how long it took.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactRecord {
    /// Artifact name as passed to the producing command (e.g. `fig3`).
    pub name: String,
    /// Wall-clock seconds spent producing it.
    pub wall_seconds: f64,
}

/// Whole-process resource totals, captured at manifest-write time and
/// stored in the v3 `resources` section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceTotals {
    /// Whether the counting allocator served this process; the four
    /// allocation fields are meaningful only when `true` (they read
    /// zero otherwise, which is *not* the same as "allocation-free").
    pub alloc_counting: bool,
    /// Heap allocations served since startup.
    pub allocs: u64,
    /// Heap deallocations served since startup.
    pub deallocs: u64,
    /// Total heap bytes ever allocated.
    pub alloc_bytes: u64,
    /// High-water mark of live heap bytes.
    pub peak_bytes: u64,
    /// Peak resident-set size in KiB (`VmHWM`); `None` off-Linux.
    pub peak_rss_kb: Option<u64>,
    /// Process CPU time (user + system), seconds; `None` off-Linux.
    pub cpu_seconds: Option<f64>,
}

impl ResourceTotals {
    /// Snapshots this process's counters and `/proc` probes.
    pub fn capture() -> Self {
        let a = crate::alloc::stats();
        ResourceTotals {
            alloc_counting: crate::alloc::counting(),
            allocs: a.allocs,
            deallocs: a.deallocs,
            alloc_bytes: a.bytes_allocated,
            peak_bytes: a.peak_bytes,
            peak_rss_kb: crate::cputime::peak_rss_kb(),
            cpu_seconds: crate::cputime::process_cpu_us().map(|us| us as f64 / 1e6),
        }
    }

    /// The `resources` section object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("alloc_counting", Json::Bool(self.alloc_counting)),
            ("allocs", Json::Int(self.allocs as i64)),
            ("deallocs", Json::Int(self.deallocs as i64)),
            ("alloc_bytes", Json::Int(self.alloc_bytes as i64)),
            ("peak_bytes", Json::Int(self.peak_bytes as i64)),
            ("peak_rss_kb", self.peak_rss_kb.map_or(Json::Null, |v| Json::Int(v as i64))),
            ("cpu_seconds", self.cpu_seconds.map_or(Json::Null, Json::Float)),
        ])
    }

    /// Reads a `resources` section; `None` when `doc` is not an object
    /// (v1/v2 manifests have no such section).
    pub fn from_json(doc: &Json) -> Option<Self> {
        if !matches!(doc, Json::Obj(_)) {
            return None;
        }
        let uint = |key: &str| doc.get(key).and_then(Json::as_i64).map(|v| v.max(0) as u64);
        Some(ResourceTotals {
            alloc_counting: doc.get("alloc_counting").and_then(Json::as_bool).unwrap_or(false),
            allocs: uint("allocs").unwrap_or(0),
            deallocs: uint("deallocs").unwrap_or(0),
            alloc_bytes: uint("alloc_bytes").unwrap_or(0),
            peak_bytes: uint("peak_bytes").unwrap_or(0),
            peak_rss_kb: uint("peak_rss_kb"),
            cpu_seconds: doc.get("cpu_seconds").and_then(Json::as_f64),
        })
    }
}

/// An in-progress record of a run, serialized to JSON at the end.
#[derive(Debug)]
pub struct RunManifest {
    tool: String,
    command: Vec<String>,
    custom: Vec<(String, Json)>,
    artifacts: Vec<ArtifactRecord>,
}

impl RunManifest {
    /// Starts a manifest for the named tool, capturing the process
    /// command line.
    pub fn new(tool: &str) -> Self {
        RunManifest {
            tool: tool.to_string(),
            command: std::env::args().collect(),
            custom: Vec::new(),
            artifacts: Vec::new(),
        }
    }

    /// Adds (or replaces) a configuration entry such as a seed or flag.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Some(slot) = self.custom.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            self.custom.push((key.to_string(), value));
        }
    }

    /// Records that `name` was produced in `wall_seconds`.
    pub fn record_artifact(&mut self, name: &str, wall_seconds: f64) {
        self.artifacts.push(ArtifactRecord { name: name.to_string(), wall_seconds });
    }

    /// Artifacts recorded so far, in execution order.
    pub fn artifacts(&self) -> &[ArtifactRecord] {
        &self.artifacts
    }

    /// Assembles the manifest document, snapshotting the global metrics
    /// registry, span collector, and quality collector at call time.
    ///
    /// Serialization is deterministic for deterministic content: config
    /// keys are sorted here, and the metrics, span, and quality
    /// snapshots are each sorted by their collectors, so two runs that
    /// measured the same things produce byte-identical documents modulo
    /// timings (`udse-inspect diff` and committed baselines rely on
    /// this).
    pub fn to_json(&self) -> Json {
        let created_unix_ms =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as i64).unwrap_or(0);

        let mut config = self.custom.clone();
        config.sort_by(|a, b| a.0.cmp(&b.0));

        let artifacts = Json::Arr(
            self.artifacts
                .iter()
                .map(|a| {
                    Json::obj([
                        ("name", Json::str(a.name.as_str())),
                        ("wall_seconds", Json::Float(a.wall_seconds)),
                    ])
                })
                .collect(),
        );

        let metrics = Json::Obj(
            metrics::global()
                .snapshot()
                .into_iter()
                .map(|m| (m.name.to_string(), metric_to_json(&m.value)))
                .collect(),
        );

        let spans = Json::Obj(
            span::global()
                .snapshot()
                .into_iter()
                .map(|(path, s)| {
                    (
                        path,
                        Json::obj([
                            ("count", Json::Int(s.count as i64)),
                            ("total_seconds", Json::Float(s.total.as_secs_f64())),
                            ("max_seconds", Json::Float(s.max.as_secs_f64())),
                            ("cpu_seconds", Json::Float(s.cpu.as_secs_f64())),
                            ("allocs", Json::Int(s.allocs as i64)),
                            ("alloc_bytes", Json::Int(s.alloc_bytes as i64)),
                        ]),
                    )
                })
                .collect(),
        );

        Json::obj([
            ("schema_version", Json::Int(SCHEMA_VERSION)),
            ("tool", Json::str(self.tool.as_str())),
            ("created_unix_ms", Json::Int(created_unix_ms)),
            ("command", Json::Arr(self.command.iter().map(|a| Json::str(a.as_str())).collect())),
            ("config", Json::Obj(config)),
            ("artifacts", artifacts),
            ("metrics", metrics),
            ("spans", spans),
            ("quality", quality::global().to_json()),
            ("resources", ResourceTotals::capture().to_json()),
        ])
    }

    /// Writes the pretty-printed manifest to `path`, creating missing
    /// parent directories.
    ///
    /// # Errors
    ///
    /// Any I/O failure is returned with the offending path in the error
    /// message, so callers can surface it verbatim.
    pub fn write_to_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        write_with_parents(path, &self.to_json().to_string_pretty())
    }
}

/// Writes `contents` to `path`, creating missing parent directories and
/// wrapping any failure with the path it concerns.
///
/// # Errors
///
/// Propagates directory-creation and write failures, annotated with the
/// path.
pub fn write_with_parents(path: &std::path::Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| {
                std::io::Error::new(
                    e.kind(),
                    format!("creating directory {} for {}: {e}", parent.display(), path.display()),
                )
            })?;
        }
    }
    std::fs::write(path, contents)
        .map_err(|e| std::io::Error::new(e.kind(), format!("writing {}: {e}", path.display())))
}

fn metric_to_json(value: &MetricValue) -> Json {
    match value {
        MetricValue::Counter(v) => Json::Int(*v as i64),
        MetricValue::Gauge(v) => Json::Float(*v),
        MetricValue::Histogram { count, sum, buckets } => Json::obj([
            ("count", Json::Int(*count as i64)),
            ("sum", Json::Float(*sum)),
            ("p50", value.histogram_quantile(0.5).map(Json::Float).unwrap_or(Json::Null)),
            ("p90", value.histogram_quantile(0.9).map(Json::Float).unwrap_or(Json::Null)),
            ("p99", value.histogram_quantile(0.99).map(Json::Float).unwrap_or(Json::Null)),
            (
                "buckets",
                Json::Arr(
                    buckets
                        .iter()
                        .map(|(le, n)| {
                            Json::obj([
                                (
                                    "le",
                                    if le.is_finite() {
                                        Json::Float(*le)
                                    } else {
                                        Json::str("+inf")
                                    },
                                ),
                                ("count", Json::Int(*n as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

/// Aggregated timing of one span path, as stored in a manifest.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanTotal {
    /// Completed executions.
    pub count: u64,
    /// Total wall time across executions, seconds.
    pub total_seconds: f64,
    /// Longest single execution, seconds.
    pub max_seconds: f64,
    /// Total executing-thread CPU time, seconds (0 in pre-v3 docs and
    /// where `/proc` is unavailable).
    pub cpu_seconds: f64,
    /// Heap allocations on the executing thread (0 in pre-v3 docs and
    /// without the counting allocator).
    pub allocs: u64,
    /// Heap bytes allocated on the executing thread.
    pub alloc_bytes: u64,
}

/// A manifest read back from disk, accepting any schema version this
/// build understands (1 through 3): v1 documents simply have no quality
/// records and no histogram quantile fields, and pre-v3 documents have
/// no `resources` section and zero span resource columns.
#[derive(Debug, Clone)]
pub struct ParsedManifest {
    /// The document's declared layout version.
    pub schema_version: i64,
    /// Producing tool (`repro`, …).
    pub tool: String,
    /// Creation time, milliseconds since the Unix epoch.
    pub created_unix_ms: i64,
    /// Configuration entries (seeds, flags), sorted by key in v2 docs.
    pub config: Vec<(String, Json)>,
    /// Artifacts in execution order.
    pub artifacts: Vec<ArtifactRecord>,
    /// Metric snapshots by name; values keep their raw JSON form
    /// (`Int` counters, `Float` gauges, objects for histograms).
    pub metrics: Vec<(String, Json)>,
    /// Span totals by path.
    pub spans: Vec<(String, SpanTotal)>,
    /// Model-quality records, sorted by key (empty for v1 documents).
    pub quality: Vec<QualityRecord>,
    /// Whole-process resource totals (`None` for pre-v3 documents).
    pub resources: Option<ResourceTotals>,
}

impl ParsedManifest {
    /// Reads and parses a manifest file.
    ///
    /// # Errors
    ///
    /// Returns a message naming `path` for I/O, JSON, and schema
    /// failures alike.
    pub fn read_from_path(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading manifest {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("manifest {}: {e}", path.display()))
    }

    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, a missing or non-object layout, or a
    /// schema version newer than this build writes.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&doc)
    }

    /// Interprets an already-parsed document as a manifest.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ParsedManifest::parse`].
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let version = doc
            .get("schema_version")
            .and_then(Json::as_i64)
            .ok_or("missing schema_version — not a run manifest")?;
        if !(1..=SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "unsupported schema_version {version} (this build reads 1..={SCHEMA_VERSION})"
            ));
        }
        let obj_entries = |key: &str| -> Vec<(String, Json)> {
            match doc.get(key) {
                Some(Json::Obj(pairs)) => pairs.clone(),
                _ => Vec::new(),
            }
        };
        let artifacts = doc
            .get("artifacts")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|a| {
                Some(ArtifactRecord {
                    name: a.get("name")?.as_str()?.to_string(),
                    wall_seconds: a.get("wall_seconds")?.as_f64()?,
                })
            })
            .collect();
        let spans = obj_entries("spans")
            .into_iter()
            .filter_map(|(path, s)| {
                Some((
                    path,
                    SpanTotal {
                        count: s.get("count")?.as_i64()?.max(0) as u64,
                        total_seconds: s.get("total_seconds")?.as_f64()?,
                        max_seconds: s.get("max_seconds")?.as_f64()?,
                        // Resource columns are v3 additions: absent in
                        // older documents, defaulting to zero.
                        cpu_seconds: s.get("cpu_seconds").and_then(Json::as_f64).unwrap_or(0.0),
                        allocs: s.get("allocs").and_then(Json::as_i64).unwrap_or(0).max(0) as u64,
                        alloc_bytes: s.get("alloc_bytes").and_then(Json::as_i64).unwrap_or(0).max(0)
                            as u64,
                    },
                ))
            })
            .collect();
        let quality = obj_entries("quality")
            .into_iter()
            .filter_map(|(key, rec)| QualityRecord::from_json(&key, &rec))
            .collect();
        Ok(ParsedManifest {
            schema_version: version,
            tool: doc.get("tool").and_then(Json::as_str).unwrap_or("").to_string(),
            created_unix_ms: doc.get("created_unix_ms").and_then(Json::as_i64).unwrap_or(0),
            config: obj_entries("config"),
            artifacts,
            metrics: obj_entries("metrics"),
            spans,
            quality,
            resources: doc.get("resources").and_then(ResourceTotals::from_json),
        })
    }

    /// Sum of per-artifact wall times, seconds.
    pub fn total_wall_seconds(&self) -> f64 {
        self.artifacts.iter().map(|a| a.wall_seconds).sum()
    }

    /// The named artifact's wall time, if recorded.
    pub fn artifact_wall_seconds(&self, name: &str) -> Option<f64> {
        self.artifacts.iter().find(|a| a.name == name).map(|a| a.wall_seconds)
    }

    /// The named metric's raw JSON value.
    pub fn metric(&self, name: &str) -> Option<&Json> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The named quality record.
    pub fn quality_record(&self, key: &str) -> Option<&QualityRecord> {
        self.quality.iter().find(|r| r.key == key)
    }
}

/// Aggregates several run manifests into one schema-v3 document, for
/// flaky-machine CI (merge repeated runs and keep the best wall numbers)
/// and for sharded runs (merge the parent manifest with the per-shard
/// worker manifests so counters reconstruct single-process totals).
///
/// Rules, per section:
///
/// - **config**: the first manifest's entries, plus a `merged_inputs`
///   provenance array listing every input label in order; keys sorted.
/// - **artifacts**: union by name, keeping the *minimum* wall time
///   (first manifest's order, unseen names appended).
/// - **spans**: union by path, minimum `total_seconds` and
///   `max_seconds`, maximum `count`; sorted by path. Resource columns
///   merge conservatively: minimum `cpu_seconds` (timing, like wall),
///   maximum `allocs`/`alloc_bytes` (deterministic, so inputs that are
///   runs of the same experiment agree anyway).
/// - **metrics**: union by name, sorted. Integer counters that agree
///   across inputs pass through; disagreeing counters are *summed*
///   (shard manifests partition the work, so their counters add up to
///   the single-process totals). Gauges keep the maximum; structured
///   metrics (histograms) keep the first occurrence.
/// - **resources**: present when any input has the section. Counter
///   fields (`allocs`, `deallocs`, `alloc_bytes`) follow the metrics
///   rule — agree → pass through, disagree → sum (shards partition the
///   work); `peak_bytes`/`peak_rss_kb` keep the maximum;
///   `cpu_seconds` is summed (a sharded run's total CPU bill across
///   processes — compare against min wall for parallel efficiency);
///   `alloc_counting` is true only when *every* contributing input
///   counted (a mixed merge would under-report).
/// - **quality**: union by key, first occurrence passed through
///   verbatim. A key present in several inputs must agree within
///   `quality_tol` (absolute, on p50/p90/max/bias) or the merge fails —
///   quality is deterministic, so disagreement means the inputs are not
///   runs of the same experiment.
/// - `created_unix_ms` is the minimum; `tool` comes from the first.
///
/// # Errors
///
/// Fails on an empty input list or a quality disagreement, naming the
/// key, statistic, and both values.
pub fn merge_manifests(
    inputs: &[(String, ParsedManifest)],
    quality_tol: f64,
) -> Result<Json, String> {
    let (_, first) = inputs.first().ok_or("no manifests to merge")?;

    let mut config = first.config.clone();
    config.retain(|(k, _)| k != "merged_inputs");
    config.push((
        "merged_inputs".to_string(),
        Json::Arr(inputs.iter().map(|(label, _)| Json::str(label.as_str())).collect()),
    ));
    config.sort_by(|a, b| a.0.cmp(&b.0));

    let mut artifacts: Vec<ArtifactRecord> = Vec::new();
    for (_, m) in inputs {
        for a in &m.artifacts {
            match artifacts.iter_mut().find(|e| e.name == a.name) {
                Some(e) => e.wall_seconds = e.wall_seconds.min(a.wall_seconds),
                None => artifacts.push(a.clone()),
            }
        }
    }

    let mut spans: Vec<(String, SpanTotal)> = Vec::new();
    for (_, m) in inputs {
        for (path, s) in &m.spans {
            match spans.iter_mut().find(|(p, _)| p == path) {
                Some((_, e)) => {
                    e.total_seconds = e.total_seconds.min(s.total_seconds);
                    e.max_seconds = e.max_seconds.min(s.max_seconds);
                    e.count = e.count.max(s.count);
                    e.cpu_seconds = e.cpu_seconds.min(s.cpu_seconds);
                    e.allocs = e.allocs.max(s.allocs);
                    e.alloc_bytes = e.alloc_bytes.max(s.alloc_bytes);
                }
                None => spans.push((path.clone(), *s)),
            }
        }
    }
    spans.sort_by(|a, b| a.0.cmp(&b.0));

    let resources = merge_resources(inputs);

    let mut metrics: Vec<(String, Vec<&Json>)> = Vec::new();
    for (_, m) in inputs {
        for (name, value) in &m.metrics {
            match metrics.iter_mut().find(|(n, _)| n == name) {
                Some((_, seen)) => seen.push(value),
                None => metrics.push((name.clone(), vec![value])),
            }
        }
    }
    metrics.sort_by(|a, b| a.0.cmp(&b.0));
    let metrics: Vec<(String, Json)> = metrics
        .into_iter()
        .map(|(name, seen)| {
            let merged = if seen.iter().all(|v| v.as_i64().is_some()) {
                let values: Vec<i64> = seen.iter().map(|v| v.as_i64().expect("checked")).collect();
                if values.windows(2).all(|w| w[0] == w[1]) {
                    Json::Int(values[0])
                } else {
                    Json::Int(values.iter().sum())
                }
            } else if seen.iter().all(|v| matches!(v, Json::Float(_) | Json::Int(_))) {
                Json::Float(
                    seen.iter().filter_map(|v| v.as_f64()).fold(f64::NEG_INFINITY, f64::max),
                )
            } else {
                seen[0].clone()
            };
            (name, merged)
        })
        .collect();

    let mut quality: Vec<&QualityRecord> = Vec::new();
    for (label, m) in inputs {
        for rec in &m.quality {
            match quality.iter().find(|r| r.key == rec.key) {
                Some(kept) => {
                    for (stat, a, b) in [
                        ("p50", kept.p50, rec.p50),
                        ("p90", kept.p90, rec.p90),
                        ("max", kept.max, rec.max),
                        ("bias", kept.bias, rec.bias),
                    ] {
                        let agree = (a - b).abs() <= quality_tol || (a.is_nan() && b.is_nan());
                        if !agree {
                            return Err(format!(
                                "quality record `{}` disagrees between inputs on {stat}: \
                                 {a} vs {b} (from {label}) exceeds tolerance {quality_tol}",
                                rec.key
                            ));
                        }
                    }
                }
                None => quality.push(rec),
            }
        }
    }
    quality.sort_by(|a, b| a.key.cmp(&b.key));

    Ok(Json::obj([
        ("schema_version", Json::Int(SCHEMA_VERSION)),
        ("tool", Json::str(first.tool.as_str())),
        (
            "created_unix_ms",
            Json::Int(inputs.iter().map(|(_, m)| m.created_unix_ms).min().unwrap_or(0)),
        ),
        ("config", Json::Obj(config)),
        (
            "artifacts",
            Json::Arr(
                artifacts
                    .iter()
                    .map(|a| {
                        Json::obj([
                            ("name", Json::str(a.name.as_str())),
                            ("wall_seconds", Json::Float(a.wall_seconds)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("metrics", Json::Obj(metrics)),
        (
            "spans",
            Json::Obj(
                spans
                    .into_iter()
                    .map(|(path, s)| {
                        (
                            path,
                            Json::obj([
                                ("count", Json::Int(s.count as i64)),
                                ("total_seconds", Json::Float(s.total_seconds)),
                                ("max_seconds", Json::Float(s.max_seconds)),
                                ("cpu_seconds", Json::Float(s.cpu_seconds)),
                                ("allocs", Json::Int(s.allocs as i64)),
                                ("alloc_bytes", Json::Int(s.alloc_bytes as i64)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        ("quality", Json::Obj(quality.into_iter().map(|r| (r.key.clone(), r.to_json())).collect())),
        ("resources", resources.map_or(Json::Null, |r| r.to_json())),
    ]))
}

/// Folds the inputs' `resources` sections per the rules documented on
/// [`merge_manifests`]; `None` when no input has the section.
fn merge_resources(inputs: &[(String, ParsedManifest)]) -> Option<ResourceTotals> {
    let seen: Vec<ResourceTotals> = inputs.iter().filter_map(|(_, m)| m.resources).collect();
    if seen.is_empty() {
        return None;
    }
    let counter = |field: fn(&ResourceTotals) -> u64| -> u64 {
        let values: Vec<u64> = seen.iter().map(field).collect();
        if values.windows(2).all(|w| w[0] == w[1]) {
            values[0]
        } else {
            values.iter().sum()
        }
    };
    Some(ResourceTotals {
        alloc_counting: seen.iter().all(|r| r.alloc_counting),
        allocs: counter(|r| r.allocs),
        deallocs: counter(|r| r.deallocs),
        alloc_bytes: counter(|r| r.alloc_bytes),
        peak_bytes: seen.iter().map(|r| r.peak_bytes).max().unwrap_or(0),
        peak_rss_kb: seen.iter().filter_map(|r| r.peak_rss_kb).max(),
        cpu_seconds: seen
            .iter()
            .filter_map(|r| r.cpu_seconds)
            .fold(None, |acc, v| Some(acc.unwrap_or(0.0) + v)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_through_json() {
        let mut m = RunManifest::new("repro-test");
        m.set("seed", Json::Int(20071215));
        m.set("quick", Json::Bool(true));
        m.set("seed", Json::Int(42)); // replace, not duplicate
        m.record_artifact("fig3", 0.125);
        m.record_artifact("tab4", 2.5);

        let text = m.to_json().to_string_pretty();
        let back = Json::parse(&text).expect("manifest is valid JSON");

        assert_eq!(back.get("schema_version").and_then(Json::as_i64), Some(SCHEMA_VERSION));
        assert_eq!(back.get("tool").and_then(Json::as_str), Some("repro-test"));
        assert!(back.get("created_unix_ms").and_then(Json::as_i64).unwrap_or(0) > 0);
        let config = back.get("config").expect("config object");
        assert_eq!(config.get("seed").and_then(Json::as_i64), Some(42));
        assert_eq!(config.get("quick"), Some(&Json::Bool(true)));

        let artifacts = back.get("artifacts").and_then(Json::as_arr).expect("artifacts");
        assert_eq!(artifacts.len(), 2);
        assert_eq!(artifacts[0].get("name").and_then(Json::as_str), Some("fig3"));
        assert_eq!(artifacts[1].get("wall_seconds").and_then(Json::as_f64), Some(2.5));

        // Metrics and spans sections exist even when empty.
        assert!(back.get("metrics").is_some());
        assert!(back.get("spans").is_some());
    }

    #[test]
    fn manifest_includes_global_metrics_and_spans() {
        metrics::counter("manifest.test.counter").add(7);
        {
            let _g = span::enter("manifest_test_span");
        }
        let m = RunManifest::new("t");
        let doc = m.to_json();
        let metrics = doc.get("metrics").expect("metrics");
        // The registry is process-global, so other tests may also bump it.
        assert!(metrics.get("manifest.test.counter").and_then(Json::as_i64).unwrap_or(0) >= 7);
        let spans = doc.get("spans").expect("spans");
        assert!(spans.get("manifest_test_span").is_some());
    }

    #[test]
    fn write_to_path_emits_parseable_file() {
        let mut m = RunManifest::new("writer");
        m.record_artifact("a", 0.0);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("udse_obs_manifest_test_{}.json", std::process::id()));
        m.write_to_path(&path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        let back = Json::parse(&text).expect("valid JSON on disk");
        assert_eq!(back.get("tool").and_then(Json::as_str), Some("writer"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn write_to_path_creates_missing_parents_and_names_path_on_failure() {
        let m = RunManifest::new("nested");
        let dir =
            std::env::temp_dir().join(format!("udse_obs_manifest_parents_{}", std::process::id()));
        let path = dir.join("deep/run.manifest.json");
        m.write_to_path(&path).expect("parents are created on demand");
        assert!(path.is_file());
        let _ = std::fs::remove_dir_all(&dir);

        // A path whose parent is a *file* cannot be created; the error
        // must name the offending path instead of panicking.
        let blocker =
            std::env::temp_dir().join(format!("udse_obs_manifest_blocker_{}", std::process::id()));
        std::fs::write(&blocker, "not a directory").expect("fixture");
        let bad = blocker.join("child.json");
        let err = m.write_to_path(&bad).expect_err("file-as-parent must fail");
        assert!(err.to_string().contains(&blocker.display().to_string()), "error: {err}");
        let _ = std::fs::remove_file(&blocker);
    }

    #[test]
    fn serialization_is_deterministic_and_byte_identical_on_round_trip() {
        let mut m = RunManifest::new("det");
        // Insert config keys out of order; serialization must sort them.
        m.set("zeta", Json::Int(1));
        m.set("alpha", Json::Bool(false));
        m.record_artifact("fig1", 1.5);
        let doc = m.to_json();
        let config = doc.get("config").expect("config");
        match config {
            Json::Obj(pairs) => {
                let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, vec!["alpha", "zeta"], "config keys sorted");
            }
            other => panic!("config must be an object, got {other:?}"),
        }
        // parse → serialize is byte-identical: the committed BENCH
        // baselines and `udse-inspect diff` depend on a stable layout.
        let first = doc.to_string_pretty();
        let second = Json::parse(&first).expect("valid").to_string_pretty();
        assert_eq!(first, second, "round trip must be byte-identical");
    }

    #[test]
    fn manifest_v2_carries_quality_and_histogram_quantiles() {
        quality::record(
            crate::quality::QualityRecord::from_signed_errors(
                "manifest.test.bips",
                &[0.01, -0.03, 0.05],
            )
            .with_r_squared(0.99),
        );
        metrics::histogram("manifest.test.hist", &[0.1, 1.0, 10.0]).observe(0.5);
        let doc = RunManifest::new("q").to_json();
        assert_eq!(doc.get("schema_version").and_then(Json::as_i64), Some(SCHEMA_VERSION));
        let q = doc.get("quality").expect("quality section");
        let rec = q.get("manifest.test.bips").expect("recorded key");
        assert_eq!(rec.get("n").and_then(Json::as_i64), Some(3));
        assert!(rec.get("p50").and_then(Json::as_f64).expect("p50") > 0.0);
        let hist = doc.get("metrics").and_then(|m| m.get("manifest.test.hist")).expect("hist");
        for field in ["p50", "p90", "p99"] {
            assert!(hist.get(field).and_then(Json::as_f64).is_some(), "missing {field}");
        }
    }

    fn merge_fixture(wall: f64, counter: i64, p50: f64) -> ParsedManifest {
        let text = format!(
            r#"{{
            "schema_version": 2,
            "tool": "repro",
            "created_unix_ms": {ms},
            "config": {{"quick": true, "seed": 2007}},
            "artifacts": [{{"name": "fig1", "wall_seconds": {wall}}}],
            "metrics": {{"pool.jobs": {counter}, "sweep.designs_per_sec": {rate}}},
            "spans": {{"fig1": {{"count": 1, "total_seconds": {wall}, "max_seconds": {wall}}}}},
            "quality": {{"validation.pooled.bips": {{"n": 25, "p50": {p50}, "p90": 0.2,
                "max": 0.3, "bias": 0.0, "rmse": 0.1, "r_squared": null}}}}
        }}"#,
            ms = (wall * 1000.0) as i64 + 1000,
            rate = 100.0 * wall + 0.5,
        );
        ParsedManifest::parse(&text).expect("fixture parses")
    }

    #[test]
    fn merge_keeps_min_wall_sums_counters_and_checks_quality() {
        let a = merge_fixture(2.0, 100, 0.07);
        let b = merge_fixture(1.5, 40, 0.07);
        let doc =
            merge_manifests(&[("a.json".to_string(), a.clone()), ("b.json".to_string(), b)], 0.02)
                .expect("merge succeeds");
        let merged = ParsedManifest::from_json(&doc).expect("merged doc is a valid manifest");
        assert_eq!(merged.schema_version, SCHEMA_VERSION);
        assert_eq!(merged.artifact_wall_seconds("fig1"), Some(1.5), "min wall per artifact");
        assert_eq!(merged.spans[0].1.total_seconds, 1.5, "min wall per span");
        // Disagreeing counters sum (shards partition the work)...
        assert_eq!(merged.metric("pool.jobs").and_then(Json::as_i64), Some(140));
        // ...gauges keep the best observed value.
        assert_eq!(merged.metric("sweep.designs_per_sec").and_then(Json::as_f64), Some(200.5));
        // Quality passes through verbatim; provenance lists the inputs.
        assert_eq!(merged.quality_record("validation.pooled.bips").map(|r| r.p50), Some(0.07));
        let inputs = doc.get("config").and_then(|c| c.get("merged_inputs")).expect("provenance");
        assert_eq!(inputs.as_arr().map(<[Json]>::len), Some(2));
        assert_eq!(merged.created_unix_ms, 2500, "earliest creation time");

        // Agreeing counters pass through unsummed.
        let doc =
            merge_manifests(&[("a".to_string(), a.clone()), ("a2".to_string(), a.clone())], 0.02)
                .expect("identical runs merge");
        assert_eq!(
            ParsedManifest::from_json(&doc).unwrap().metric("pool.jobs").and_then(Json::as_i64),
            Some(100)
        );
    }

    #[test]
    fn merge_rejects_quality_disagreement_and_empty_input() {
        let a = merge_fixture(2.0, 100, 0.07);
        let b = merge_fixture(2.0, 100, 0.20);
        let err = merge_manifests(&[("a".to_string(), a), ("b".to_string(), b)], 0.02)
            .expect_err("quality drift");
        assert!(err.contains("validation.pooled.bips"), "names the key: {err}");
        assert!(err.contains("p50"), "names the stat: {err}");
        assert!(merge_manifests(&[], 0.02).is_err(), "empty input rejected");
    }

    #[test]
    fn manifest_v3_carries_resources_and_span_resource_columns() {
        {
            let _g = span::enter("manifest_resource_span");
            let v: Vec<u8> = vec![0; 64 * 1024];
            assert!(!v.is_empty());
        }
        let doc = RunManifest::new("r").to_json();
        // The obs test binary runs under the counting allocator, so the
        // captured totals are live.
        let res = doc.get("resources").expect("resources section");
        assert_eq!(res.get("alloc_counting"), Some(&Json::Bool(true)));
        assert!(res.get("allocs").and_then(Json::as_i64).unwrap_or(0) > 0);
        assert!(res.get("peak_bytes").and_then(Json::as_i64).unwrap_or(0) > 0);
        let span = doc.get("spans").and_then(|s| s.get("manifest_resource_span")).expect("span");
        assert!(span.get("allocs").and_then(Json::as_i64).unwrap_or(0) >= 1);
        assert!(span.get("alloc_bytes").and_then(Json::as_i64).unwrap_or(0) >= 64 * 1024);
        assert!(span.get("cpu_seconds").and_then(Json::as_f64).is_some());

        // And the whole thing reads back.
        let parsed = ParsedManifest::parse(&doc.to_string_pretty()).expect("parses");
        let back = parsed.resources.expect("parsed resources");
        assert!(back.alloc_counting);
        assert!(back.allocs > 0);
        let (_, s) =
            parsed.spans.iter().find(|(p, _)| p == "manifest_resource_span").expect("span");
        assert!(s.allocs >= 1);
        assert!(s.alloc_bytes >= 64 * 1024);
    }

    #[test]
    fn resource_totals_round_trip_including_unmeasured_probes() {
        for r in [
            ResourceTotals {
                alloc_counting: true,
                allocs: 123,
                deallocs: 120,
                alloc_bytes: 1 << 30,
                peak_bytes: 1 << 24,
                peak_rss_kb: Some(65_536),
                cpu_seconds: Some(1.25),
            },
            ResourceTotals {
                alloc_counting: false,
                allocs: 0,
                deallocs: 0,
                alloc_bytes: 0,
                peak_bytes: 0,
                peak_rss_kb: None,
                cpu_seconds: None,
            },
        ] {
            let text = r.to_json().to_string_compact();
            let back = ResourceTotals::from_json(&Json::parse(&text).unwrap()).expect("parses");
            assert_eq!(back, r, "round trip of {text}");
        }
        assert_eq!(ResourceTotals::from_json(&Json::Null), None, "pre-v3: no section");
    }

    #[test]
    fn merge_folds_resources_per_documented_rules() {
        let with_resources = |allocs: i64, peak_rss: i64, cpu: f64| -> ParsedManifest {
            let text = format!(
                r#"{{
                "schema_version": 3, "tool": "repro", "created_unix_ms": 1,
                "config": {{}}, "artifacts": [], "metrics": {{}}, "spans": {{}},
                "quality": {{}},
                "resources": {{"alloc_counting": true, "allocs": {allocs},
                    "deallocs": {allocs}, "alloc_bytes": {b}, "peak_bytes": 10,
                    "peak_rss_kb": {peak_rss}, "cpu_seconds": {cpu}}}
            }}"#,
                b = allocs * 100,
            );
            ParsedManifest::parse(&text).expect("fixture parses")
        };
        let a = with_resources(50, 9_000, 1.5);
        let b = with_resources(70, 11_000, 2.5);
        let doc = merge_manifests(&[("a".to_string(), a.clone()), ("b".to_string(), b)], 0.02)
            .expect("merges");
        let merged = ParsedManifest::from_json(&doc).expect("valid").resources.expect("resources");
        assert_eq!(merged.allocs, 120, "disagreeing counters sum");
        assert_eq!(merged.alloc_bytes, 12_000);
        assert_eq!(merged.peak_rss_kb, Some(11_000), "peaks keep the max");
        assert_eq!(merged.cpu_seconds, Some(4.0), "CPU sums across processes");
        assert!(merged.alloc_counting);

        // Identical inputs pass counters through unsummed.
        let doc = merge_manifests(&[("a".to_string(), a.clone()), ("a2".to_string(), a)], 0.02)
            .expect("merges");
        let merged = ParsedManifest::from_json(&doc).expect("valid").resources.expect("resources");
        assert_eq!(merged.allocs, 50);

        // Pre-v3 inputs merge with no resources section.
        let doc = merge_manifests(&[("old".to_string(), merge_fixture(1.0, 10, 0.07))], 0.02)
            .expect("merges");
        assert!(ParsedManifest::from_json(&doc).expect("valid").resources.is_none());
    }

    #[test]
    fn parsed_manifest_reads_v1_through_v3_but_rejects_future() {
        let v1 = r#"{
            "schema_version": 1,
            "tool": "repro",
            "created_unix_ms": 5,
            "command": ["repro"],
            "config": {"seed": 2007},
            "artifacts": [{"name": "fig1", "wall_seconds": 2.0}],
            "metrics": {"sim.instructions": 100},
            "spans": {"fig1": {"count": 1, "total_seconds": 2.0, "max_seconds": 2.0}}
        }"#;
        let m = ParsedManifest::parse(v1).expect("v1 parses");
        assert_eq!(m.schema_version, 1);
        assert_eq!(m.tool, "repro");
        assert!(m.quality.is_empty(), "v1 has no quality section");
        assert!(m.resources.is_none(), "v1 has no resources section");
        assert_eq!(m.spans[0].1.allocs, 0, "pre-v3 span resources default to zero");
        assert_eq!(m.artifact_wall_seconds("fig1"), Some(2.0));
        assert_eq!(m.total_wall_seconds(), 2.0);
        assert_eq!(m.metric("sim.instructions").and_then(Json::as_i64), Some(100));
        assert_eq!(m.spans[0].1.count, 1);

        quality::record(crate::quality::QualityRecord::from_signed_errors(
            "parse.test.watts",
            &[0.02],
        ));
        let mut native = RunManifest::new("v2");
        native.record_artifact("a", 1.0);
        let m = ParsedManifest::parse(&native.to_json().to_string_pretty()).expect("v3 parses");
        assert_eq!(m.schema_version, SCHEMA_VERSION);
        assert!(m.quality_record("parse.test.watts").is_some());
        assert!(m.resources.is_some(), "native manifests carry resources");

        let future = r#"{"schema_version": 99, "tool": "x"}"#;
        let err = ParsedManifest::parse(future).expect_err("future version rejected");
        assert!(err.contains("unsupported schema_version 99"), "err: {err}");
        assert!(ParsedManifest::parse("{}").is_err(), "missing version rejected");
        assert!(ParsedManifest::parse("not json").is_err());
    }
}
