//! A std-only scoped-thread work pool with deterministic result order.
//!
//! [`map`] fans a slice of jobs out across worker threads and returns the
//! results **in input order**: workers pull indexed jobs from a shared
//! cursor and every result lands in the slot reserved for its index, so
//! parallel output is bitwise-identical to a sequential run of the same
//! closure. The ground-truth oracle layer (`udse-core::oracle`) runs all
//! simulation batches through here; `repro --jobs N` sizes the pool via
//! [`set_max_workers`] (`--jobs 1` restores fully sequential execution on
//! the calling thread — no worker threads are spawned at all).
//!
//! Worker threads inherit the spawning thread's open span path (see
//! [`crate::span::adopt`]), so spans opened inside jobs are attributed
//! under the span that dispatched the batch, and three pool metrics are
//! maintained:
//!
//! - `pool.jobs` (counter) — jobs executed through the pool;
//! - `pool.workers` (gauge) — workers used by the most recent batch;
//! - `pool.steal` (counter) — jobs a worker pulled from outside its own
//!   round-robin stripe, i.e. redistribution caused by load imbalance
//!   (0 when every worker stays exactly on its stripe).
//!
//! # Examples
//!
//! ```
//! use udse_obs::pool;
//!
//! let squares = pool::map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker cap; 0 means "not configured yet" (resolve from
/// the hardware at first use).
static MAX_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker cap. `1` disables threading entirely
/// (every [`map`] runs inline on the caller); values are clamped to at
/// least 1. Callable repeatedly — tests flip between serial and parallel
/// modes.
pub fn set_max_workers(workers: usize) {
    MAX_WORKERS.store(workers.max(1), Ordering::Relaxed);
}

/// The configured worker cap, defaulting to
/// [`std::thread::available_parallelism`] when unset.
pub fn max_workers() -> usize {
    match MAX_WORKERS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
        n => n,
    }
}

/// Applies `f` to every element of `jobs`, in parallel when the pool has
/// more than one worker, returning results in input order regardless of
/// scheduling. Panics in `f` propagate to the caller.
pub fn map<T, R, F>(jobs: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = max_workers().min(jobs.len());
    if workers <= 1 {
        return jobs.iter().map(f).collect();
    }
    crate::metrics::counter("pool.jobs").add(jobs.len() as u64);
    crate::metrics::gauge("pool.workers").set(workers as f64);
    let parent_path = crate::span::current_path();
    let cursor = AtomicUsize::new(0);
    let mut harvested: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|worker_id| {
                let f = &f;
                let cursor = &cursor;
                let parent_path = parent_path.as_deref();
                scope.spawn(move || {
                    let _ctx = parent_path.map(crate::span::adopt);
                    let mut local: Vec<(usize, R)> = Vec::new();
                    let mut stolen = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        if i % workers != worker_id {
                            stolen += 1;
                        }
                        local.push((i, f(&jobs[i])));
                    }
                    if stolen > 0 {
                        crate::metrics::counter("pool.steal").add(stolen);
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pool worker panicked")).collect()
    });
    // Deterministic reassembly: each result drops into its input slot.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);
    for (i, r) in harvested.drain(..).flatten() {
        debug_assert!(slots[i].is_none(), "job {i} produced twice");
        slots[i] = Some(r);
    }
    slots.into_iter().map(|r| r.expect("every job produced a result")).collect()
}

/// Splits the half-open range `0..total` into contiguous chunks (about
/// four per worker, so uneven chunk costs still balance), applies `f` to
/// each chunk in parallel through [`map`], and returns the per-chunk
/// results **in range order**. Concatenating the results reproduces a
/// sequential left-to-right pass over `0..total` exactly.
///
/// Chunk *boundaries* depend on the worker cap, so a reduction that is
/// sensitive to association order (e.g. "last maximal element wins")
/// must tie-break on the global ordinal inside each chunk *and* when
/// folding the chunk results, or `--jobs 1` and `--jobs N` runs will
/// disagree. Order-insensitive folds (`f64::max`, sums of integers,
/// concatenation) need no extra care.
///
/// # Examples
///
/// ```
/// use udse_obs::pool;
///
/// let partials = pool::map_chunks(10, |r| r.sum::<u64>());
/// assert_eq!(partials.iter().sum::<u64>(), 45);
/// ```
pub fn map_chunks<R, F>(total: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<u64>) -> R + Sync,
{
    if total == 0 {
        return Vec::new();
    }
    let chunks = ((max_workers() as u64) * 4).clamp(1, total);
    let per = total.div_ceil(chunks);
    let ranges: Vec<std::ops::Range<u64>> = (0..chunks)
        .map(|c| (c * per)..((c + 1) * per).min(total))
        .filter(|r| !r.is_empty())
        .collect();
    map(&ranges, |r| f(r.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Runs `body` with the pool pinned to `workers`, restoring the
    /// previous configuration afterwards so tests don't leak settings
    /// into each other (the cap is process-global).
    fn with_workers<R>(workers: usize, body: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _serial = LOCK.lock().expect("pool test lock poisoned");
        let prev = MAX_WORKERS.load(Ordering::Relaxed);
        set_max_workers(workers);
        let out = body();
        MAX_WORKERS.store(prev, Ordering::Relaxed);
        out
    }

    #[test]
    fn map_preserves_input_order() {
        let jobs: Vec<u64> = (0..1_000).collect();
        let parallel = with_workers(8, || map(&jobs, |&x| x * 3 + 1));
        let serial: Vec<u64> = jobs.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn single_worker_runs_inline() {
        // With one worker no threads spawn, so thread-locals of the
        // caller remain visible to the closure.
        thread_local! {
            static MARK: std::cell::Cell<u64> = const { std::cell::Cell::new(7) };
        }
        let out = with_workers(1, || map(&[0u8; 4], |_| MARK.with(|m| m.get())));
        assert_eq!(out, vec![7, 7, 7, 7]);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let none: Vec<u32> = with_workers(4, || map(&[] as &[u32], |&x| x));
        assert!(none.is_empty());
        let one = with_workers(4, || map(&[41u32], |&x| x + 1));
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn workers_clamp_to_job_count() {
        // More workers than jobs must not deadlock or drop results.
        let out = with_workers(64, || map(&[1u32, 2, 3], |&x| x));
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn uneven_job_costs_still_order_correctly() {
        let jobs: Vec<u64> = (0..64).collect();
        let out = with_workers(4, || {
            map(&jobs, |&x| {
                if x % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                x
            })
        });
        assert_eq!(out, jobs);
    }

    #[test]
    fn pool_metrics_accumulate() {
        let before = crate::metrics::counter("pool.jobs").get();
        with_workers(4, || map(&[0u8; 100], |_| ()));
        assert!(crate::metrics::counter("pool.jobs").get() >= before + 100);
        assert_eq!(crate::metrics::gauge("pool.workers").get(), 4.0);
    }

    #[test]
    fn worker_spans_attribute_under_spawner() {
        with_workers(3, || {
            let _root = crate::span::enter("pool_attr_test");
            map(&[0u8; 12], |_| {
                let _g = crate::span::enter("job");
            });
        });
        let stats = crate::span::global().snapshot();
        let (_, s) = stats
            .iter()
            .find(|(p, _)| p == "pool_attr_test/job")
            .expect("worker spans nest under the dispatching span");
        assert_eq!(s.count, 12);
    }

    #[test]
    fn map_chunks_concatenates_to_sequential_order() {
        for workers in [1, 3, 4, 13] {
            let collected: Vec<u64> =
                with_workers(workers, || map_chunks(1_000, |r| r.collect::<Vec<u64>>()))
                    .into_iter()
                    .flatten()
                    .collect();
            let expected: Vec<u64> = (0..1_000).collect();
            assert_eq!(collected, expected, "workers={workers}");
        }
    }

    #[test]
    fn map_chunks_covers_small_and_empty_totals() {
        let none = with_workers(4, || map_chunks(0, |r| r.count()));
        assert!(none.is_empty());
        // Fewer indices than chunk slots: every index appears exactly once.
        let tiny: Vec<u64> = with_workers(8, || map_chunks(3, |r| r.collect::<Vec<u64>>()))
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(tiny, vec![0, 1, 2]);
    }

    #[test]
    fn set_max_workers_clamps_zero() {
        with_workers(1, || {
            set_max_workers(0);
            assert_eq!(max_workers(), 1);
        });
    }
}
