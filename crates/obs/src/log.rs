//! Leveled structured logging to stderr, gated by `UDSE_LOG`.
//!
//! The level is resolved once, lazily, from the `UDSE_LOG` environment
//! variable (`off`, `error`, `warn`, `info`, `debug`, `trace`;
//! case-insensitive; unknown values fall back to the default). The
//! default is [`Level::Warn`] so normal runs keep stderr quiet, and
//! `repro --verbose` raises it to [`Level::Info`] programmatically via
//! [`set_level`].
//!
//! Records go to stderr so stdout stays reserved for the paper's tables
//! and figures. The format is one line per record:
//!
//! ```text
//! [   2.134s INFO  context] trained 9 benchmark model pairs in 1.9s
//! ```
//!
//! Use through the macros:
//!
//! ```
//! udse_obs::info!("sweep", "evaluated {} designs", 262_500);
//! udse_obs::debug!("fit", "cholesky accepted (cond ~ {:.1e})", 1e6);
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log verbosity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or surprising failures.
    Error = 1,
    /// Suspicious conditions the run survives.
    Warn = 2,
    /// Stage-level narrative (training finished, sweep throughput).
    Info = 3,
    /// Per-decision detail (fallbacks, cache fills).
    Debug = 4,
    /// High-volume tracing.
    Trace = 5,
}

impl Level {
    fn parse_spec(s: &str) -> Option<Option<Level>> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN ",
            Level::Info => "INFO ",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// Resolved level encoding: 0 = not yet resolved, 1 = off, otherwise
/// `Level as u8 + 1`.
static LEVEL: AtomicU8 = AtomicU8::new(0);

fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

fn resolve_from_env() -> u8 {
    let parsed = std::env::var("UDSE_LOG").ok().and_then(|v| Level::parse_spec(v.trim()));
    match parsed {
        Some(None) => 1,
        Some(Some(level)) => level as u8 + 1,
        // Unset or unparseable: default to warnings.
        None => Level::Warn as u8 + 1,
    }
}

fn current() -> u8 {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let resolved = resolve_from_env();
    // A concurrent set_level wins; only fill in if still unresolved.
    let _ = LEVEL.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    LEVEL.load(Ordering::Relaxed)
}

/// Anchors the elapsed-time column at the current instant and resolves
/// the level. Call once at program start so record timestamps measure
/// from process launch rather than from the first record.
pub fn init() {
    let _ = start_instant();
    let _ = current();
}

/// Overrides the log level (e.g. from a `--verbose` flag). `None`
/// silences logging entirely.
pub fn set_level(level: Option<Level>) {
    LEVEL.store(level.map_or(1, |l| l as u8 + 1), Ordering::Relaxed);
    // Anchor the elapsed-time column at configuration time if nothing
    // logged earlier.
    let _ = start_instant();
}

/// Raises the level to at least `level`, never lowering an already more
/// verbose setting (so `--verbose` composes with `UDSE_LOG=trace`).
pub fn raise_level(level: Level) {
    let target = level as u8 + 1;
    if current() < target {
        LEVEL.store(target, Ordering::Relaxed);
    }
}

/// Whether a record at `level` would be emitted.
pub fn enabled(level: Level) -> bool {
    current() > level as u8
}

/// Emits one record. Prefer the [`error!`](crate::error!) /
/// [`warn!`](crate::warn!) / [`info!`](crate::info!) /
/// [`debug!`](crate::debug!) / [`trace!`](crate::trace!) macros.
pub fn log(level: Level, module: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let elapsed = start_instant().elapsed().as_secs_f64();
    eprintln!("[{:>8.3}s {} {}] {}", elapsed, level.label(), module, args);
}

/// Logs at [`Level::Error`]: `udse_obs::error!("module", "fmt", args...)`.
#[macro_export]
macro_rules! error {
    ($module:expr, $($arg:tt)+) => {
        $crate::log::log($crate::Level::Error, $module, format_args!($($arg)+))
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($module:expr, $($arg:tt)+) => {
        $crate::log::log($crate::Level::Warn, $module, format_args!($($arg)+))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($module:expr, $($arg:tt)+) => {
        $crate::log::log($crate::Level::Info, $module, format_args!($($arg)+))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($module:expr, $($arg:tt)+) => {
        $crate::log::log($crate::Level::Debug, $module, format_args!($($arg)+))
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($module:expr, $($arg:tt)+) => {
        $crate::log::log($crate::Level::Trace, $module, format_args!($($arg)+))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Level state is process-global, so exercise transitions in a single
    // test to avoid cross-test interference.
    #[test]
    fn level_ordering_and_overrides() {
        assert!(Level::Error < Level::Trace);

        set_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));

        // raise_level never lowers.
        raise_level(Level::Info);
        assert!(enabled(Level::Info));
        raise_level(Level::Error);
        assert!(enabled(Level::Info), "raise_level must not lower verbosity");

        set_level(None);
        assert!(!enabled(Level::Error));

        set_level(Some(Level::Trace));
        assert!(enabled(Level::Trace));
        // Emitting with every macro must not panic.
        crate::error!("test", "e {}", 1);
        crate::warn!("test", "w");
        crate::info!("test", "i");
        crate::debug!("test", "d");
        crate::trace!("test", "t");
        set_level(Some(Level::Warn));
    }

    #[test]
    fn parse_env_values() {
        assert_eq!(Level::parse_spec("off"), Some(None));
        assert_eq!(Level::parse_spec("ERROR"), Some(Some(Level::Error)));
        assert_eq!(Level::parse_spec("Info"), Some(Some(Level::Info)));
        assert_eq!(Level::parse_spec("bogus"), None);
    }
}
