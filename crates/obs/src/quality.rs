//! Model-quality telemetry: first-class records of predictor accuracy.
//!
//! The paper's headline claim is a number — median validation error near
//! 7.2 % (bips) / 5.4 % (watts) — and this module turns that number into
//! telemetry instead of a line of stdout. A [`QualityRecord`] summarizes
//! one error distribution (absolute relative-error quantiles, signed
//! bias, RMSE, optionally the model's R²); a process-global
//! [`Collector`] accumulates records under dotted keys
//! (`validation.ammp.bips`, `validation.pooled.watts`, `crossval.knots4`)
//! so the run manifest can persist them and `udse-inspect diff` can gate
//! future runs against a committed baseline.
//!
//! # Examples
//!
//! ```
//! use udse_obs::quality::QualityRecord;
//!
//! let signed = [0.05, -0.02, 0.10, -0.01];
//! let rec = QualityRecord::from_signed_errors("validation.demo.bips", &signed)
//!     .with_r_squared(0.994);
//! assert!(rec.p50 <= rec.p90 && rec.p90 <= rec.max);
//! udse_obs::quality::record(rec);
//! assert!(udse_obs::quality::global()
//!     .snapshot()
//!     .iter()
//!     .any(|r| r.key == "validation.demo.bips"));
//! ```

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::json::Json;

/// Accuracy summary of one model on one evaluation set.
///
/// All error fields are relative errors (`(obs - pred) / pred`):
/// quantiles and `max` over the absolute values, `bias` the signed mean
/// (negative = over-prediction, matching the paper's Table 2 sign
/// convention).
#[derive(Debug, Clone, PartialEq)]
pub struct QualityRecord {
    /// Dotted identifier: `<stage>.<benchmark-or-pool>.<response>`.
    pub key: String,
    /// Number of (observation, prediction) pairs summarized.
    pub n: u64,
    /// Median absolute relative error.
    pub p50: f64,
    /// 90th-percentile absolute relative error.
    pub p90: f64,
    /// Worst-case absolute relative error.
    pub max: f64,
    /// Mean signed relative error.
    pub bias: f64,
    /// Root-mean-square of the relative errors.
    pub rmse: f64,
    /// Training R² of the model, `NaN` when not applicable.
    pub r_squared: f64,
}

impl QualityRecord {
    /// Summarizes a sample of signed relative errors.
    ///
    /// # Panics
    ///
    /// Panics if `signed_errors` is empty.
    pub fn from_signed_errors(key: &str, signed_errors: &[f64]) -> Self {
        assert!(!signed_errors.is_empty(), "quality record of empty sample");
        let mut abs: Vec<f64> = signed_errors.iter().map(|e| e.abs()).collect();
        abs.sort_by(|a, b| a.partial_cmp(b).expect("finite errors"));
        let n = abs.len();
        let bias = signed_errors.iter().sum::<f64>() / n as f64;
        let rmse = (signed_errors.iter().map(|e| e * e).sum::<f64>() / n as f64).sqrt();
        QualityRecord {
            key: key.to_string(),
            n: n as u64,
            p50: sorted_quantile(&abs, 0.5),
            p90: sorted_quantile(&abs, 0.9),
            max: abs[n - 1],
            bias,
            rmse,
            r_squared: f64::NAN,
        }
    }

    /// Attaches the model's training R².
    #[must_use]
    pub fn with_r_squared(mut self, r_squared: f64) -> Self {
        self.r_squared = r_squared;
        self
    }

    /// The record's manifest representation (without the key, which the
    /// enclosing object supplies).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("n", Json::Int(self.n as i64)),
            ("p50", Json::Float(self.p50)),
            ("p90", Json::Float(self.p90)),
            ("max", Json::Float(self.max)),
            ("bias", Json::Float(self.bias)),
            ("rmse", Json::Float(self.rmse)),
            // NaN serializes as null; from_json maps it back.
            ("r_squared", Json::Float(self.r_squared)),
        ])
    }

    /// Rebuilds a record from its manifest representation.
    ///
    /// Missing or null numeric fields default to `NaN` so v1-era
    /// documents (no quality section at all) and hand-trimmed records
    /// still load.
    pub fn from_json(key: &str, doc: &Json) -> Option<QualityRecord> {
        let num = |field: &str| doc.get(field).and_then(Json::as_f64).unwrap_or(f64::NAN);
        Some(QualityRecord {
            key: key.to_string(),
            n: doc.get("n").and_then(Json::as_i64)? as u64,
            p50: num("p50"),
            p90: num("p90"),
            max: num("max"),
            bias: num("bias"),
            rmse: num("rmse"),
            r_squared: num("r_squared"),
        })
    }
}

/// Quantile of an ascending-sorted sample by linear interpolation.
fn sorted_quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q));
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Thread-safe store of quality records, keyed and sorted by `key`.
///
/// Re-recording a key replaces the previous record (a study re-run
/// within one process supersedes its earlier numbers).
#[derive(Debug, Default)]
pub struct Collector {
    records: Mutex<BTreeMap<String, QualityRecord>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Inserts (or replaces) a record under its key.
    pub fn record(&self, record: QualityRecord) {
        let mut records = self.records.lock().expect("quality collector poisoned");
        records.insert(record.key.clone(), record);
    }

    /// All records, sorted by key.
    pub fn snapshot(&self) -> Vec<QualityRecord> {
        let records = self.records.lock().expect("quality collector poisoned");
        records.values().cloned().collect()
    }

    /// The manifest `quality` section: an object keyed by record key.
    pub fn to_json(&self) -> Json {
        Json::Obj(self.snapshot().into_iter().map(|r| (r.key.clone(), r.to_json())).collect())
    }
}

/// The process-wide collector feeding the run manifest.
pub fn global() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::new)
}

/// Shorthand for `global().record(record)`.
pub fn record(record: QualityRecord) {
    global().record(record);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_from_signed_errors_summarizes() {
        let signed = [-0.10, 0.02, 0.05, -0.01, 0.20];
        let r = QualityRecord::from_signed_errors("t.k", &signed);
        assert_eq!(r.n, 5);
        assert!((r.p50 - 0.05).abs() < 1e-12, "p50 {}", r.p50);
        assert!((r.max - 0.20).abs() < 1e-12);
        assert!(r.p50 <= r.p90 && r.p90 <= r.max);
        assert!((r.bias - 0.032).abs() < 1e-12, "bias {}", r.bias);
        assert!(r.rmse >= r.bias.abs());
        assert!(r.r_squared.is_nan());
    }

    #[test]
    fn json_round_trip_preserves_fields() {
        let r = QualityRecord::from_signed_errors("rt", &[0.1, -0.2, 0.3]).with_r_squared(0.987);
        let back = QualityRecord::from_json("rt", &r.to_json()).expect("parses");
        assert_eq!(back.n, r.n);
        assert!((back.p50 - r.p50).abs() < 1e-12);
        assert!((back.bias - r.bias).abs() < 1e-12);
        assert!((back.r_squared - 0.987).abs() < 1e-12);
        // NaN R² survives as NaN (serialized null).
        let r = QualityRecord::from_signed_errors("rt2", &[0.1]);
        let back = QualityRecord::from_json("rt2", &r.to_json()).expect("parses");
        assert!(back.r_squared.is_nan());
    }

    #[test]
    fn collector_replaces_and_sorts() {
        let c = Collector::new();
        c.record(QualityRecord::from_signed_errors("z.late", &[0.1]));
        c.record(QualityRecord::from_signed_errors("a.early", &[0.2]));
        c.record(QualityRecord::from_signed_errors("z.late", &[0.3, 0.3]));
        let snap = c.snapshot();
        let keys: Vec<&str> = snap.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(keys, vec!["a.early", "z.late"]);
        assert_eq!(snap[1].n, 2, "re-record replaces");
    }

    #[test]
    fn single_sample_quantiles_degenerate() {
        let r = QualityRecord::from_signed_errors("one", &[-0.07]);
        assert_eq!(r.p50, 0.07);
        assert_eq!(r.p90, 0.07);
        assert_eq!(r.max, 0.07);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = QualityRecord::from_signed_errors("e", &[]);
    }
}
