//! Hierarchical RAII wall-clock spans with a thread-safe collector.
//!
//! [`enter`] starts a span and returns a guard; dropping the guard stops
//! the clock and records the duration under the span's *path* — the
//! `/`-joined names of every span still open on the current thread, so
//! nested work is attributed hierarchically (`all/fig3/sweep`). Per-path
//! statistics (call count, total, max) accumulate in a global
//! [`Collector`] that [`report_table`](Collector::report_table) renders
//! as the end-of-run timing summary.
//!
//! Each guard also snapshots the executing thread's resource counters
//! at enter — heap allocations/bytes from [`crate::alloc`] (when the
//! counting allocator is installed) and thread CPU time from
//! [`crate::cputime`] — and records the deltas at drop, so the same
//! table answers "what did that span *cost*", not just how long it
//! took. Attribution is strictly per-thread: see [`ResourceDelta`].
//!
//! # Threads
//!
//! Each thread keeps its own open-span stack, and every thread records
//! into the same global [`Collector`], so per-thread paths merge into one
//! path table. A worker thread starts with an empty stack; [`adopt`]
//! seeds it with the spawning thread's path (captured via
//! [`current_path`]) so work fanned out by the [`crate::pool`] work pool
//! is attributed *under* the span that spawned it rather than appearing
//! as a disconnected root.
//!
//! [`folded`] renders a collector snapshot in the folded-stack format
//! (`a;b;c self_microseconds` per line) consumed by inferno /
//! `flamegraph.pl`.
//!
//! # Examples
//!
//! ```
//! use udse_obs::span;
//!
//! {
//!     let _study = span::enter("depth_study");
//!     let _inner = span::enter("sweep");
//! } // both recorded on drop
//! let stats = span::global().snapshot();
//! assert!(stats.iter().any(|(path, _)| path == "depth_study/sweep"));
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Accumulated timing for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Completed executions.
    pub count: u64,
    /// Total wall time across executions.
    pub total: Duration,
    /// Longest single execution.
    pub max: Duration,
    /// Total CPU time (user + system) of the *executing thread* across
    /// executions; zero where `/proc` is unavailable. Tick-granular
    /// (see [`crate::cputime`]), so short spans legitimately read 0.
    pub cpu: Duration,
    /// Heap allocations on the executing thread across executions;
    /// zero when the counting allocator is not installed.
    pub allocs: u64,
    /// Heap bytes allocated on the executing thread across executions.
    pub alloc_bytes: u64,
}

/// Resource consumption of one completed span execution, measured on
/// the executing thread between enter and drop. Wall time still covers
/// blocking on other threads (a dispatching span waiting on the pool),
/// but these columns deliberately do **not**: work fanned out to
/// [`crate::pool`] workers is attributed to the workers' own
/// ([`adopt`]ed) span paths, never double-counted into the parent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceDelta {
    /// Thread CPU time consumed, microseconds.
    pub cpu_us: u64,
    /// Heap allocations on the thread.
    pub allocs: u64,
    /// Heap bytes allocated on the thread.
    pub alloc_bytes: u64,
}

/// Thread-safe sink of completed span timings.
#[derive(Debug, Default)]
pub struct Collector {
    stats: Mutex<HashMap<String, SpanStat>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Records one completed execution of `path` with no resource
    /// attribution (equivalent to a zero [`ResourceDelta`]).
    pub fn record(&self, path: &str, elapsed: Duration) {
        self.record_resources(path, elapsed, ResourceDelta::default());
    }

    /// Records one completed execution of `path` along with what it
    /// consumed on the executing thread.
    pub fn record_resources(&self, path: &str, elapsed: Duration, res: ResourceDelta) {
        let mut stats = self.stats.lock().expect("span collector poisoned");
        let s = stats.entry(path.to_string()).or_default();
        s.count += 1;
        s.total += elapsed;
        s.max = s.max.max(elapsed);
        s.cpu += Duration::from_micros(res.cpu_us);
        s.allocs += res.allocs;
        s.alloc_bytes += res.alloc_bytes;
    }

    /// All recorded paths with their statistics, sorted by path so
    /// parents precede children.
    pub fn snapshot(&self) -> Vec<(String, SpanStat)> {
        let stats = self.stats.lock().expect("span collector poisoned");
        let mut out: Vec<(String, SpanStat)> = stats.iter().map(|(k, v)| (k.clone(), *v)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Renders the timing summary table. Returns `None` when nothing was
    /// recorded. Resource columns (thread CPU, allocation count/bytes)
    /// appear only when at least one span recorded a nonzero value —
    /// a run without the counting allocator would otherwise print
    /// all-zero columns that read as "allocation-free".
    pub fn report_table(&self) -> Option<String> {
        let snap = self.snapshot();
        if snap.is_empty() {
            return None;
        }
        let with_resources =
            snap.iter().any(|(_, s)| s.cpu > Duration::ZERO || s.allocs > 0 || s.alloc_bytes > 0);
        let name_width = snap.iter().map(|(p, _)| p.len()).max().unwrap_or(4).max("span".len());
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_width$}  {:>6}  {:>10}  {:>10}  {:>10}",
            "span", "calls", "total", "mean", "max"
        ));
        if with_resources {
            out.push_str(&format!("  {:>10}  {:>10}  {:>10}", "cpu", "allocs", "alloc"));
        }
        out.push('\n');
        for (path, s) in &snap {
            let mean = s.total.as_secs_f64() / s.count.max(1) as f64;
            out.push_str(&format!(
                "{:<name_width$}  {:>6}  {:>10}  {:>10}  {:>10}",
                path,
                s.count,
                fmt_duration(s.total.as_secs_f64()),
                fmt_duration(mean),
                fmt_duration(s.max.as_secs_f64()),
            ));
            if with_resources {
                out.push_str(&format!(
                    "  {:>10}  {:>10}  {:>10}",
                    fmt_duration(s.cpu.as_secs_f64()),
                    s.allocs,
                    fmt_bytes(s.alloc_bytes),
                ));
            }
            out.push('\n');
        }
        Some(out)
    }
}

/// Formats a byte count with a binary unit keeping 3–4 significant
/// digits. Shared by every report surface that prints allocation
/// volumes (span tables here, `udse-inspect show`/`report`).
pub fn fmt_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KIB * KIB * KIB {
        format!("{:.2} GiB", b / (KIB * KIB * KIB))
    } else if b >= KIB * KIB {
        format!("{:.2} MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.1} KiB", b / KIB)
    } else {
        format!("{bytes} B")
    }
}

/// Formats seconds with a unit that keeps 3–4 significant digits.
fn fmt_duration(secs: f64) -> String {
    if secs >= 100.0 {
        format!("{secs:.0} s")
    } else if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.1} us", secs * 1e6)
    }
}

/// The process-wide collector used by [`enter`].
pub fn global() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::new)
}

/// An open span; dropping it records the elapsed time plus the
/// resources the executing thread consumed (thread CPU time and, when
/// the counting allocator is installed, allocation count/bytes).
#[derive(Debug)]
#[must_use = "dropping the guard immediately records a ~zero-length span"]
pub struct SpanGuard {
    path: String,
    start: Instant,
    /// Thread CPU time at enter, µs; `None` where `/proc` is absent.
    cpu_start_us: Option<u64>,
    /// This thread's allocation counters at enter (zeros when the
    /// counting allocator is not installed — the exit snapshot then
    /// reads zeros too, so the delta stays zero).
    alloc_start: crate::alloc::ThreadAllocStats,
}

/// Opens a span named `name` nested under the thread's currently open
/// spans.
pub fn enter(name: &str) -> SpanGuard {
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name.to_string());
        stack.join("/")
    });
    SpanGuard {
        path,
        // Resource snapshots before the wall clock starts, so probe
        // cost (a /proc read) lands outside the measured window.
        cpu_start_us: crate::cputime::thread_cpu_us(),
        alloc_start: crate::alloc::thread_stats(),
        start: Instant::now(),
    }
}

/// The `/`-joined path of the spans currently open on this thread, or
/// `None` when the stack is empty. The work pool captures this on the
/// spawning thread and hands it to [`adopt`] on each worker.
pub fn current_path() -> Option<String> {
    STACK.with(|stack| {
        let stack = stack.borrow();
        if stack.is_empty() {
            None
        } else {
            Some(stack.join("/"))
        }
    })
}

/// Seeds the current thread's span stack with an inherited path so
/// subsequent [`enter`] calls nest under it; dropping the guard restores
/// the stack. The inherited segments themselves are *not* timed (the
/// spawning thread's own guard records them) — adoption only provides
/// attribution context.
///
/// # Examples
///
/// ```
/// use udse_obs::span;
///
/// let _outer = span::enter("spawner");
/// let parent = span::current_path().unwrap();
/// std::thread::scope(|s| {
///     s.spawn(move || {
///         let _ctx = span::adopt(&parent);
///         let g = span::enter("worker_job");
///         assert_eq!(g.path(), "spawner/worker_job");
///     });
/// });
/// ```
#[must_use = "dropping the guard immediately un-adopts the path"]
pub fn adopt(parent_path: &str) -> AdoptGuard {
    let depth = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let mut pushed = 0;
        for segment in parent_path.split('/').filter(|s| !s.is_empty()) {
            stack.push(segment.to_string());
            pushed += 1;
        }
        pushed
    });
    AdoptGuard { depth }
}

/// Restores the thread's span stack when an [`adopt`]ed context ends.
#[derive(Debug)]
pub struct AdoptGuard {
    depth: usize,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let keep = stack.len().saturating_sub(self.depth);
            stack.truncate(keep);
        });
    }
}

/// Renders span statistics in the folded-stack format understood by
/// inferno and Brendan Gregg's `flamegraph.pl`: one line per path with
/// `/` rewritten to `;`, followed by the path's *self* time in
/// microseconds (total minus the time attributed to its direct
/// children, clamped at zero). Zero-self-time interior paths are
/// omitted — their time lives entirely in their children — so the
/// flamegraph's column widths sum correctly.
pub fn folded(snapshot: &[(String, SpanStat)]) -> String {
    let total_us = |stat: &SpanStat| -> u64 { stat.total.as_micros().min(u64::MAX as u128) as u64 };
    let mut out = String::new();
    let mut sorted: Vec<&(String, SpanStat)> = snapshot.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    for (path, stat) in &sorted {
        let children_us: u64 = sorted
            .iter()
            .filter(|(p, _)| {
                p.len() > path.len()
                    && p.starts_with(path.as_str())
                    && p.as_bytes()[path.len()] == b'/'
                    && !p[path.len() + 1..].contains('/')
            })
            .map(|(_, s)| total_us(s))
            .sum();
        let self_us = total_us(stat).saturating_sub(children_us);
        if self_us > 0 {
            out.push_str(&path.replace('/', ";"));
            out.push(' ');
            out.push_str(&self_us.to_string());
            out.push('\n');
        }
    }
    out
}

impl SpanGuard {
    /// The full `/`-joined path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let alloc_end = crate::alloc::thread_stats();
        let cpu_us = match (self.cpu_start_us, crate::cputime::thread_cpu_us()) {
            (Some(t0), Some(t1)) => t1.saturating_sub(t0),
            _ => 0,
        };
        let res = ResourceDelta {
            cpu_us,
            allocs: alloc_end.allocs - self.alloc_start.allocs,
            alloc_bytes: alloc_end.bytes - self.alloc_start.bytes,
        };
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        global().record_resources(&self.path, elapsed, res);
        crate::trace::record_complete(&self.path, elapsed);
        crate::trace!("span", "{} took {}", self.path, fmt_duration(elapsed.as_secs_f64()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_paths() {
        let outer = enter("outer_span_test");
        assert_eq!(outer.path(), "outer_span_test");
        let inner = enter("inner");
        assert_eq!(inner.path(), "outer_span_test/inner");
        drop(inner);
        let sibling = enter("sibling");
        assert_eq!(sibling.path(), "outer_span_test/sibling");
        drop(sibling);
        drop(outer);
        let stats = global().snapshot();
        assert!(stats.iter().any(|(p, s)| p == "outer_span_test" && s.count >= 1));
        assert!(stats.iter().any(|(p, _)| p == "outer_span_test/inner"));
    }

    #[test]
    fn timing_is_monotone_and_nested_time_bounded_by_parent() {
        let c = Collector::new();
        let t0 = Instant::now();
        {
            let outer_start = Instant::now();
            std::thread::sleep(Duration::from_millis(5));
            {
                let inner_start = Instant::now();
                std::thread::sleep(Duration::from_millis(5));
                c.record("outer/inner", inner_start.elapsed());
            }
            c.record("outer", outer_start.elapsed());
        }
        let wall = t0.elapsed();
        let snap: HashMap<String, SpanStat> = c.snapshot().into_iter().collect();
        let outer = snap["outer"];
        let inner = snap["outer/inner"];
        assert!(inner.total >= Duration::from_millis(5), "inner {:?}", inner.total);
        assert!(outer.total >= inner.total, "parent must cover child");
        assert!(outer.total <= wall, "span cannot exceed wall clock");
    }

    #[test]
    fn repeated_spans_accumulate() {
        let c = Collector::new();
        for _ in 0..3 {
            c.record("repeat", Duration::from_micros(100));
        }
        c.record("repeat", Duration::from_micros(700));
        let snap = c.snapshot();
        let (_, s) = snap.iter().find(|(p, _)| p == "repeat").expect("recorded");
        assert_eq!(s.count, 4);
        assert_eq!(s.total, Duration::from_micros(1_000));
        assert_eq!(s.max, Duration::from_micros(700));
    }

    #[test]
    fn report_table_lists_every_path() {
        let c = Collector::new();
        assert!(c.report_table().is_none());
        c.record("a", Duration::from_millis(2));
        c.record("a/b", Duration::from_millis(1));
        let table = c.report_table().expect("non-empty");
        assert!(table.contains("span"));
        assert!(table.contains("a/b"));
        assert!(table.contains("calls"));
    }

    #[test]
    fn spans_on_different_threads_do_not_interleave_paths() {
        let t = std::thread::spawn(|| {
            let g = enter("thread_root");
            assert_eq!(g.path(), "thread_root");
        });
        let g = enter("main_root_span");
        assert_eq!(g.path(), "main_root_span");
        t.join().expect("thread panicked");
    }

    #[test]
    fn current_path_reflects_open_spans() {
        assert_eq!(current_path(), None);
        let _a = enter("cp_outer");
        let _b = enter("cp_inner");
        assert_eq!(current_path().as_deref(), Some("cp_outer/cp_inner"));
    }

    #[test]
    fn adopted_threads_nest_under_spawner() {
        let outer = enter("adopt_root");
        let parent = current_path().expect("open span");
        drop(outer);
        let t = std::thread::spawn(move || {
            {
                let _ctx = adopt(&parent);
                let g = enter("adopted_child");
                assert_eq!(g.path(), "adopt_root/adopted_child");
            }
            // Guard dropped: the stack is empty again.
            assert_eq!(current_path(), None);
            let g = enter("post_adopt");
            assert_eq!(g.path(), "post_adopt");
        });
        t.join().expect("thread panicked");
        let stats = global().snapshot();
        assert!(stats.iter().any(|(p, _)| p == "adopt_root/adopted_child"));
    }

    fn wall_stat(count: u64, total_us: u64, max_us: u64) -> SpanStat {
        SpanStat {
            count,
            total: Duration::from_micros(total_us),
            max: Duration::from_micros(max_us),
            ..SpanStat::default()
        }
    }

    #[test]
    fn folded_emits_self_time_per_stack() {
        let snapshot = vec![
            ("all".to_string(), wall_stat(1, 1_000, 1_000)),
            ("all/fit".to_string(), wall_stat(2, 400, 300)),
            ("all/sweep".to_string(), wall_stat(1, 600, 600)),
            ("all/sweep/inner".to_string(), wall_stat(1, 250, 250)),
            ("other".to_string(), wall_stat(1, 70, 70)),
        ];
        let text = folded(&snapshot);
        // `all` has zero self time (children cover it) and is omitted;
        // every other line is `stack;path self_us`.
        assert_eq!(text, "all;fit 400\nall;sweep 350\nall;sweep;inner 250\nother 70\n");
        for line in text.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("two fields");
            assert!(!stack.contains('/'), "folded stacks use `;`: {stack}");
            assert!(count.parse::<u64>().is_ok(), "count is integral us: {count}");
        }
    }

    #[test]
    fn folded_clamps_overspent_parents() {
        // A parent whose recorded children total more than itself (clock
        // skew across threads) must clamp to zero, not underflow.
        let snapshot = vec![
            ("p".to_string(), wall_stat(1, 10, 10)),
            ("p/c".to_string(), wall_stat(1, 25, 25)),
        ];
        assert_eq!(folded(&snapshot), "p;c 25\n");
    }

    #[test]
    fn spans_attribute_thread_allocations() {
        // The obs test binary installs the counting allocator, so a
        // span that allocates must show a nonzero alloc delta.
        {
            let _g = enter("alloc_attr_span");
            let v: Vec<u8> = vec![0; 100 * 1024];
            assert!(!v.is_empty());
        }
        let snap = global().snapshot();
        let (_, s) = snap.iter().find(|(p, _)| p == "alloc_attr_span").expect("recorded");
        assert!(s.allocs >= 1, "span saw {} allocs", s.allocs);
        assert!(s.alloc_bytes >= 100 * 1024, "span saw {} bytes", s.alloc_bytes);
    }

    #[test]
    fn resource_columns_appear_only_when_nonzero() {
        let c = Collector::new();
        c.record("plain", Duration::from_millis(1));
        let table = c.report_table().expect("non-empty");
        assert!(!table.contains("allocs"), "zero-resource table stays narrow:\n{table}");
        c.record_resources(
            "plain",
            Duration::from_millis(1),
            ResourceDelta { cpu_us: 500, allocs: 3, alloc_bytes: 2048 },
        );
        let table = c.report_table().expect("non-empty");
        assert!(table.contains("cpu"), "resource header:\n{table}");
        assert!(table.contains("allocs"), "resource header:\n{table}");
        assert!(table.contains("2.0 KiB"), "humanized bytes:\n{table}");
        let snap: HashMap<String, SpanStat> = c.snapshot().into_iter().collect();
        assert_eq!(snap["plain"].count, 2);
        assert_eq!(snap["plain"].allocs, 3);
        assert_eq!(snap["plain"].cpu, Duration::from_micros(500));
    }

    #[test]
    fn fmt_bytes_picks_binary_units() {
        assert_eq!(fmt_bytes(0), "0 B");
        assert_eq!(fmt_bytes(999), "999 B");
        assert_eq!(fmt_bytes(4 * 1024), "4.0 KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 / 2), "1.50 MiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024 * 1024), "5.00 GiB");
    }
}
