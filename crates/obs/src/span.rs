//! Hierarchical RAII wall-clock spans with a thread-safe collector.
//!
//! [`enter`] starts a span and returns a guard; dropping the guard stops
//! the clock and records the duration under the span's *path* — the
//! `/`-joined names of every span still open on the current thread, so
//! nested work is attributed hierarchically (`all/fig3/sweep`). Per-path
//! statistics (call count, total, max) accumulate in a global
//! [`Collector`] that [`report_table`](Collector::report_table) renders
//! as the end-of-run timing summary.
//!
//! # Threads
//!
//! Each thread keeps its own open-span stack, and every thread records
//! into the same global [`Collector`], so per-thread paths merge into one
//! path table. A worker thread starts with an empty stack; [`adopt`]
//! seeds it with the spawning thread's path (captured via
//! [`current_path`]) so work fanned out by the [`crate::pool`] work pool
//! is attributed *under* the span that spawned it rather than appearing
//! as a disconnected root.
//!
//! [`folded`] renders a collector snapshot in the folded-stack format
//! (`a;b;c self_microseconds` per line) consumed by inferno /
//! `flamegraph.pl`.
//!
//! # Examples
//!
//! ```
//! use udse_obs::span;
//!
//! {
//!     let _study = span::enter("depth_study");
//!     let _inner = span::enter("sweep");
//! } // both recorded on drop
//! let stats = span::global().snapshot();
//! assert!(stats.iter().any(|(path, _)| path == "depth_study/sweep"));
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Accumulated timing for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Completed executions.
    pub count: u64,
    /// Total wall time across executions.
    pub total: Duration,
    /// Longest single execution.
    pub max: Duration,
}

/// Thread-safe sink of completed span timings.
#[derive(Debug, Default)]
pub struct Collector {
    stats: Mutex<HashMap<String, SpanStat>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Records one completed execution of `path`.
    pub fn record(&self, path: &str, elapsed: Duration) {
        let mut stats = self.stats.lock().expect("span collector poisoned");
        let s = stats.entry(path.to_string()).or_default();
        s.count += 1;
        s.total += elapsed;
        s.max = s.max.max(elapsed);
    }

    /// All recorded paths with their statistics, sorted by path so
    /// parents precede children.
    pub fn snapshot(&self) -> Vec<(String, SpanStat)> {
        let stats = self.stats.lock().expect("span collector poisoned");
        let mut out: Vec<(String, SpanStat)> = stats.iter().map(|(k, v)| (k.clone(), *v)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Renders the timing summary table. Returns `None` when nothing was
    /// recorded.
    pub fn report_table(&self) -> Option<String> {
        let snap = self.snapshot();
        if snap.is_empty() {
            return None;
        }
        let name_width = snap.iter().map(|(p, _)| p.len()).max().unwrap_or(4).max("span".len());
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_width$}  {:>6}  {:>10}  {:>10}  {:>10}\n",
            "span", "calls", "total", "mean", "max"
        ));
        for (path, s) in &snap {
            let mean = s.total.as_secs_f64() / s.count.max(1) as f64;
            out.push_str(&format!(
                "{:<name_width$}  {:>6}  {:>10}  {:>10}  {:>10}\n",
                path,
                s.count,
                fmt_duration(s.total.as_secs_f64()),
                fmt_duration(mean),
                fmt_duration(s.max.as_secs_f64()),
            ));
        }
        Some(out)
    }
}

/// Formats seconds with a unit that keeps 3–4 significant digits.
fn fmt_duration(secs: f64) -> String {
    if secs >= 100.0 {
        format!("{secs:.0} s")
    } else if secs >= 1.0 {
        format!("{secs:.2} s")
    } else if secs >= 1e-3 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.1} us", secs * 1e6)
    }
}

/// The process-wide collector used by [`enter`].
pub fn global() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::new)
}

/// An open span; dropping it records the elapsed time.
#[derive(Debug)]
#[must_use = "dropping the guard immediately records a ~zero-length span"]
pub struct SpanGuard {
    path: String,
    start: Instant,
}

/// Opens a span named `name` nested under the thread's currently open
/// spans.
pub fn enter(name: &str) -> SpanGuard {
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name.to_string());
        stack.join("/")
    });
    SpanGuard { path, start: Instant::now() }
}

/// The `/`-joined path of the spans currently open on this thread, or
/// `None` when the stack is empty. The work pool captures this on the
/// spawning thread and hands it to [`adopt`] on each worker.
pub fn current_path() -> Option<String> {
    STACK.with(|stack| {
        let stack = stack.borrow();
        if stack.is_empty() {
            None
        } else {
            Some(stack.join("/"))
        }
    })
}

/// Seeds the current thread's span stack with an inherited path so
/// subsequent [`enter`] calls nest under it; dropping the guard restores
/// the stack. The inherited segments themselves are *not* timed (the
/// spawning thread's own guard records them) — adoption only provides
/// attribution context.
///
/// # Examples
///
/// ```
/// use udse_obs::span;
///
/// let _outer = span::enter("spawner");
/// let parent = span::current_path().unwrap();
/// std::thread::scope(|s| {
///     s.spawn(move || {
///         let _ctx = span::adopt(&parent);
///         let g = span::enter("worker_job");
///         assert_eq!(g.path(), "spawner/worker_job");
///     });
/// });
/// ```
#[must_use = "dropping the guard immediately un-adopts the path"]
pub fn adopt(parent_path: &str) -> AdoptGuard {
    let depth = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let mut pushed = 0;
        for segment in parent_path.split('/').filter(|s| !s.is_empty()) {
            stack.push(segment.to_string());
            pushed += 1;
        }
        pushed
    });
    AdoptGuard { depth }
}

/// Restores the thread's span stack when an [`adopt`]ed context ends.
#[derive(Debug)]
pub struct AdoptGuard {
    depth: usize,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let keep = stack.len().saturating_sub(self.depth);
            stack.truncate(keep);
        });
    }
}

/// Renders span statistics in the folded-stack format understood by
/// inferno and Brendan Gregg's `flamegraph.pl`: one line per path with
/// `/` rewritten to `;`, followed by the path's *self* time in
/// microseconds (total minus the time attributed to its direct
/// children, clamped at zero). Zero-self-time interior paths are
/// omitted — their time lives entirely in their children — so the
/// flamegraph's column widths sum correctly.
pub fn folded(snapshot: &[(String, SpanStat)]) -> String {
    let total_us = |stat: &SpanStat| -> u64 { stat.total.as_micros().min(u64::MAX as u128) as u64 };
    let mut out = String::new();
    let mut sorted: Vec<&(String, SpanStat)> = snapshot.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    for (path, stat) in &sorted {
        let children_us: u64 = sorted
            .iter()
            .filter(|(p, _)| {
                p.len() > path.len()
                    && p.starts_with(path.as_str())
                    && p.as_bytes()[path.len()] == b'/'
                    && !p[path.len() + 1..].contains('/')
            })
            .map(|(_, s)| total_us(s))
            .sum();
        let self_us = total_us(stat).saturating_sub(children_us);
        if self_us > 0 {
            out.push_str(&path.replace('/', ";"));
            out.push(' ');
            out.push_str(&self_us.to_string());
            out.push('\n');
        }
    }
    out
}

impl SpanGuard {
    /// The full `/`-joined path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        global().record(&self.path, elapsed);
        crate::trace::record_complete(&self.path, elapsed);
        crate::trace!("span", "{} took {}", self.path, fmt_duration(elapsed.as_secs_f64()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_paths() {
        let outer = enter("outer_span_test");
        assert_eq!(outer.path(), "outer_span_test");
        let inner = enter("inner");
        assert_eq!(inner.path(), "outer_span_test/inner");
        drop(inner);
        let sibling = enter("sibling");
        assert_eq!(sibling.path(), "outer_span_test/sibling");
        drop(sibling);
        drop(outer);
        let stats = global().snapshot();
        assert!(stats.iter().any(|(p, s)| p == "outer_span_test" && s.count >= 1));
        assert!(stats.iter().any(|(p, _)| p == "outer_span_test/inner"));
    }

    #[test]
    fn timing_is_monotone_and_nested_time_bounded_by_parent() {
        let c = Collector::new();
        let t0 = Instant::now();
        {
            let outer_start = Instant::now();
            std::thread::sleep(Duration::from_millis(5));
            {
                let inner_start = Instant::now();
                std::thread::sleep(Duration::from_millis(5));
                c.record("outer/inner", inner_start.elapsed());
            }
            c.record("outer", outer_start.elapsed());
        }
        let wall = t0.elapsed();
        let snap: HashMap<String, SpanStat> = c.snapshot().into_iter().collect();
        let outer = snap["outer"];
        let inner = snap["outer/inner"];
        assert!(inner.total >= Duration::from_millis(5), "inner {:?}", inner.total);
        assert!(outer.total >= inner.total, "parent must cover child");
        assert!(outer.total <= wall, "span cannot exceed wall clock");
    }

    #[test]
    fn repeated_spans_accumulate() {
        let c = Collector::new();
        for _ in 0..3 {
            c.record("repeat", Duration::from_micros(100));
        }
        c.record("repeat", Duration::from_micros(700));
        let snap = c.snapshot();
        let (_, s) = snap.iter().find(|(p, _)| p == "repeat").expect("recorded");
        assert_eq!(s.count, 4);
        assert_eq!(s.total, Duration::from_micros(1_000));
        assert_eq!(s.max, Duration::from_micros(700));
    }

    #[test]
    fn report_table_lists_every_path() {
        let c = Collector::new();
        assert!(c.report_table().is_none());
        c.record("a", Duration::from_millis(2));
        c.record("a/b", Duration::from_millis(1));
        let table = c.report_table().expect("non-empty");
        assert!(table.contains("span"));
        assert!(table.contains("a/b"));
        assert!(table.contains("calls"));
    }

    #[test]
    fn spans_on_different_threads_do_not_interleave_paths() {
        let t = std::thread::spawn(|| {
            let g = enter("thread_root");
            assert_eq!(g.path(), "thread_root");
        });
        let g = enter("main_root_span");
        assert_eq!(g.path(), "main_root_span");
        t.join().expect("thread panicked");
    }

    #[test]
    fn current_path_reflects_open_spans() {
        assert_eq!(current_path(), None);
        let _a = enter("cp_outer");
        let _b = enter("cp_inner");
        assert_eq!(current_path().as_deref(), Some("cp_outer/cp_inner"));
    }

    #[test]
    fn adopted_threads_nest_under_spawner() {
        let outer = enter("adopt_root");
        let parent = current_path().expect("open span");
        drop(outer);
        let t = std::thread::spawn(move || {
            {
                let _ctx = adopt(&parent);
                let g = enter("adopted_child");
                assert_eq!(g.path(), "adopt_root/adopted_child");
            }
            // Guard dropped: the stack is empty again.
            assert_eq!(current_path(), None);
            let g = enter("post_adopt");
            assert_eq!(g.path(), "post_adopt");
        });
        t.join().expect("thread panicked");
        let stats = global().snapshot();
        assert!(stats.iter().any(|(p, _)| p == "adopt_root/adopted_child"));
    }

    #[test]
    fn folded_emits_self_time_per_stack() {
        let snapshot = vec![
            (
                "all".to_string(),
                SpanStat {
                    count: 1,
                    total: Duration::from_micros(1_000),
                    max: Duration::from_micros(1_000),
                },
            ),
            (
                "all/fit".to_string(),
                SpanStat {
                    count: 2,
                    total: Duration::from_micros(400),
                    max: Duration::from_micros(300),
                },
            ),
            (
                "all/sweep".to_string(),
                SpanStat {
                    count: 1,
                    total: Duration::from_micros(600),
                    max: Duration::from_micros(600),
                },
            ),
            (
                "all/sweep/inner".to_string(),
                SpanStat {
                    count: 1,
                    total: Duration::from_micros(250),
                    max: Duration::from_micros(250),
                },
            ),
            (
                "other".to_string(),
                SpanStat {
                    count: 1,
                    total: Duration::from_micros(70),
                    max: Duration::from_micros(70),
                },
            ),
        ];
        let text = folded(&snapshot);
        // `all` has zero self time (children cover it) and is omitted;
        // every other line is `stack;path self_us`.
        assert_eq!(text, "all;fit 400\nall;sweep 350\nall;sweep;inner 250\nother 70\n");
        for line in text.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("two fields");
            assert!(!stack.contains('/'), "folded stacks use `;`: {stack}");
            assert!(count.parse::<u64>().is_ok(), "count is integral us: {count}");
        }
    }

    #[test]
    fn folded_clamps_overspent_parents() {
        // A parent whose recorded children total more than itself (clock
        // skew across threads) must clamp to zero, not underflow.
        let snapshot = vec![
            (
                "p".to_string(),
                SpanStat {
                    count: 1,
                    total: Duration::from_micros(10),
                    max: Duration::from_micros(10),
                },
            ),
            (
                "p/c".to_string(),
                SpanStat {
                    count: 1,
                    total: Duration::from_micros(25),
                    max: Duration::from_micros(25),
                },
            ),
        ];
        assert_eq!(folded(&snapshot), "p;c 25\n");
    }
}
