//! Chrome `trace_event` export: discrete timeline events for Perfetto.
//!
//! The span collector ([`crate::span`]) keeps *aggregates* (count, total,
//! max per path); this module keeps the *timeline*. When recording is
//! enabled — programmatically via [`enable`] or by setting the
//! `UDSE_TRACE` environment variable — every completed span also appends
//! a discrete [`TraceEvent`] to a bounded global buffer, and
//! [`instant`] marks point-in-time occurrences. The buffer exports to
//! two formats:
//!
//! - [`chrome_trace_json`]: the Chrome `trace_event` JSON-array format
//!   (`ph: "X"` complete events, `ph: "i"` instants, microsecond
//!   timestamps), loadable directly in Perfetto / `chrome://tracing`;
//! - [`events_to_jsonl`] / [`parse_jsonl`]: a line-per-event stream for
//!   programmatic consumption and re-export.
//!
//! Runs that only kept a manifest can still get a (coarser) timeline:
//! [`synthesize_from_spans`] lays the per-path span totals out as nested
//! complete events.
//!
//! # Examples
//!
//! ```
//! use udse_obs::trace;
//!
//! trace::enable();
//! {
//!     let _g = udse_obs::span::enter("traced_work");
//! }
//! trace::instant("checkpoint");
//! let events = trace::global().snapshot();
//! assert!(events.iter().any(|e| e.name == "traced_work"));
//! let doc = trace::chrome_trace_json(&events);
//! assert!(doc.as_arr().is_some());
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::Json;

/// Hard cap on buffered events; beyond it events are counted as dropped
/// rather than grown without bound (a paper-scale sweep can open
/// millions of spans).
pub const CAPACITY: usize = 262_144;

/// Event phase, mirroring the Chrome `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A `ph: "X"` complete event with a duration.
    Complete,
    /// A `ph: "i"` instant event.
    Instant,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Complete => "X",
            Phase::Instant => "i",
        }
    }

    fn from_str(s: &str) -> Option<Phase> {
        match s {
            "X" => Some(Phase::Complete),
            "i" => Some(Phase::Instant),
            _ => None,
        }
    }
}

/// One discrete timeline event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span path or instant label.
    pub name: String,
    /// Chrome category; `span` or `instant` for native events.
    pub cat: String,
    /// Complete or instant.
    pub phase: Phase,
    /// Microseconds since the trace epoch (first enable/record).
    pub ts_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Recording thread, as a small stable per-process ordinal.
    pub tid: u64,
}

impl TraceEvent {
    /// The Chrome `trace_event` object for this event.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::str(self.name.as_str())),
            ("cat", Json::str(self.cat.as_str())),
            ("ph", Json::str(self.phase.as_str())),
            ("ts", Json::Int(self.ts_us as i64)),
        ];
        match self.phase {
            Phase::Complete => fields.push(("dur", Json::Int(self.dur_us as i64))),
            // Chrome instants require a scope; `t` = thread.
            Phase::Instant => fields.push(("s", Json::str("t"))),
        }
        fields.push(("pid", Json::Int(1)));
        fields.push(("tid", Json::Int(self.tid as i64)));
        Json::obj(fields)
    }

    /// Rebuilds an event from its JSON object form.
    pub fn from_json(doc: &Json) -> Option<TraceEvent> {
        let phase = Phase::from_str(doc.get("ph")?.as_str()?)?;
        Some(TraceEvent {
            name: doc.get("name")?.as_str()?.to_string(),
            cat: doc.get("cat").and_then(Json::as_str).unwrap_or("span").to_string(),
            phase,
            ts_us: doc.get("ts")?.as_i64()?.max(0) as u64,
            dur_us: doc.get("dur").and_then(Json::as_i64).unwrap_or(0).max(0) as u64,
            tid: doc.get("tid").and_then(Json::as_i64).unwrap_or(0).max(0) as u64,
        })
    }
}

/// Bounded, thread-safe buffer of discrete events.
#[derive(Debug, Default)]
pub struct EventBuffer {
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl EventBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        EventBuffer::default()
    }

    /// Appends an event, counting it as dropped once [`CAPACITY`] is
    /// reached.
    pub fn push(&self, event: TraceEvent) {
        let mut events = self.events.lock().expect("trace buffer poisoned");
        if events.len() < CAPACITY {
            events.push(event);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// All buffered events in record order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace buffer poisoned").clone()
    }

    /// Events rejected after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// The process-wide event buffer.
pub fn global() -> &'static EventBuffer {
    static GLOBAL: OnceLock<EventBuffer> = OnceLock::new();
    GLOBAL.get_or_init(EventBuffer::new)
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_CHECKED: AtomicBool = AtomicBool::new(false);

/// Turns on discrete event recording (idempotent) and pins the trace
/// epoch.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether events are being recorded. The first call also honors the
/// `UDSE_TRACE` environment variable (any non-empty value except `0`).
pub fn enabled() -> bool {
    if !ENV_CHECKED.swap(true, Ordering::Relaxed) {
        if let Ok(v) = std::env::var("UDSE_TRACE") {
            if !v.is_empty() && v != "0" {
                enable();
            }
        }
    }
    ENABLED.load(Ordering::Relaxed)
}

/// The instant all event timestamps are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// A small stable ordinal for the current thread (Chrome `tid`).
fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Records a completed span occupying `[end - elapsed, end]`. Called by
/// the span guard on drop; cheap no-op when recording is disabled.
pub fn record_complete(path: &str, elapsed: Duration) {
    if !enabled() {
        return;
    }
    let end_us = epoch().elapsed().as_micros() as u64;
    let dur_us = elapsed.as_micros() as u64;
    global().push(TraceEvent {
        name: path.to_string(),
        cat: "span".to_string(),
        phase: Phase::Complete,
        ts_us: end_us.saturating_sub(dur_us),
        dur_us,
        tid: current_tid(),
    });
}

/// Marks a point-in-time event; no-op when recording is disabled.
pub fn instant(name: &str) {
    if !enabled() {
        return;
    }
    global().push(TraceEvent {
        name: name.to_string(),
        cat: "instant".to_string(),
        phase: Phase::Instant,
        ts_us: epoch().elapsed().as_micros() as u64,
        dur_us: 0,
        tid: current_tid(),
    });
}

/// Assembles the Chrome `trace_event` document: a JSON array of event
/// objects, which Perfetto and `chrome://tracing` load directly.
pub fn chrome_trace_json(events: &[TraceEvent]) -> Json {
    Json::Arr(events.iter().map(TraceEvent::to_json).collect())
}

/// One compact JSON object per line — the streaming form of the buffer.
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().to_string_compact());
        out.push('\n');
    }
    out
}

/// Parses a JSONL event stream produced by [`events_to_jsonl`].
///
/// # Errors
///
/// Returns the 1-based line number and cause for the first malformed
/// line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let event = TraceEvent::from_json(&doc)
            .ok_or_else(|| format!("line {}: not a trace event object", i + 1))?;
        events.push(event);
    }
    Ok(events)
}

/// Synthesizes a nested timeline from per-path span *totals* (the only
/// timing a manifest retains). Paths sort so parents precede children;
/// each child is laid out sequentially inside its parent's window, and
/// top-level paths follow one another on a single track. The result is
/// coarser than a native trace (per-call boundaries are lost) but shows
/// the same hierarchy and proportions in Perfetto.
pub fn synthesize_from_spans(span_totals: &[(String, f64)]) -> Vec<TraceEvent> {
    let mut sorted: Vec<(&str, f64)> = span_totals.iter().map(|(p, t)| (p.as_str(), *t)).collect();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    // Per-path start plus a cursor advancing as children are placed.
    let mut layout: Vec<(&str, u64)> = Vec::new(); // (path, next child start)
    let mut events = Vec::with_capacity(sorted.len());
    let mut root_cursor = 0u64;
    for (path, total_seconds) in sorted {
        let dur_us = (total_seconds * 1e6).max(0.0) as u64;
        let parent_cursor = path
            .rfind('/')
            .and_then(|cut| layout.iter_mut().find(|(p, _)| *p == &path[..cut]))
            .map(|slot| &mut slot.1);
        let start = match parent_cursor {
            Some(cursor) => {
                let s = *cursor;
                *cursor += dur_us;
                s
            }
            None => {
                let s = root_cursor;
                root_cursor += dur_us;
                s
            }
        };
        layout.push((path, start));
        events.push(TraceEvent {
            name: path.to_string(),
            cat: "span".to_string(),
            phase: Phase::Complete,
            ts_us: start,
            dur_us,
            tid: 1,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: "span".to_string(),
            phase: Phase::Complete,
            ts_us: ts,
            dur_us: dur,
            tid: 1,
        }
    }

    #[test]
    fn chrome_trace_is_schema_valid() {
        let events = vec![
            ev("a", 0, 10),
            TraceEvent {
                name: "mark".to_string(),
                cat: "instant".to_string(),
                phase: Phase::Instant,
                ts_us: 5,
                dur_us: 0,
                tid: 2,
            },
        ];
        let doc = chrome_trace_json(&events);
        let arr = doc.as_arr().expect("trace_event documents are arrays");
        assert_eq!(arr.len(), 2);
        for e in arr {
            // Fields Perfetto requires on every event.
            assert!(e.get("name").and_then(Json::as_str).is_some());
            assert!(matches!(e.get("ph").and_then(Json::as_str), Some("X" | "i")));
            assert!(e.get("ts").and_then(Json::as_i64).is_some());
            assert!(e.get("pid").and_then(Json::as_i64).is_some());
            assert!(e.get("tid").and_then(Json::as_i64).is_some());
        }
        // Complete events carry a duration; instants carry a scope.
        assert_eq!(arr[0].get("dur").and_then(Json::as_i64), Some(10));
        assert_eq!(arr[1].get("s").and_then(Json::as_str), Some("t"));
        // And the serialized form re-parses as JSON.
        assert!(Json::parse(&doc.to_string_pretty()).is_ok());
    }

    #[test]
    fn jsonl_round_trips() {
        let events = vec![ev("x", 1, 2), ev("x/y", 3, 4)];
        let text = events_to_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).expect("parses");
        assert_eq!(back, events);
        // Blank lines are tolerated; garbage is not.
        assert!(parse_jsonl("\n\n").expect("empty ok").is_empty());
        assert!(parse_jsonl("{not json}").is_err());
        assert!(parse_jsonl("{\"name\":\"n\"}").is_err(), "missing ph must error");
    }

    #[test]
    fn recording_gated_by_enable() {
        // Not enabled in this test process unless UDSE_TRACE is set —
        // enable() is sticky, so isolate via the env-independent path.
        enable();
        let before = global().snapshot().len();
        record_complete("trace_test_span", Duration::from_millis(1));
        instant("trace_test_mark");
        let events = global().snapshot();
        assert!(events.len() >= before + 2);
        let span = events.iter().find(|e| e.name == "trace_test_span").expect("recorded");
        assert_eq!(span.phase, Phase::Complete);
        assert!(span.dur_us >= 1_000);
    }

    #[test]
    fn synthesis_nests_children_inside_parents() {
        let spans = vec![
            ("all".to_string(), 1.0),
            ("all/fit".to_string(), 0.4),
            ("all/sweep".to_string(), 0.5),
            ("other".to_string(), 0.25),
        ];
        let events = synthesize_from_spans(&spans);
        assert_eq!(events.len(), 4);
        let by_name = |n: &str| events.iter().find(|e| e.name == n).expect("present");
        let all = by_name("all");
        let fit = by_name("all/fit");
        let sweep = by_name("all/sweep");
        let other = by_name("other");
        // Children start at the parent and are laid out sequentially.
        assert_eq!(fit.ts_us, all.ts_us);
        assert_eq!(sweep.ts_us, fit.ts_us + fit.dur_us);
        assert!(sweep.ts_us + sweep.dur_us <= all.ts_us + all.dur_us);
        // Top-level spans do not overlap.
        assert_eq!(other.ts_us, all.ts_us + all.dur_us);
    }

    #[test]
    fn buffer_caps_and_counts_drops() {
        let b = EventBuffer::new();
        b.push(ev("only", 0, 1));
        assert_eq!(b.snapshot().len(), 1);
        assert_eq!(b.dropped(), 0);
        // Capacity behavior is exercised structurally (filling 262k
        // events here would dominate test time): push directly at cap.
        let full = EventBuffer::new();
        {
            let mut events = full.events.lock().unwrap();
            events.extend(std::iter::repeat_with(|| ev("fill", 0, 0)).take(CAPACITY));
        }
        full.push(ev("overflow", 0, 0));
        assert_eq!(full.dropped(), 1);
        assert_eq!(full.snapshot().len(), CAPACITY);
    }
}
