//! Chrome `trace_event` export: discrete timeline events for Perfetto.
//!
//! The span collector ([`crate::span`]) keeps *aggregates* (count, total,
//! max per path); this module keeps the *timeline*. When recording is
//! enabled — programmatically via [`enable`] or by setting the
//! `UDSE_TRACE` environment variable — every completed span also appends
//! a discrete [`TraceEvent`] to a bounded global buffer, and
//! [`instant`] marks point-in-time occurrences. The buffer exports to
//! two formats:
//!
//! - [`chrome_trace_json`]: the Chrome `trace_event` JSON-array format
//!   (`ph: "X"` complete events, `ph: "i"` instants, microsecond
//!   timestamps), loadable directly in Perfetto / `chrome://tracing`;
//! - [`events_to_jsonl`] / [`parse_jsonl`]: a line-per-event stream for
//!   programmatic consumption and re-export.
//!
//! Runs that only kept a manifest can still get a (coarser) timeline:
//! [`synthesize_from_spans`] lays the per-path span totals out as nested
//! complete events.
//!
//! # Multi-process traces
//!
//! A sharded run produces one event buffer per process. Each process
//! timestamps events against its own monotonic epoch, so the buffers
//! cannot be concatenated directly; instead every process also records
//! the wall-clock instant of that epoch ([`anchor_unix_us`]), and
//! [`merge_process_traces`] shifts worker timestamps by the anchor
//! difference onto the parent's timeline. Workers get stable `pid`
//! lanes ([`worker_pid`] of their shard index; the parent is
//! [`PARENT_PID`]), and [`chrome_trace_json_named`] emits the
//! `process_name` metadata events that label the lanes in Perfetto.
//!
//! # Examples
//!
//! ```
//! use udse_obs::trace;
//!
//! trace::enable();
//! {
//!     let _g = udse_obs::span::enter("traced_work");
//! }
//! trace::instant("checkpoint");
//! let events = trace::global().snapshot();
//! assert!(events.iter().any(|e| e.name == "traced_work"));
//! let doc = trace::chrome_trace_json(&events);
//! assert!(doc.as_arr().is_some());
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime};

use crate::json::Json;

/// Chrome `pid` lane of the coordinating (parent) process in a merged
/// trace. Real OS pids are meaningless after a run ends, so merged
/// traces use small stable ordinals instead.
pub const PARENT_PID: u64 = 1;

/// Chrome `pid` lane for the worker holding shard `lane` (its shard
/// index). Stable across batches of the same run: shard 0 is always
/// lane 2, shard 1 lane 3, and so on.
pub const fn worker_pid(lane: u64) -> u64 {
    lane + 2
}

/// Hard cap on buffered events; beyond it events are counted as dropped
/// rather than grown without bound (a paper-scale sweep can open
/// millions of spans).
pub const CAPACITY: usize = 262_144;

/// Event phase, mirroring the Chrome `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A `ph: "X"` complete event with a duration.
    Complete,
    /// A `ph: "i"` instant event.
    Instant,
}

impl Phase {
    fn as_str(self) -> &'static str {
        match self {
            Phase::Complete => "X",
            Phase::Instant => "i",
        }
    }

    fn from_str(s: &str) -> Option<Phase> {
        match s {
            "X" => Some(Phase::Complete),
            "i" => Some(Phase::Instant),
            _ => None,
        }
    }
}

/// One discrete timeline event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span path or instant label.
    pub name: String,
    /// Chrome category; `span` or `instant` for native events.
    pub cat: String,
    /// Complete or instant.
    pub phase: Phase,
    /// Microseconds since the trace epoch (first enable/record).
    pub ts_us: u64,
    /// Duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Process lane: [`PARENT_PID`] for events recorded in this
    /// process, [`worker_pid`] of the shard index after a merge.
    pub pid: u64,
    /// Recording thread, as a small stable per-process ordinal.
    pub tid: u64,
}

impl TraceEvent {
    /// The Chrome `trace_event` object for this event.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::str(self.name.as_str())),
            ("cat", Json::str(self.cat.as_str())),
            ("ph", Json::str(self.phase.as_str())),
            ("ts", Json::Int(self.ts_us as i64)),
        ];
        match self.phase {
            Phase::Complete => fields.push(("dur", Json::Int(self.dur_us as i64))),
            // Chrome instants require a scope; `t` = thread.
            Phase::Instant => fields.push(("s", Json::str("t"))),
        }
        fields.push(("pid", Json::Int(self.pid as i64)));
        fields.push(("tid", Json::Int(self.tid as i64)));
        Json::obj(fields)
    }

    /// Rebuilds an event from its JSON object form.
    pub fn from_json(doc: &Json) -> Option<TraceEvent> {
        let phase = Phase::from_str(doc.get("ph")?.as_str()?)?;
        Some(TraceEvent {
            name: doc.get("name")?.as_str()?.to_string(),
            cat: doc.get("cat").and_then(Json::as_str).unwrap_or("span").to_string(),
            phase,
            ts_us: doc.get("ts")?.as_i64()?.max(0) as u64,
            dur_us: doc.get("dur").and_then(Json::as_i64).unwrap_or(0).max(0) as u64,
            pid: doc.get("pid").and_then(Json::as_i64).unwrap_or(PARENT_PID as i64).max(0) as u64,
            tid: doc.get("tid").and_then(Json::as_i64).unwrap_or(0).max(0) as u64,
        })
    }
}

/// Bounded, thread-safe buffer of discrete events.
#[derive(Debug, Default)]
pub struct EventBuffer {
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl EventBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        EventBuffer::default()
    }

    /// Appends an event, counting it as dropped once [`CAPACITY`] is
    /// reached.
    pub fn push(&self, event: TraceEvent) {
        let mut events = self.events.lock().expect("trace buffer poisoned");
        if events.len() < CAPACITY {
            events.push(event);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// All buffered events in record order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace buffer poisoned").clone()
    }

    /// Events rejected after the buffer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// The process-wide event buffer.
pub fn global() -> &'static EventBuffer {
    static GLOBAL: OnceLock<EventBuffer> = OnceLock::new();
    GLOBAL.get_or_init(EventBuffer::new)
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_CHECKED: AtomicBool = AtomicBool::new(false);

/// Turns on discrete event recording (idempotent) and pins the trace
/// epoch.
pub fn enable() {
    let _ = anchor();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether events are being recorded. The first call also honors the
/// `UDSE_TRACE` environment variable (any non-empty value except `0`).
pub fn enabled() -> bool {
    if !ENV_CHECKED.swap(true, Ordering::Relaxed) {
        if let Ok(v) = std::env::var("UDSE_TRACE") {
            if !v.is_empty() && v != "0" {
                enable();
            }
        }
    }
    ENABLED.load(Ordering::Relaxed)
}

/// The trace epoch: the monotonic instant all event timestamps are
/// measured from, paired with its wall-clock reading so other
/// processes' epochs can be aligned to it.
struct Anchor {
    start: Instant,
    unix_us: i64,
}

fn anchor() -> &'static Anchor {
    static ANCHOR: OnceLock<Anchor> = OnceLock::new();
    ANCHOR.get_or_init(|| {
        // Read both clocks back to back: the skew between them is what
        // merge accuracy rests on, and at this adjacency it is far
        // below span resolution.
        let start = Instant::now();
        let unix_us = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros() as i64)
            .unwrap_or(0);
        Anchor { start, unix_us }
    })
}

/// Wall-clock reading (microseconds since the Unix epoch) taken at this
/// process's trace epoch. Workers persist this in their telemetry
/// sidecars so [`merge_process_traces`] can shift their event
/// timestamps onto the parent's timeline.
pub fn anchor_unix_us() -> i64 {
    anchor().unix_us
}

/// Microseconds elapsed since this process's trace epoch.
pub fn since_anchor_us() -> u64 {
    anchor().start.elapsed().as_micros() as u64
}

/// A small stable ordinal for the current thread (Chrome `tid`).
fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Records a completed span occupying `[end - elapsed, end]`. Called by
/// the span guard on drop; cheap no-op when recording is disabled.
pub fn record_complete(path: &str, elapsed: Duration) {
    if !enabled() {
        return;
    }
    let end_us = since_anchor_us();
    let dur_us = elapsed.as_micros() as u64;
    global().push(TraceEvent {
        name: path.to_string(),
        cat: "span".to_string(),
        phase: Phase::Complete,
        ts_us: end_us.saturating_sub(dur_us),
        dur_us,
        pid: PARENT_PID,
        tid: current_tid(),
    });
}

/// Marks a point-in-time event; no-op when recording is disabled.
pub fn instant(name: &str) {
    if !enabled() {
        return;
    }
    global().push(TraceEvent {
        name: name.to_string(),
        cat: "instant".to_string(),
        phase: Phase::Instant,
        ts_us: since_anchor_us(),
        dur_us: 0,
        pid: PARENT_PID,
        tid: current_tid(),
    });
}

/// Assembles the Chrome `trace_event` document: a JSON array of event
/// objects, which Perfetto and `chrome://tracing` load directly.
pub fn chrome_trace_json(events: &[TraceEvent]) -> Json {
    Json::Arr(events.iter().map(TraceEvent::to_json).collect())
}

/// Like [`chrome_trace_json`], with `process_name` metadata events
/// prepended so each `(pid, name)` lane is labeled in Perfetto.
pub fn chrome_trace_json_named(events: &[TraceEvent], lanes: &[(u64, String)]) -> Json {
    let mut items: Vec<Json> = lanes
        .iter()
        .map(|(pid, name)| {
            Json::obj(vec![
                ("name", Json::str("process_name")),
                ("ph", Json::str("M")),
                ("pid", Json::Int(*pid as i64)),
                ("tid", Json::Int(0)),
                ("args", Json::obj(vec![("name", Json::str(name.as_str()))])),
            ])
        })
        .collect();
    items.extend(events.iter().map(TraceEvent::to_json));
    Json::Arr(items)
}

/// One process's contribution to a merged trace: the events its buffer
/// held, the wall-clock reading of its trace epoch, and the shard index
/// that names its lane.
#[derive(Debug, Clone)]
pub struct WorkerTrace {
    /// Shard index; the merged lane is [`worker_pid`]`(lane)`.
    pub lane: u64,
    /// The worker's [`anchor_unix_us`] reading.
    pub anchor_unix_us: i64,
    /// The worker's event buffer, timestamped against its own epoch.
    pub events: Vec<TraceEvent>,
}

/// Merges per-process event buffers into one timeline on the parent's
/// clock. Parent events keep their timestamps and get [`PARENT_PID`];
/// each worker's events are shifted by the difference between its
/// wall-clock anchor and the parent's (clamping at zero if a worker's
/// clock reads earlier than the parent's epoch) and assigned the
/// [`worker_pid`] lane of its shard index. Output order is parent
/// events first, then workers sorted by lane — deterministic given
/// deterministic inputs.
pub fn merge_process_traces(
    parent_events: &[TraceEvent],
    parent_anchor_unix_us: i64,
    workers: &[WorkerTrace],
) -> Vec<TraceEvent> {
    let mut merged: Vec<TraceEvent> =
        parent_events.iter().map(|e| TraceEvent { pid: PARENT_PID, ..e.clone() }).collect();
    let mut sorted: Vec<&WorkerTrace> = workers.iter().collect();
    sorted.sort_by_key(|w| w.lane);
    for worker in sorted {
        let offset_us = worker.anchor_unix_us - parent_anchor_unix_us;
        for event in &worker.events {
            let ts = event.ts_us as i64 + offset_us;
            merged.push(TraceEvent {
                ts_us: ts.max(0) as u64,
                pid: worker_pid(worker.lane),
                ..event.clone()
            });
        }
    }
    merged
}

/// A Chrome `trace_event` document read back: the events plus the
/// `(pid, name)` lane labels its `process_name` metadata carried.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedChromeTrace {
    /// All non-metadata events, in document order.
    pub events: Vec<TraceEvent>,
    /// `(pid, name)` pairs from `process_name` metadata events.
    pub lanes: Vec<(u64, String)>,
}

/// Parses a Chrome `trace_event` JSON array back into events plus the
/// `(pid, name)` lane labels carried by `process_name` metadata.
/// Metadata events other than `process_name` are skipped.
///
/// # Errors
///
/// Returns a description of the first malformed element (or a non-array
/// document).
pub fn parse_chrome_trace(text: &str) -> Result<ParsedChromeTrace, String> {
    let doc = Json::parse(text).map_err(|e| format!("trace document: {e}"))?;
    let arr = doc.as_arr().ok_or("trace document is not a JSON array")?;
    let mut events = Vec::new();
    let mut lanes = Vec::new();
    for (i, item) in arr.iter().enumerate() {
        let ph = item
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            if item.get("name").and_then(Json::as_str) == Some("process_name") {
                let pid = item.get("pid").and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
                let name = item
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                lanes.push((pid, name));
            }
            continue;
        }
        let event = TraceEvent::from_json(item)
            .ok_or_else(|| format!("event {i}: not a trace event object"))?;
        events.push(event);
    }
    Ok(ParsedChromeTrace { events, lanes })
}

/// One compact JSON object per line — the streaming form of the buffer.
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().to_string_compact());
        out.push('\n');
    }
    out
}

/// Parses a JSONL event stream produced by [`events_to_jsonl`].
///
/// # Errors
///
/// Returns the 1-based line number and cause for the first malformed
/// line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let event = TraceEvent::from_json(&doc)
            .ok_or_else(|| format!("line {}: not a trace event object", i + 1))?;
        events.push(event);
    }
    Ok(events)
}

/// Synthesizes a nested timeline from per-path span *totals* (the only
/// timing a manifest retains). Paths sort so parents precede children;
/// each child is laid out sequentially inside its parent's window, and
/// top-level paths follow one another on a single track. The result is
/// coarser than a native trace (per-call boundaries are lost) but shows
/// the same hierarchy and proportions in Perfetto.
pub fn synthesize_from_spans(span_totals: &[(String, f64)]) -> Vec<TraceEvent> {
    let mut sorted: Vec<(&str, f64)> = span_totals.iter().map(|(p, t)| (p.as_str(), *t)).collect();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    // Per-path start plus a cursor advancing as children are placed.
    let mut layout: Vec<(&str, u64)> = Vec::new(); // (path, next child start)
    let mut events = Vec::with_capacity(sorted.len());
    let mut root_cursor = 0u64;
    for (path, total_seconds) in sorted {
        let dur_us = (total_seconds * 1e6).max(0.0) as u64;
        let parent_cursor = path
            .rfind('/')
            .and_then(|cut| layout.iter_mut().find(|(p, _)| *p == &path[..cut]))
            .map(|slot| &mut slot.1);
        let start = match parent_cursor {
            Some(cursor) => {
                let s = *cursor;
                *cursor += dur_us;
                s
            }
            None => {
                let s = root_cursor;
                root_cursor += dur_us;
                s
            }
        };
        layout.push((path, start));
        events.push(TraceEvent {
            name: path.to_string(),
            cat: "span".to_string(),
            phase: Phase::Complete,
            ts_us: start,
            dur_us,
            pid: PARENT_PID,
            tid: 1,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: "span".to_string(),
            phase: Phase::Complete,
            ts_us: ts,
            dur_us: dur,
            pid: PARENT_PID,
            tid: 1,
        }
    }

    #[test]
    fn chrome_trace_is_schema_valid() {
        let events = vec![
            ev("a", 0, 10),
            TraceEvent {
                name: "mark".to_string(),
                cat: "instant".to_string(),
                phase: Phase::Instant,
                ts_us: 5,
                dur_us: 0,
                pid: PARENT_PID,
                tid: 2,
            },
        ];
        let doc = chrome_trace_json(&events);
        let arr = doc.as_arr().expect("trace_event documents are arrays");
        assert_eq!(arr.len(), 2);
        for e in arr {
            // Fields Perfetto requires on every event.
            assert!(e.get("name").and_then(Json::as_str).is_some());
            assert!(matches!(e.get("ph").and_then(Json::as_str), Some("X" | "i")));
            assert!(e.get("ts").and_then(Json::as_i64).is_some());
            assert!(e.get("pid").and_then(Json::as_i64).is_some());
            assert!(e.get("tid").and_then(Json::as_i64).is_some());
        }
        // Complete events carry a duration; instants carry a scope.
        assert_eq!(arr[0].get("dur").and_then(Json::as_i64), Some(10));
        assert_eq!(arr[1].get("s").and_then(Json::as_str), Some("t"));
        // And the serialized form re-parses as JSON.
        assert!(Json::parse(&doc.to_string_pretty()).is_ok());
    }

    #[test]
    fn jsonl_round_trips() {
        let events = vec![ev("x", 1, 2), ev("x/y", 3, 4)];
        let text = events_to_jsonl(&events);
        assert_eq!(text.lines().count(), 2);
        let back = parse_jsonl(&text).expect("parses");
        assert_eq!(back, events);
        // Blank lines are tolerated; garbage is not.
        assert!(parse_jsonl("\n\n").expect("empty ok").is_empty());
        assert!(parse_jsonl("{not json}").is_err());
        assert!(parse_jsonl("{\"name\":\"n\"}").is_err(), "missing ph must error");
    }

    #[test]
    fn recording_gated_by_enable() {
        // Not enabled in this test process unless UDSE_TRACE is set —
        // enable() is sticky, so isolate via the env-independent path.
        enable();
        let before = global().snapshot().len();
        record_complete("trace_test_span", Duration::from_millis(1));
        instant("trace_test_mark");
        let events = global().snapshot();
        assert!(events.len() >= before + 2);
        let span = events.iter().find(|e| e.name == "trace_test_span").expect("recorded");
        assert_eq!(span.phase, Phase::Complete);
        assert!(span.dur_us >= 1_000);
    }

    #[test]
    fn synthesis_nests_children_inside_parents() {
        let spans = vec![
            ("all".to_string(), 1.0),
            ("all/fit".to_string(), 0.4),
            ("all/sweep".to_string(), 0.5),
            ("other".to_string(), 0.25),
        ];
        let events = synthesize_from_spans(&spans);
        assert_eq!(events.len(), 4);
        let by_name = |n: &str| events.iter().find(|e| e.name == n).expect("present");
        let all = by_name("all");
        let fit = by_name("all/fit");
        let sweep = by_name("all/sweep");
        let other = by_name("other");
        // Children start at the parent and are laid out sequentially.
        assert_eq!(fit.ts_us, all.ts_us);
        assert_eq!(sweep.ts_us, fit.ts_us + fit.dur_us);
        assert!(sweep.ts_us + sweep.dur_us <= all.ts_us + all.dur_us);
        // Top-level spans do not overlap.
        assert_eq!(other.ts_us, all.ts_us + all.dur_us);
    }

    #[test]
    fn merge_shifts_worker_clocks_and_assigns_lanes() {
        let parent = vec![ev("parent_work", 100, 50)];
        let workers = vec![
            // Worker 1's epoch is 300µs after the parent's.
            WorkerTrace { lane: 1, anchor_unix_us: 1_000_300, events: vec![ev("w1_work", 10, 5)] },
            // Worker 0's clock reads *before* the parent's epoch: the
            // shifted timestamp would be negative and must clamp to 0.
            WorkerTrace {
                lane: 0,
                anchor_unix_us: 999_950,
                events: vec![ev("w0_work", 20, 5), ev("w0_early", 10, 2)],
            },
        ];
        let merged = merge_process_traces(&parent, 1_000_000, &workers);
        assert_eq!(merged.len(), 4);
        // Parent first, then workers by lane regardless of input order.
        assert_eq!(merged[0].name, "parent_work");
        assert_eq!(merged[0].pid, PARENT_PID);
        assert_eq!(merged[0].ts_us, 100, "parent timestamps are unchanged");
        assert_eq!(merged[1].name, "w0_work");
        assert_eq!(merged[1].pid, worker_pid(0));
        // 20 - 50 < 0 → clamp.
        assert_eq!(merged[1].ts_us, 0);
        assert_eq!(merged[2].ts_us, 0, "10 - 50 also clamps");
        assert_eq!(merged[3].name, "w1_work");
        assert_eq!(merged[3].pid, worker_pid(1));
        assert_eq!(merged[3].ts_us, 310, "10 + 300 offset");
        // pid survives the JSON round trip.
        let back = TraceEvent::from_json(&merged[3].to_json()).expect("round trips");
        assert_eq!(back.pid, worker_pid(1));
    }

    #[test]
    fn named_trace_round_trips_through_chrome_parser() {
        let events = vec![ev("a", 0, 10), TraceEvent { pid: worker_pid(0), ..ev("b", 5, 3) }];
        let lanes =
            vec![(PARENT_PID, "parent".to_string()), (worker_pid(0), "worker 0".to_string())];
        let doc = chrome_trace_json_named(&events, &lanes);
        let text = doc.to_string_pretty();
        let back = parse_chrome_trace(&text).expect("parses");
        assert_eq!(back.events, events);
        assert_eq!(back.lanes, lanes);
        // Metadata events carry the fields Perfetto expects.
        let arr = doc.as_arr().unwrap();
        assert_eq!(arr[0].get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(
            arr[0].get("args").and_then(|a| a.get("name")).and_then(Json::as_str),
            Some("parent")
        );
        // Non-array and malformed documents are rejected.
        assert!(parse_chrome_trace("{}").is_err());
        assert!(parse_chrome_trace("[{\"name\":\"x\"}]").is_err());
    }

    #[test]
    fn anchor_is_stable_and_consistent() {
        let a = anchor_unix_us();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(anchor_unix_us(), a, "anchor is pinned once");
        assert!(since_anchor_us() >= 2_000, "elapsed time accumulates");
    }

    #[test]
    fn buffer_caps_and_counts_drops() {
        let b = EventBuffer::new();
        b.push(ev("only", 0, 1));
        assert_eq!(b.snapshot().len(), 1);
        assert_eq!(b.dropped(), 0);
        // Capacity behavior is exercised structurally (filling 262k
        // events here would dominate test time): push directly at cap.
        let full = EventBuffer::new();
        {
            let mut events = full.events.lock().unwrap();
            events.extend(std::iter::repeat_with(|| ev("fill", 0, 0)).take(CAPACITY));
        }
        full.push(ev("overflow", 0, 0));
        assert_eq!(full.dropped(), 1);
        assert_eq!(full.snapshot().len(), CAPACITY);
    }
}
