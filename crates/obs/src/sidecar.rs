//! Worker telemetry sidecars for multi-process runs.
//!
//! A sharded run forks workers, and without help each one is a
//! telemetry black hole: its spans, trace events, and progress die with
//! the process, leaving only a result shard behind. The sidecar is the
//! fix — a JSONL file the worker streams next to its result shard,
//! which the parent tails while the worker runs and harvests after it
//! exits. Each line is one self-describing record (a `"rec"`
//! discriminator field), so a reader can act on what it understands and
//! skip what it does not:
//!
//! - `meta` — written first: OS pid, plan label, shard index/count, job
//!   range size, and the wall-clock reading of the worker's trace epoch
//!   ([`crate::trace::anchor_unix_us`]) that clock normalization needs;
//! - `heartbeat` — periodic liveness: elapsed time, jobs done, the last
//!   job id touched, and resident-set size when `/proc` offers it;
//! - `span` — one per span path at exit: the worker's aggregate span
//!   table;
//! - `event` — one per buffered trace event at exit (only when tracing
//!   was enabled);
//! - `summary` — written last: final job count, wall time, how many
//!   trace events the bounded buffer dropped, and best-effort resource
//!   totals (process CPU time, allocation counts/bytes from
//!   [`crate::alloc`], peak RSS) the parent folds into per-shard skew
//!   tables.
//!
//! The format is append-only and flushed per line, so a reader may see
//! a torn final line while the worker is mid-write — and a killed
//! worker leaves one permanently. [`SidecarDoc::parse`] therefore
//! tolerates a malformed *final* line (reporting it as a problem)
//! while treating malformed interior lines as corruption, and
//! [`parse_tail`] gives the parent incremental reads that only consume
//! complete lines.
//!
//! # Examples
//!
//! ```
//! use udse_obs::sidecar::{Heartbeat, SidecarDoc, SidecarMeta, SidecarWriter, Summary};
//!
//! let dir = std::env::temp_dir().join(format!("udse_sidecar_doc_{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("fig1.shard-0of2.telemetry.jsonl");
//! let meta = SidecarMeta {
//!     pid: std::process::id() as u64,
//!     plan_label: "fig1".to_string(),
//!     shard_index: 0,
//!     shard_count: 2,
//!     jobs: 10,
//!     anchor_unix_us: udse_obs::trace::anchor_unix_us(),
//! };
//! let writer = SidecarWriter::create(&path, &meta).unwrap();
//! writer.heartbeat(&Heartbeat { t_us: 5, done: 10, total: 10, last_job: Some(9), rss_kb: None });
//! writer.finish(&[], &[], &Summary { done: 10, wall_us: 6, ..Summary::default() }).unwrap();
//! let doc = SidecarDoc::read_from_path(&path).unwrap();
//! assert_eq!(doc.summary.as_ref().unwrap().done, 10);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use crate::json::Json;
use crate::span::SpanStat;
use crate::trace::TraceEvent;

/// Version stamped into every `meta` record; bump on incompatible
/// format changes.
pub const SIDECAR_SCHEMA_VERSION: u64 = 1;

/// Filename suffix that marks a file as a telemetry sidecar.
pub const SIDECAR_SUFFIX: &str = ".telemetry.jsonl";

/// The identifying first record of a sidecar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SidecarMeta {
    /// OS process id of the worker (diagnostic only; lane identity
    /// comes from `shard_index`).
    pub pid: u64,
    /// Label of the evaluation plan the worker is serving.
    pub plan_label: String,
    /// Which shard of the plan this worker holds.
    pub shard_index: u64,
    /// Total shards in the run.
    pub shard_count: u64,
    /// Jobs in this worker's range.
    pub jobs: u64,
    /// Wall-clock microseconds since the Unix epoch at the worker's
    /// trace anchor; the clock-normalization key for trace merging.
    pub anchor_unix_us: i64,
}

/// A periodic liveness record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// Microseconds since the worker's trace anchor.
    pub t_us: u64,
    /// Jobs completed so far in the worker's range.
    pub done: u64,
    /// Jobs in the worker's range (repeated for self-contained lines).
    pub total: u64,
    /// Plan-global id of the most recently completed job, if any.
    pub last_job: Option<u64>,
    /// Resident-set size in KiB when cheaply readable, else `None`.
    pub rss_kb: Option<u64>,
}

/// One span path's aggregate timing, as persisted in the sidecar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanLine {
    /// Full `/`-separated span path.
    pub path: String,
    /// Completed executions.
    pub count: u64,
    /// Total wall time across executions, microseconds.
    pub total_us: u64,
    /// Longest single execution, microseconds.
    pub max_us: u64,
}

/// The closing record of a cleanly-exiting worker.
///
/// The resource fields are all best-effort `Option`s: `None` when the
/// probe is unavailable (non-Linux `/proc`, counting allocator not
/// installed) *and* when reading a sidecar written before they existed
/// — readers must treat "absent" and "unmeasured" identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Jobs completed over the worker's lifetime.
    pub done: u64,
    /// Worker wall time in microseconds (anchor to exit).
    pub wall_us: u64,
    /// Trace events rejected by the worker's bounded buffer.
    pub dropped_events: u64,
    /// Process CPU time (user + system) at exit, microseconds
    /// ([`crate::cputime::process_cpu_us`]).
    pub cpu_us: Option<u64>,
    /// Heap allocations served over the worker's lifetime
    /// ([`crate::alloc::stats`]); `None` when the counting allocator is
    /// not installed.
    pub allocs: Option<u64>,
    /// Heap bytes allocated over the worker's lifetime.
    pub alloc_bytes: Option<u64>,
    /// Peak resident-set size in KiB ([`crate::cputime::peak_rss_kb`]).
    pub peak_rss_kb: Option<u64>,
    /// Memoized-stream lookups served from the worker's stream store
    /// (`sim.precompute.hits`); `None` for pre-decomposition sidecars
    /// and workers that ran no simulations.
    pub precompute_hits: Option<u64>,
    /// Memoized-stream lookups that resolved a fresh stream
    /// (`sim.precompute.misses`).
    pub precompute_misses: Option<u64>,
}

/// Any one line of a sidecar stream.
#[derive(Debug, Clone, PartialEq)]
pub enum SidecarRecord {
    /// The identifying first record.
    Meta(SidecarMeta),
    /// A periodic liveness record.
    Heartbeat(Heartbeat),
    /// One span path's aggregate timing.
    Span(SpanLine),
    /// One buffered trace event.
    Event(TraceEvent),
    /// The closing record.
    Summary(Summary),
}

impl SidecarRecord {
    /// The JSON object for this record (one JSONL line, compact).
    pub fn to_json(&self) -> Json {
        match self {
            SidecarRecord::Meta(m) => Json::obj(vec![
                ("rec", Json::str("meta")),
                ("schema_version", Json::Int(SIDECAR_SCHEMA_VERSION as i64)),
                ("pid", Json::Int(m.pid as i64)),
                ("plan_label", Json::str(m.plan_label.as_str())),
                ("shard_index", Json::Int(m.shard_index as i64)),
                ("shard_count", Json::Int(m.shard_count as i64)),
                ("jobs", Json::Int(m.jobs as i64)),
                ("anchor_unix_us", Json::Int(m.anchor_unix_us)),
            ]),
            SidecarRecord::Heartbeat(h) => Json::obj(vec![
                ("rec", Json::str("heartbeat")),
                ("t_us", Json::Int(h.t_us as i64)),
                ("done", Json::Int(h.done as i64)),
                ("total", Json::Int(h.total as i64)),
                ("last_job", h.last_job.map_or(Json::Null, |j| Json::Int(j as i64))),
                ("rss_kb", h.rss_kb.map_or(Json::Null, |r| Json::Int(r as i64))),
            ]),
            SidecarRecord::Span(s) => Json::obj(vec![
                ("rec", Json::str("span")),
                ("path", Json::str(s.path.as_str())),
                ("count", Json::Int(s.count as i64)),
                ("total_us", Json::Int(s.total_us as i64)),
                ("max_us", Json::Int(s.max_us as i64)),
            ]),
            SidecarRecord::Event(e) => {
                let mut fields = vec![("rec".to_string(), Json::str("event"))];
                if let Json::Obj(pairs) = e.to_json() {
                    fields.extend(pairs);
                }
                Json::Obj(fields)
            }
            SidecarRecord::Summary(s) => Json::obj(vec![
                ("rec", Json::str("summary")),
                ("done", Json::Int(s.done as i64)),
                ("wall_us", Json::Int(s.wall_us as i64)),
                ("dropped_events", Json::Int(s.dropped_events as i64)),
                ("cpu_us", s.cpu_us.map_or(Json::Null, |v| Json::Int(v as i64))),
                ("allocs", s.allocs.map_or(Json::Null, |v| Json::Int(v as i64))),
                ("alloc_bytes", s.alloc_bytes.map_or(Json::Null, |v| Json::Int(v as i64))),
                ("peak_rss_kb", s.peak_rss_kb.map_or(Json::Null, |v| Json::Int(v as i64))),
                ("precompute_hits", s.precompute_hits.map_or(Json::Null, |v| Json::Int(v as i64))),
                (
                    "precompute_misses",
                    s.precompute_misses.map_or(Json::Null, |v| Json::Int(v as i64)),
                ),
            ]),
        }
    }

    /// Rebuilds a record from its JSON object form.
    ///
    /// # Errors
    ///
    /// Names the missing/invalid field or unknown `rec` tag.
    pub fn from_json(doc: &Json) -> Result<SidecarRecord, String> {
        let rec = doc.get("rec").and_then(Json::as_str).ok_or("missing rec tag")?;
        let int = |key: &str| -> Result<i64, String> {
            doc.get(key).and_then(Json::as_i64).ok_or_else(|| format!("missing {key}"))
        };
        let uint = |key: &str| -> Result<u64, String> { Ok(int(key)?.max(0) as u64) };
        let opt_uint = |key: &str| -> Option<u64> {
            doc.get(key).and_then(Json::as_i64).map(|v| v.max(0) as u64)
        };
        match rec {
            "meta" => {
                let version = uint("schema_version")?;
                if version > SIDECAR_SCHEMA_VERSION {
                    return Err(format!(
                        "sidecar schema v{version} is newer than supported v{SIDECAR_SCHEMA_VERSION}"
                    ));
                }
                Ok(SidecarRecord::Meta(SidecarMeta {
                    pid: uint("pid")?,
                    plan_label: doc
                        .get("plan_label")
                        .and_then(Json::as_str)
                        .ok_or("missing plan_label")?
                        .to_string(),
                    shard_index: uint("shard_index")?,
                    shard_count: uint("shard_count")?,
                    jobs: uint("jobs")?,
                    anchor_unix_us: int("anchor_unix_us")?,
                }))
            }
            "heartbeat" => Ok(SidecarRecord::Heartbeat(Heartbeat {
                t_us: uint("t_us")?,
                done: uint("done")?,
                total: uint("total")?,
                last_job: opt_uint("last_job"),
                rss_kb: opt_uint("rss_kb"),
            })),
            "span" => Ok(SidecarRecord::Span(SpanLine {
                path: doc.get("path").and_then(Json::as_str).ok_or("missing path")?.to_string(),
                count: uint("count")?,
                total_us: uint("total_us")?,
                max_us: uint("max_us")?,
            })),
            "event" => TraceEvent::from_json(doc)
                .map(SidecarRecord::Event)
                .ok_or_else(|| "malformed event record".to_string()),
            "summary" => Ok(SidecarRecord::Summary(Summary {
                done: uint("done")?,
                wall_us: uint("wall_us")?,
                dropped_events: uint("dropped_events")?,
                // Resource totals arrived after v1 sidecars shipped:
                // absent fields parse as "unmeasured", not as errors.
                cpu_us: opt_uint("cpu_us"),
                allocs: opt_uint("allocs"),
                alloc_bytes: opt_uint("alloc_bytes"),
                peak_rss_kb: opt_uint("peak_rss_kb"),
                precompute_hits: opt_uint("precompute_hits"),
                precompute_misses: opt_uint("precompute_misses"),
            })),
            other => Err(format!("unknown rec tag {other:?}")),
        }
    }
}

/// Converts a span-collector snapshot into sidecar span lines.
pub fn span_lines(snapshot: &[(String, SpanStat)]) -> Vec<SpanLine> {
    snapshot
        .iter()
        .map(|(path, stat)| SpanLine {
            path: path.clone(),
            count: stat.count,
            total_us: stat.total.as_micros() as u64,
            max_us: stat.max.as_micros() as u64,
        })
        .collect()
}

/// Streaming sidecar writer: one flushed JSONL line per record, so the
/// parent sees heartbeats promptly and a crash loses at most the line
/// being written.
#[derive(Debug)]
pub struct SidecarWriter {
    out: Mutex<BufWriter<File>>,
}

impl SidecarWriter {
    /// Creates (truncating) the sidecar and writes the `meta` line.
    ///
    /// # Errors
    ///
    /// Propagates file creation/write failures with the path named.
    pub fn create(path: &Path, meta: &SidecarMeta) -> Result<SidecarWriter, String> {
        let file =
            File::create(path).map_err(|e| format!("create sidecar {}: {e}", path.display()))?;
        let writer = SidecarWriter { out: Mutex::new(BufWriter::new(file)) };
        writer
            .write_record(&SidecarRecord::Meta(meta.clone()))
            .map_err(|e| format!("write sidecar meta {}: {e}", path.display()))?;
        Ok(writer)
    }

    fn write_record(&self, record: &SidecarRecord) -> std::io::Result<()> {
        let mut out = self.out.lock().expect("sidecar writer poisoned");
        out.write_all(record.to_json().to_string_compact().as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()
    }

    /// Appends a heartbeat line. Errors are swallowed: liveness
    /// reporting must never take down the work it reports on.
    pub fn heartbeat(&self, beat: &Heartbeat) {
        let _ = self.write_record(&SidecarRecord::Heartbeat(*beat));
    }

    /// Writes the closing records: the span table, the trace event
    /// buffer (pass empty when tracing is off), and the summary.
    ///
    /// # Errors
    ///
    /// Propagates the first write failure.
    pub fn finish(
        &self,
        spans: &[SpanLine],
        events: &[TraceEvent],
        summary: &Summary,
    ) -> Result<(), String> {
        for span in spans {
            self.write_record(&SidecarRecord::Span(span.clone()))
                .map_err(|e| format!("write sidecar span: {e}"))?;
        }
        for event in events {
            self.write_record(&SidecarRecord::Event(event.clone()))
                .map_err(|e| format!("write sidecar event: {e}"))?;
        }
        self.write_record(&SidecarRecord::Summary(*summary))
            .map_err(|e| format!("write sidecar summary: {e}"))
    }
}

/// A fully-read sidecar, grouped by record kind in stream order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SidecarDoc {
    /// The identifying record; `None` only for a truncated-at-birth file.
    pub meta: Option<SidecarMeta>,
    /// All heartbeats in write order.
    pub heartbeats: Vec<Heartbeat>,
    /// The worker's span table.
    pub spans: Vec<SpanLine>,
    /// The worker's trace event buffer.
    pub events: Vec<TraceEvent>,
    /// The closing record; `None` means the worker did not exit cleanly.
    pub summary: Option<Summary>,
    /// Non-fatal anomalies observed while parsing (e.g. a torn final
    /// line from a killed worker).
    pub problems: Vec<String>,
}

impl SidecarDoc {
    /// Parses a complete sidecar stream. A malformed **final** line is
    /// tolerated (a worker killed mid-write leaves one) and reported in
    /// `problems`; a malformed interior line is corruption and errors.
    ///
    /// # Errors
    ///
    /// Returns the 1-based line number and cause for interior
    /// corruption.
    pub fn parse(text: &str) -> Result<SidecarDoc, String> {
        let mut doc = SidecarDoc::default();
        let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
        for (i, line) in lines.iter().enumerate() {
            let parsed = Json::parse(line)
                .map_err(|e| e.to_string())
                .and_then(|j| SidecarRecord::from_json(&j));
            match parsed {
                Ok(record) => doc.push(record),
                Err(cause) if i + 1 == lines.len() => {
                    doc.problems.push(format!("truncated final line: {cause}"));
                }
                Err(cause) => return Err(format!("line {}: {cause}", i + 1)),
            }
        }
        if doc.meta.is_none() {
            doc.problems.push("no meta record".to_string());
        }
        if doc.summary.is_none() {
            doc.problems.push("no summary record (worker did not exit cleanly)".to_string());
        }
        Ok(doc)
    }

    fn push(&mut self, record: SidecarRecord) {
        match record {
            SidecarRecord::Meta(m) => self.meta = Some(m),
            SidecarRecord::Heartbeat(h) => self.heartbeats.push(h),
            SidecarRecord::Span(s) => self.spans.push(s),
            SidecarRecord::Event(e) => self.events.push(e),
            SidecarRecord::Summary(s) => self.summary = Some(s),
        }
    }

    /// Reads and parses a sidecar file.
    ///
    /// # Errors
    ///
    /// I/O failures and interior corruption, with the path named.
    pub fn read_from_path(path: &Path) -> Result<SidecarDoc, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read sidecar {}: {e}", path.display()))?;
        SidecarDoc::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Wall time covered by the heartbeat stream: anchor to the last
    /// heartbeat (the live view of a worker's age).
    pub fn last_heartbeat_t(&self) -> Option<Duration> {
        self.heartbeats.last().map(|h| Duration::from_micros(h.t_us))
    }
}

/// Incremental tail: parses the complete lines of `text` past byte
/// `offset` and returns the records plus the new offset (the byte after
/// the last newline consumed). A trailing partial line is left for the
/// next call, so the parent can poll a live file without ever seeing a
/// torn record. Unparseable complete lines are skipped — the strict
/// pass at harvest time ([`SidecarDoc::parse`]) owns corruption
/// reporting.
pub fn parse_tail(text: &str, offset: usize) -> (Vec<SidecarRecord>, usize) {
    let mut records = Vec::new();
    let mut consumed = offset.min(text.len());
    while let Some(nl) = text[consumed..].find('\n') {
        let line = &text[consumed..consumed + nl];
        consumed += nl + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(record) =
            Json::parse(line).map_err(|e| e.to_string()).and_then(|j| SidecarRecord::from_json(&j))
        {
            records.push(record);
        }
    }
    (records, consumed)
}

/// All sidecars in `dir`, sorted by filename for deterministic order.
/// Unreadable or interior-corrupt files become entries in the returned
/// problem list rather than failing the collection — after a partially
/// failed run, the surviving telemetry is exactly what's wanted.
pub fn collect(dir: &Path) -> (Vec<(PathBuf, SidecarDoc)>, Vec<String>) {
    let mut docs = Vec::new();
    let mut problems = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            problems.push(format!("read sidecar dir {}: {e}", dir.display()));
            return (docs, problems);
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.ends_with(SIDECAR_SUFFIX))
        })
        .collect();
    paths.sort();
    for path in paths {
        match SidecarDoc::read_from_path(&path) {
            Ok(doc) => docs.push((path, doc)),
            Err(e) => problems.push(e),
        }
    }
    (docs, problems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Phase, PARENT_PID};

    fn meta() -> SidecarMeta {
        SidecarMeta {
            pid: 4242,
            plan_label: "fig1".to_string(),
            shard_index: 1,
            shard_count: 3,
            jobs: 40,
            anchor_unix_us: 1_700_000_000_000_000,
        }
    }

    fn beat(t_us: u64, done: u64) -> Heartbeat {
        Heartbeat { t_us, done, total: 40, last_job: Some(done.saturating_sub(1)), rss_kb: None }
    }

    #[test]
    fn records_round_trip_through_json() {
        let records = vec![
            SidecarRecord::Meta(meta()),
            SidecarRecord::Heartbeat(Heartbeat {
                t_us: 17,
                done: 3,
                total: 40,
                last_job: None,
                rss_kb: Some(5_120),
            }),
            SidecarRecord::Span(SpanLine {
                path: "worker/evaluate".to_string(),
                count: 3,
                total_us: 900,
                max_us: 400,
            }),
            SidecarRecord::Event(TraceEvent {
                name: "worker".to_string(),
                cat: "span".to_string(),
                phase: Phase::Complete,
                ts_us: 10,
                dur_us: 5,
                pid: PARENT_PID,
                tid: 1,
            }),
            SidecarRecord::Summary(Summary {
                done: 40,
                wall_us: 1_234,
                dropped_events: 2,
                cpu_us: Some(800),
                allocs: Some(12_345),
                alloc_bytes: Some(1 << 20),
                peak_rss_kb: Some(64_000),
                precompute_hits: Some(1_800),
                precompute_misses: Some(225),
            }),
            // Unmeasured resources round-trip as explicit nulls.
            SidecarRecord::Summary(Summary { done: 1, wall_us: 2, ..Summary::default() }),
        ];
        for record in &records {
            let line = record.to_json().to_string_compact();
            let back = SidecarRecord::from_json(&Json::parse(&line).unwrap()).expect("parses");
            assert_eq!(&back, record, "line: {line}");
        }
    }

    #[test]
    fn doc_groups_records_and_flags_missing_summary() {
        let mut text = String::new();
        for r in [
            SidecarRecord::Meta(meta()),
            SidecarRecord::Heartbeat(beat(10, 1)),
            SidecarRecord::Heartbeat(beat(20, 2)),
        ] {
            text.push_str(&r.to_json().to_string_compact());
            text.push('\n');
        }
        let doc = SidecarDoc::parse(&text).expect("parses");
        assert_eq!(doc.meta.as_ref().unwrap().shard_index, 1);
        assert_eq!(doc.heartbeats.len(), 2);
        assert_eq!(doc.last_heartbeat_t(), Some(Duration::from_micros(20)));
        assert!(doc.summary.is_none());
        assert!(
            doc.problems.iter().any(|p| p.contains("no summary")),
            "unclean exit must be flagged: {:?}",
            doc.problems
        );
    }

    #[test]
    fn torn_final_line_is_tolerated_interior_corruption_is_not() {
        let meta_line = SidecarRecord::Meta(meta()).to_json().to_string_compact();
        let beat_line = SidecarRecord::Heartbeat(beat(10, 1)).to_json().to_string_compact();
        // A worker killed mid-write tears the last line.
        let torn = format!("{meta_line}\n{beat_line}\n{{\"rec\":\"heartb");
        let doc = SidecarDoc::parse(&torn).expect("torn tail tolerated");
        assert_eq!(doc.heartbeats.len(), 1);
        assert!(doc.problems.iter().any(|p| p.contains("truncated final line")));
        // The same garbage mid-stream is corruption.
        let corrupt = format!("{meta_line}\n{{\"rec\":\"heartb\n{beat_line}\n");
        let err = SidecarDoc::parse(&corrupt).expect_err("interior corruption errors");
        assert!(err.starts_with("line 2:"), "names the line: {err}");
    }

    #[test]
    fn tail_consumes_only_complete_lines() {
        let meta_line = SidecarRecord::Meta(meta()).to_json().to_string_compact();
        let beat_line = SidecarRecord::Heartbeat(beat(10, 1)).to_json().to_string_compact();
        let partial = format!("{meta_line}\n{beat_line}\n{{\"rec\":\"hea");
        let (records, offset) = parse_tail(&partial, 0);
        assert_eq!(records.len(), 2);
        assert_eq!(offset, meta_line.len() + beat_line.len() + 2);
        // The torn tail completes; resuming from the offset sees it.
        let full = format!("{partial}rtbeat\",\"t_us\":20,\"done\":2,\"total\":40}}\n");
        let (more, end) = parse_tail(&full, offset);
        assert_eq!(more.len(), 1);
        assert!(matches!(&more[0], SidecarRecord::Heartbeat(h) if h.t_us == 20));
        assert_eq!(end, full.len());
        // Idempotent at the end of input.
        let (none, same) = parse_tail(&full, end);
        assert!(none.is_empty());
        assert_eq!(same, end);
    }

    #[test]
    fn writer_reader_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("udse_sidecar_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("x.shard-0of1{SIDECAR_SUFFIX}"));
        let writer = SidecarWriter::create(&path, &meta()).expect("create");
        writer.heartbeat(&beat(5, 1));
        let spans =
            vec![SpanLine { path: "worker".to_string(), count: 1, total_us: 99, max_us: 99 }];
        let events = vec![TraceEvent {
            name: "worker".to_string(),
            cat: "span".to_string(),
            phase: Phase::Complete,
            ts_us: 0,
            dur_us: 99,
            pid: PARENT_PID,
            tid: 1,
        }];
        writer
            .finish(&spans, &events, &Summary { done: 40, wall_us: 100, ..Summary::default() })
            .expect("finish");
        let doc = SidecarDoc::read_from_path(&path).expect("reads");
        assert!(doc.problems.is_empty(), "clean file: {:?}", doc.problems);
        assert_eq!(doc.meta.as_ref().unwrap(), &meta());
        assert_eq!(doc.heartbeats, vec![beat(5, 1)]);
        assert_eq!(doc.spans, spans);
        assert_eq!(doc.events, events);
        assert_eq!(doc.summary.unwrap().done, 40);

        // collect() finds it by suffix and ignores other files.
        std::fs::write(dir.join("x.shard-0of1.json"), "{}").unwrap();
        let (docs, problems) = collect(&dir);
        assert!(problems.is_empty(), "{problems:?}");
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].0, path);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn collect_reports_unreadable_dir_as_problem() {
        let missing = std::env::temp_dir().join("udse_sidecar_no_such_dir_xyz");
        let (docs, problems) = collect(&missing);
        assert!(docs.is_empty());
        assert_eq!(problems.len(), 1);
    }

    #[test]
    fn span_lines_convert_collector_snapshots() {
        let collector = crate::span::Collector::new();
        collector.record("a/b", Duration::from_micros(250));
        collector.record("a/b", Duration::from_micros(750));
        let lines = span_lines(&collector.snapshot());
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].path, "a/b");
        assert_eq!(lines[0].count, 2);
        assert_eq!(lines[0].total_us, 1_000);
        assert_eq!(lines[0].max_us, 750);
    }

    #[test]
    fn newer_schema_versions_are_rejected() {
        let line = format!(
            "{{\"rec\":\"meta\",\"schema_version\":{},\"pid\":1,\"plan_label\":\"x\",\
             \"shard_index\":0,\"shard_count\":1,\"jobs\":1,\"anchor_unix_us\":0}}",
            SIDECAR_SCHEMA_VERSION + 1
        );
        let doc = Json::parse(&line).unwrap();
        let err = SidecarRecord::from_json(&doc).expect_err("future schema refused");
        assert!(err.contains("newer than supported"), "{err}");
    }

    #[test]
    fn v1_summaries_without_resource_fields_still_parse() {
        let line = "{\"rec\":\"summary\",\"done\":40,\"wall_us\":123,\"dropped_events\":0}";
        let back = SidecarRecord::from_json(&Json::parse(line).unwrap()).expect("v1 parses");
        let SidecarRecord::Summary(s) = back else { panic!("not a summary: {back:?}") };
        assert_eq!(s.done, 40);
        assert_eq!(s.cpu_us, None);
        assert_eq!(s.allocs, None);
        assert_eq!(s.alloc_bytes, None);
        assert_eq!(s.peak_rss_kb, None);
    }
}
