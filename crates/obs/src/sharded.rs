//! Result shards: the wire format between a sharded run's workers and
//! the parent that reassembles them.
//!
//! A worker process evaluates one contiguous job-ID slice of an
//! evaluation plan and writes a [`ResultShard`]: the rows it produced,
//! each tagged with its stable job ID. The parent collects every shard
//! into a [`ShardedResults`] and [`ShardedResults::assemble`]s them back
//! into one job-ID-ordered table, refusing to proceed when a shard is
//! missing, duplicated, or inconsistent — a killed worker surfaces as an
//! error naming the missing shard, never as silently dropped rows.
//!
//! Values are carried as raw `f64` rows (this crate stays
//! benchmark-agnostic; the caller decides what the columns mean). The
//! JSON float writer emits the shortest round-tripping representation,
//! so finite values survive serialize → parse bit-exactly and a sharded
//! run reassembles bitwise-identical to an in-process one. Non-finite
//! values do not round-trip (JSON has no NaN/inf) and are rejected at
//! write time.
//!
//! # Examples
//!
//! ```
//! use udse_obs::sharded::{ResultShard, ShardedResults};
//!
//! let mut all = ShardedResults::new();
//! all.push(ResultShard::new("demo", 3, 0, 2, vec![(0, vec![1.5])]).unwrap()).unwrap();
//! all.push(ResultShard::new("demo", 3, 1, 2, vec![(1, vec![2.5]), (2, vec![3.5])]).unwrap())
//!     .unwrap();
//! let rows = all.assemble().unwrap();
//! assert_eq!(rows, vec![vec![1.5], vec![2.5], vec![3.5]]);
//! ```

use crate::json::Json;
use crate::manifest::write_with_parents;

/// Shard document layout version, bumped on incompatible changes.
pub const SHARD_SCHEMA_VERSION: i64 = 1;

/// One result row: the job's stable plan ID and its output values.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRow {
    /// Stable job ID (the job's index in the evaluation plan).
    pub id: u64,
    /// Output values in caller-defined column order.
    pub values: Vec<f64>,
}

/// The results of one worker's contiguous slice of an evaluation plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultShard {
    /// Label of the plan these results belong to.
    pub plan_label: String,
    /// Total jobs in the plan (not just this shard).
    pub total_jobs: u64,
    /// This shard's index, `0..shard_count`.
    pub shard_index: u64,
    /// Number of shards the plan was split into.
    pub shard_count: u64,
    /// Result rows in ascending job-ID order.
    pub rows: Vec<ShardRow>,
}

impl ResultShard {
    /// Builds a shard from `(id, values)` rows.
    ///
    /// # Errors
    ///
    /// Rejects `shard_count == 0`, an out-of-range `shard_index`, rows
    /// out of ascending ID order, and non-finite values (which would not
    /// survive the JSON round trip).
    pub fn new(
        plan_label: &str,
        total_jobs: u64,
        shard_index: u64,
        shard_count: u64,
        rows: Vec<(u64, Vec<f64>)>,
    ) -> Result<Self, String> {
        if shard_count == 0 {
            return Err("shard_count must be at least 1".to_string());
        }
        if shard_index >= shard_count {
            return Err(format!("shard_index {shard_index} out of range for {shard_count} shards"));
        }
        let rows: Vec<ShardRow> =
            rows.into_iter().map(|(id, values)| ShardRow { id, values }).collect();
        for pair in rows.windows(2) {
            if pair[1].id <= pair[0].id {
                return Err(format!(
                    "shard rows out of order: id {} follows {}",
                    pair[1].id, pair[0].id
                ));
            }
        }
        for row in &rows {
            if row.id >= total_jobs {
                return Err(format!("row id {} outside plan of {total_jobs} jobs", row.id));
            }
            if let Some(v) = row.values.iter().find(|v| !v.is_finite()) {
                return Err(format!(
                    "row {} holds non-finite value {v} — JSON cannot carry it",
                    row.id
                ));
            }
        }
        Ok(ResultShard {
            plan_label: plan_label.to_string(),
            total_jobs,
            shard_index,
            shard_count,
            rows,
        })
    }

    /// Serializes the shard to its canonical document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("shard_version", Json::Int(SHARD_SCHEMA_VERSION)),
            ("plan_label", Json::str(self.plan_label.as_str())),
            ("total_jobs", Json::Int(self.total_jobs as i64)),
            ("shard_index", Json::Int(self.shard_index as i64)),
            ("shard_count", Json::Int(self.shard_count as i64)),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("id", Json::Int(r.id as i64)),
                                (
                                    "values",
                                    Json::Arr(r.values.iter().map(|&v| Json::Float(v)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a shard document.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, an unsupported version, or malformed
    /// rows, with a message suitable for surfacing verbatim.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&doc)
    }

    /// Interprets an already-parsed document as a shard.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ResultShard::parse`].
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let version = doc
            .get("shard_version")
            .and_then(Json::as_i64)
            .ok_or("missing shard_version — not a result shard")?;
        if version != SHARD_SCHEMA_VERSION {
            return Err(format!(
                "unsupported shard_version {version} (this build reads {SHARD_SCHEMA_VERSION})"
            ));
        }
        let int = |field: &str| -> Result<u64, String> {
            doc.get(field)
                .and_then(Json::as_i64)
                .filter(|&v| v >= 0)
                .map(|v| v as u64)
                .ok_or_else(|| format!("{field} missing or negative"))
        };
        let plan_label =
            doc.get("plan_label").and_then(Json::as_str).ok_or("missing plan_label")?.to_string();
        let mut rows = Vec::new();
        for (i, row) in
            doc.get("rows").and_then(Json::as_arr).ok_or("missing rows array")?.iter().enumerate()
        {
            let id = row
                .get("id")
                .and_then(Json::as_i64)
                .filter(|&v| v >= 0)
                .ok_or_else(|| format!("row {i}: id missing or negative"))?
                as u64;
            let values = row
                .get("values")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("row {i}: missing values array"))?
                .iter()
                .map(|v| v.as_f64().ok_or_else(|| format!("row {i}: non-numeric value")))
                .collect::<Result<Vec<f64>, String>>()?;
            rows.push((id, values));
        }
        ResultShard::new(
            &plan_label,
            int("total_jobs")?,
            int("shard_index")?,
            int("shard_count")?,
            rows,
        )
    }

    /// Writes the pretty-printed shard to `path`, creating missing parent
    /// directories.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures with the path in the message.
    pub fn write_to_path(&self, path: &std::path::Path) -> std::io::Result<()> {
        write_with_parents(path, &self.to_json().to_string_pretty())
    }

    /// Reads and parses a shard file.
    ///
    /// # Errors
    ///
    /// Returns a message naming `path` for I/O and format failures alike.
    pub fn read_from_path(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading result shard {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("result shard {}: {e}", path.display()))
    }
}

/// Collects the shards of one plan and reassembles them in job-ID order.
#[derive(Debug, Default)]
pub struct ShardedResults {
    shards: Vec<ResultShard>,
}

impl ShardedResults {
    /// An empty collection.
    pub fn new() -> Self {
        ShardedResults::default()
    }

    /// Adds a shard, checking it is consistent with those already held
    /// (same plan label, total job count, and shard count; unseen index).
    ///
    /// # Errors
    ///
    /// Names the mismatching field or the duplicated shard.
    pub fn push(&mut self, shard: ResultShard) -> Result<(), String> {
        if let Some(first) = self.shards.first() {
            if shard.plan_label != first.plan_label {
                return Err(format!(
                    "shard {} belongs to plan `{}`, expected `{}`",
                    shard.shard_index, shard.plan_label, first.plan_label
                ));
            }
            if shard.total_jobs != first.total_jobs || shard.shard_count != first.shard_count {
                return Err(format!(
                    "shard {} disagrees on plan shape: {} jobs / {} shards, expected {} / {}",
                    shard.shard_index,
                    shard.total_jobs,
                    shard.shard_count,
                    first.total_jobs,
                    first.shard_count
                ));
            }
            if self.shards.iter().any(|s| s.shard_index == shard.shard_index) {
                return Err(format!(
                    "duplicate result shard {}/{} for plan `{}`",
                    shard.shard_index, shard.shard_count, shard.plan_label
                ));
            }
        }
        self.shards.push(shard);
        Ok(())
    }

    /// Shards held so far.
    pub fn shards(&self) -> &[ResultShard] {
        &self.shards
    }

    /// Reassembles the full result table in job-ID order.
    ///
    /// # Errors
    ///
    /// Refuses when no shards were collected, when any shard index of
    /// `0..shard_count` is absent (the message names each missing shard —
    /// the signature of a killed or failed worker), or when the row IDs
    /// do not cover `0..total_jobs` exactly once.
    pub fn assemble(&self) -> Result<Vec<Vec<f64>>, String> {
        let first = self.shards.first().ok_or("no result shards collected")?;
        let missing: Vec<String> = (0..first.shard_count)
            .filter(|i| !self.shards.iter().any(|s| s.shard_index == *i))
            .map(|i| format!("{i}/{}", first.shard_count))
            .collect();
        if !missing.is_empty() {
            return Err(format!(
                "missing result shard{} {} for plan `{}` — a worker likely failed or was killed; \
                 re-run the corresponding `repro worker --shard <i>/{}` command(s)",
                if missing.len() == 1 { "" } else { "s" },
                missing.join(", "),
                first.plan_label,
                first.shard_count
            ));
        }
        let mut slots: Vec<Option<Vec<f64>>> = vec![None; first.total_jobs as usize];
        for shard in &self.shards {
            for row in &shard.rows {
                let slot = &mut slots[row.id as usize];
                if slot.is_some() {
                    return Err(format!(
                        "job {} appears in more than one shard of plan `{}`",
                        row.id, first.plan_label
                    ));
                }
                *slot = Some(row.values.clone());
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(id, slot)| {
                slot.ok_or_else(|| {
                    format!(
                        "job {id} of plan `{}` produced no result despite all {} shards reporting",
                        first.plan_label, first.shard_count
                    )
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(index: u64, count: u64, rows: Vec<(u64, Vec<f64>)>) -> ResultShard {
        ResultShard::new("t", 6, index, count, rows).expect("valid shard")
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let s = shard(
            1,
            2,
            vec![(3, vec![0.1 + 0.2, 1.0 / 3.0]), (4, vec![f64::MIN_POSITIVE]), (5, vec![])],
        );
        let text = s.to_json().to_string_pretty();
        let back = ResultShard::parse(&text).expect("parses");
        assert_eq!(back.plan_label, "t");
        for (a, b) in s.rows.iter().zip(&back.rows) {
            assert_eq!(a.id, b.id);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
            assert_eq!(bits(&a.values), bits(&b.values));
        }
        assert_eq!(back.to_json().to_string_pretty(), text, "serialize is canonical");
    }

    #[test]
    fn constructor_validates() {
        assert!(ResultShard::new("t", 6, 0, 0, vec![]).is_err(), "zero shards");
        assert!(ResultShard::new("t", 6, 2, 2, vec![]).is_err(), "index out of range");
        assert!(ResultShard::new("t", 6, 0, 1, vec![(6, vec![])]).is_err(), "id out of plan");
        assert!(
            ResultShard::new("t", 6, 0, 1, vec![(1, vec![]), (0, vec![])]).is_err(),
            "unsorted rows"
        );
        let err = ResultShard::new("t", 6, 0, 1, vec![(0, vec![f64::NAN])]).unwrap_err();
        assert!(err.contains("non-finite"), "err: {err}");
    }

    #[test]
    fn assemble_reorders_across_shards() {
        let mut all = ShardedResults::new();
        all.push(shard(2, 3, vec![(4, vec![4.0]), (5, vec![5.0])])).unwrap();
        all.push(shard(0, 3, vec![(0, vec![0.0]), (1, vec![1.0])])).unwrap();
        all.push(shard(1, 3, vec![(2, vec![2.0]), (3, vec![3.0])])).unwrap();
        let rows = all.assemble().expect("complete");
        assert_eq!(rows.iter().map(|r| r[0] as u64).collect::<Vec<u64>>(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn missing_shard_is_named() {
        let mut all = ShardedResults::new();
        all.push(shard(0, 3, vec![(0, vec![0.0]), (1, vec![1.0])])).unwrap();
        all.push(shard(2, 3, vec![(4, vec![4.0]), (5, vec![5.0])])).unwrap();
        let err = all.assemble().expect_err("incomplete");
        assert!(err.contains("missing result shard 1/3"), "err: {err}");
        assert!(err.contains("plan `t`"), "err: {err}");
        assert!(err.contains("repro worker"), "actionable retry hint: {err}");
    }

    #[test]
    fn push_rejects_inconsistent_and_duplicate_shards() {
        let mut all = ShardedResults::new();
        all.push(shard(0, 2, vec![(0, vec![])])).unwrap();
        let err = all
            .push(ResultShard::new("other", 6, 1, 2, vec![]).unwrap())
            .expect_err("label mismatch");
        assert!(err.contains("plan `other`"), "err: {err}");
        let err =
            all.push(ResultShard::new("t", 7, 1, 2, vec![]).unwrap()).expect_err("shape mismatch");
        assert!(err.contains("disagrees"), "err: {err}");
        let err = all.push(shard(0, 2, vec![])).expect_err("duplicate index");
        assert!(err.contains("duplicate result shard 0/2"), "err: {err}");
    }

    #[test]
    fn assemble_rejects_overlapping_and_incomplete_rows() {
        let mut all = ShardedResults::new();
        all.push(shard(0, 2, vec![(0, vec![]), (1, vec![]), (2, vec![])])).unwrap();
        all.push(shard(1, 2, vec![(2, vec![]), (3, vec![])])).unwrap();
        let err = all.assemble().expect_err("job 2 duplicated");
        assert!(err.contains("job 2"), "err: {err}");

        let mut all = ShardedResults::new();
        all.push(shard(0, 2, vec![(0, vec![]), (1, vec![])])).unwrap();
        all.push(shard(1, 2, vec![(3, vec![])])).unwrap();
        let err = all.assemble().expect_err("job 2 absent");
        assert!(err.contains("job 2"), "err: {err}");
    }

    #[test]
    fn file_round_trip_and_errors_name_path() {
        let dir = std::env::temp_dir().join(format!("udse_obs_shard_test_{}", std::process::id()));
        let path = dir.join("nested/r.shard.json");
        let s = shard(0, 1, vec![(0, vec![1.5, 2.5])]);
        s.write_to_path(&path).expect("write with parents");
        assert_eq!(ResultShard::read_from_path(&path).expect("read back"), s);
        let missing = dir.join("absent.json");
        let err = ResultShard::read_from_path(&missing).expect_err("missing file");
        assert!(err.contains("absent.json"), "err: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_documents_error_cleanly() {
        assert!(ResultShard::parse("nope").is_err());
        assert!(ResultShard::parse("{}").unwrap_err().contains("shard_version"));
        let future = r#"{"shard_version": 9, "plan_label": "x", "total_jobs": 0,
            "shard_index": 0, "shard_count": 1, "rows": []}"#;
        assert!(ResultShard::parse(future).unwrap_err().contains("unsupported shard_version"));
    }
}
