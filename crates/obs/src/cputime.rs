//! Best-effort `/proc` resource probes: CPU time and resident-set size.
//!
//! Everything here follows the same contract as the original RSS probe
//! that lived in [`crate::sidecar`]: read a `/proc` file, parse, return
//! `Option` — `None` on any platform or parse hiccup, never an error
//! and never a panic. Both sides of a sharded run use these: workers
//! stamp their sidecar summaries, the parent stamps its manifest
//! `resources` section, and [`crate::span`] samples thread CPU time at
//! span enter/exit.
//!
//! # CPU-time caveats
//!
//! `/proc/*/stat` reports `utime`/`stime` in clock ticks. Without libc
//! there is no `sysconf(_SC_CLK_TCK)`, so the conversion assumes the
//! near-universal Linux default of **100 ticks/second**; on a kernel
//! configured otherwise the absolute values scale by a constant factor
//! (ratios — skew tables, wall-vs-CPU contention — are unaffected).
//! That 10ms granularity also means short spans legitimately read 0
//! CPU; totals accumulate coarsely and only become meaningful for spans
//! well above the tick.

/// Assumed kernel tick rate (`USER_HZ`); see the module docs.
const TICKS_PER_SEC: u64 = 100;

/// Parses `utime + stime` (fields 14 and 15) out of a `/proc/*/stat`
/// line and converts ticks to microseconds. The comm field (2) is an
/// arbitrary string in parentheses — possibly containing spaces or even
/// `)` — so fields are counted from the *last* `)`.
fn stat_cpu_us(stat: &str) -> Option<u64> {
    let rest = &stat[stat.rfind(')')? + 1..];
    let mut fields = rest.split_whitespace();
    // After the comm field: state is field 3, so utime (14) and stime
    // (15) are the 12th and 13th tokens of the remainder.
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some((utime + stime) * 1_000_000 / TICKS_PER_SEC)
}

/// Looks up a `kB`-valued field in `/proc/self/status` text.
fn status_kb(status: &str, key: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(key))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// CPU time (user + system) consumed by the **calling thread**, in
/// microseconds, from `/proc/thread-self/stat`. `None` where `/proc`
/// is unavailable.
pub fn thread_cpu_us() -> Option<u64> {
    stat_cpu_us(&std::fs::read_to_string("/proc/thread-self/stat").ok()?)
}

/// CPU time (user + system) consumed by the **whole process** across
/// all threads, in microseconds, from `/proc/self/stat`.
pub fn process_cpu_us() -> Option<u64> {
    stat_cpu_us(&std::fs::read_to_string("/proc/self/stat").ok()?)
}

/// Resident-set size of this process in KiB, read from
/// `/proc/self/status` (`VmRSS`). `None` where `/proc` is unavailable —
/// callers treat RSS as best-effort.
pub fn read_rss_kb() -> Option<u64> {
    status_kb(&std::fs::read_to_string("/proc/self/status").ok()?, "VmRSS:")
}

/// Peak resident-set size of this process in KiB (`VmHWM` — the
/// high-water mark since exec).
pub fn peak_rss_kb() -> Option<u64> {
    status_kb(&std::fs::read_to_string("/proc/self/status").ok()?, "VmHWM:")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_parsing_counts_from_the_last_paren() {
        // A comm containing spaces and a `)` — the adversarial case.
        let line = "1234 (a b)c) R 1 1 1 0 -1 4194560 100 0 0 0 250 125 0 0 20 0 1 0 8 0 0";
        assert_eq!(stat_cpu_us(line), Some((250 + 125) * 10_000));
    }

    #[test]
    fn stat_parsing_rejects_garbage() {
        assert_eq!(stat_cpu_us(""), None);
        assert_eq!(stat_cpu_us("no parens here"), None);
        assert_eq!(stat_cpu_us("1 (x) R 1 2 3"), None);
    }

    #[test]
    fn status_kb_finds_keyed_lines() {
        let status = "Name:\trepro\nVmHWM:\t  204800 kB\nVmRSS:\t  102400 kB\n";
        assert_eq!(status_kb(status, "VmRSS:"), Some(102_400));
        assert_eq!(status_kb(status, "VmHWM:"), Some(204_800));
        assert_eq!(status_kb(status, "VmSwap:"), None);
    }

    #[test]
    fn live_probes_are_best_effort_and_sane() {
        // On Linux these read real values; elsewhere they return None.
        // Either way they must not panic.
        if let Some(kb) = read_rss_kb() {
            assert!(kb > 0, "a live process has nonzero RSS");
        }
        if let (Some(rss), Some(peak)) = (read_rss_kb(), peak_rss_kb()) {
            assert!(peak >= rss, "high-water mark {peak} below current RSS {rss}");
        }
        if let Some(t) = thread_cpu_us() {
            // Burn a little CPU and confirm the counter is monotone.
            let mut acc = 0u64;
            for i in 0..2_000_000u64 {
                acc = acc.wrapping_add(i.wrapping_mul(2_654_435_761));
            }
            assert!(acc != 1, "keep the loop");
            assert!(thread_cpu_us().unwrap_or(0) >= t, "thread CPU time is monotone");
        }
        if let (Some(thread), Some(process)) = (thread_cpu_us(), process_cpu_us()) {
            // Ticks are coarse: allow one tick of slop between the reads.
            assert!(
                process + 1_000_000 / TICKS_PER_SEC >= thread,
                "process CPU {process} cannot trail this thread's {thread}"
            );
        }
    }
}
