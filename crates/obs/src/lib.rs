//! # udse-obs — observability substrate for the sim→fit→sweep pipeline
//!
//! The paper's argument is that regression models replace opaque,
//! hours-long simulation with fast prediction; this crate makes the
//! pipeline itself transparent so that claim is measurable. It has zero
//! external dependencies (the build must work offline) and provides four
//! facilities:
//!
//! - [`span`] — hierarchical RAII wall-clock timers feeding a
//!   thread-safe global collector ([`span::enter`], [`span::Collector`]);
//!   per-thread stacks merge into one global path table, worker threads
//!   inherit their spawner's path via [`span::adopt`], and
//!   [`span::folded`] exports inferno-compatible folded stacks; every
//!   span also carries per-thread resource deltas (allocations, bytes,
//!   thread CPU time) sampled from [`alloc`] and [`cputime`];
//! - [`alloc`] — a counting `#[global_allocator]` wrapper
//!   ([`alloc::CountingAlloc`], opt-in per binary) whose process-wide
//!   and per-thread counters feed the manifest `resources` section,
//!   span attribution, and the [`alloc::assert_no_alloc`] test guard;
//! - [`cputime`] — best-effort `/proc` probes shared by parent and
//!   workers: thread/process CPU time, current and peak RSS;
//! - [`pool`] — a scoped-thread work pool ([`pool::map`]) with
//!   deterministic, input-ordered results; the oracle layer fans
//!   simulation batches through it, sized by [`pool::set_max_workers`]
//!   (`repro --jobs N`);
//! - [`metrics`] — a registry of atomic [`metrics::Counter`]s,
//!   [`metrics::Gauge`]s, and fixed-bucket [`metrics::Histogram`]s
//!   (simulated instructions, oracle cache hits/misses, Cholesky→QR
//!   fallbacks, sweep throughput, …);
//! - [`log`] — leveled structured logging to stderr, gated by the
//!   `UDSE_LOG` environment variable (`off`, `error`, `warn`, `info`,
//!   `debug`, `trace`), with a rate-limited [`progress::Progress`] meter
//!   for long sweeps;
//! - [`manifest`] — a [`manifest::RunManifest`] capturing per-artifact
//!   wall time, metric snapshots, span totals, model quality, seeds, and
//!   configuration, serialized with the hand-rolled JSON writer/parser in
//!   [`json`] (and read back by [`manifest::ParsedManifest`]);
//! - [`sharded`] — the result-shard wire format for multi-process runs:
//!   [`sharded::ResultShard`] writer/reader plus
//!   [`sharded::ShardedResults`] reassembly with missing-shard detection
//!   (and [`manifest::merge_manifests`] to aggregate the per-shard run
//!   manifests);
//! - [`quality`] — model-quality telemetry: per-benchmark and pooled
//!   prediction-error quantiles, signed bias, and R² accumulated in a
//!   global [`quality::Collector`] and persisted in the manifest;
//! - [`trace`] — an opt-in (`UDSE_TRACE`) buffer of discrete span/instant
//!   events exporting to Chrome `trace_event` JSON (Perfetto-loadable)
//!   and a JSONL stream, with per-process pid lanes and clock-offset
//!   normalization ([`trace::merge_process_traces`]) for sharded runs;
//! - [`sidecar`] — the worker telemetry sidecar: a JSONL stream of
//!   heartbeats, span totals, and trace events each worker writes next
//!   to its result shard, which the parent tails live
//!   ([`sidecar::parse_tail`]) and harvests after reassembly
//!   ([`sidecar::collect`]).
//!
//! # Conventions
//!
//! Metric names are dotted lowercase paths, namespaced by subsystem:
//! `sim.instructions`, `oracle.cache.hits`, `regress.cholesky_fallbacks`,
//! `sweep.designs_per_sec`. Span names are short path segments; nesting
//! produces `repro/fig3/sweep`-style paths in the collector.
//!
//! # Examples
//!
//! ```
//! use udse_obs::{metrics, span};
//!
//! let registry = metrics::Registry::new();
//! registry.counter("sim.instructions").add(20_000);
//! {
//!     let _outer = span::enter("study");
//!     let _inner = span::enter("sweep");
//!     // timed work ...
//! }
//! assert_eq!(registry.counter("sim.instructions").get(), 20_000);
//! ```

pub mod alloc;
pub mod cputime;
pub mod json;
pub mod log;
pub mod manifest;
pub mod metrics;
pub mod pool;
pub mod progress;
pub mod quality;
pub mod sharded;
pub mod sidecar;
pub mod span;
pub mod trace;

pub use alloc::CountingAlloc;
pub use json::Json;

// The crate's own unit-test binary runs under the counting allocator so
// the `alloc`/`span` tests exercise real counting, exactly as the
// `repro` and `udse-inspect` binaries do in production.
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: CountingAlloc = CountingAlloc::new();
pub use log::Level;
pub use manifest::{ParsedManifest, RunManifest};
pub use metrics::Registry;
pub use progress::{Progress, ShardProgress};
pub use quality::QualityRecord;
pub use sharded::{ResultShard, ShardedResults};
pub use span::SpanGuard;
pub use trace::TraceEvent;
