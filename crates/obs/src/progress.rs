//! Rate-limited progress meter for long-running sweeps.
//!
//! [`Progress`] writes an in-place updating line to stderr, but only when
//! [`Level::Info`](crate::Level::Info) logging is enabled *and* stderr is
//! a terminal (carriage-return repainting is noise in a redirected log),
//! at most a few times per second, so the exhaustive sweep can report
//! position without flooding the terminal or slowing the loop.
//! [`Progress::finish`] clears the line and returns the overall rate in
//! items per second.

use std::io::{IsTerminal, Write};
use std::time::{Duration, Instant};

use crate::log::{enabled, Level};

/// Minimum interval between repaints of the progress line.
const REFRESH: Duration = Duration::from_millis(200);

/// A progress meter over a known number of items.
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: u64,
    done: u64,
    start: Instant,
    last_draw: Option<Instant>,
    drew_anything: bool,
    stderr_is_tty: bool,
}

impl Progress {
    /// Starts a meter for `total` items under the given label.
    pub fn new(label: &str, total: u64) -> Self {
        Progress {
            label: label.to_string(),
            total,
            done: 0,
            start: Instant::now(),
            last_draw: None,
            drew_anything: false,
            stderr_is_tty: std::io::stderr().is_terminal(),
        }
    }

    /// Advances the meter by `n` items, repainting at most every
    /// [`REFRESH`] interval.
    pub fn advance(&mut self, n: u64) {
        self.done += n;
        if !self.stderr_is_tty || !enabled(Level::Info) {
            return;
        }
        let due = match self.last_draw {
            None => true,
            Some(t) => t.elapsed() >= REFRESH,
        };
        if due {
            self.draw();
            self.last_draw = Some(Instant::now());
        }
    }

    fn draw(&mut self) {
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 { self.done as f64 / elapsed } else { 0.0 };
        let pct = if self.total > 0 { 100.0 * self.done as f64 / self.total as f64 } else { 0.0 };
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r{}: {}/{} ({:.1}%) {:.0}/s   ",
            self.label, self.done, self.total, pct, rate
        );
        let _ = err.flush();
        self.drew_anything = true;
    }

    /// Items recorded so far.
    pub fn done(&self) -> u64 {
        self.done
    }

    /// Clears the progress line and returns the overall rate in items per
    /// second over the meter's lifetime.
    pub fn finish(mut self) -> f64 {
        let elapsed = self.start.elapsed().as_secs_f64();
        if self.drew_anything {
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r{:width$}\r", "", width = self.label.len() + 40);
            let _ = err.flush();
            self.drew_anything = false;
        }
        if elapsed > 0.0 {
            self.done as f64 / elapsed
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_reports_rate() {
        // Logging may be off in tests; advance must still count.
        let mut p = Progress::new("test sweep", 1_000);
        for _ in 0..10 {
            p.advance(100);
        }
        assert_eq!(p.done(), 1_000);
        std::thread::sleep(Duration::from_millis(2));
        let rate = p.finish();
        assert!(rate > 0.0, "rate {rate} should be positive");
        assert!(rate <= 1_000.0 / 0.002 + 1.0, "rate {rate} bounded by elapsed");
    }

    #[test]
    fn zero_total_does_not_divide_by_zero() {
        let mut p = Progress::new("empty", 0);
        p.advance(0);
        let rate = p.finish();
        assert!(rate.is_finite());
    }
}
