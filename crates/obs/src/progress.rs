//! Rate-limited progress meters for long-running sweeps.
//!
//! [`Progress`] writes an in-place updating line to stderr, but only when
//! [`Level::Info`](crate::Level::Info) logging is enabled *and* stderr is
//! a terminal (carriage-return repainting is noise in a redirected log),
//! at most a few times per second, so the exhaustive sweep can report
//! position without flooding the terminal or slowing the loop.
//! [`Progress::finish`] clears the line and returns the overall rate in
//! items per second.
//!
//! [`ShardProgress`] is the multi-process sibling: the parent of a
//! sharded run feeds it the heartbeats it tails from worker telemetry
//! sidecars, and it repaints one line with a per-shard completion cell
//! (`[ 45% 100% 12% ]`) under the same tty/level/rate gating. Because
//! it tracks when each shard last reported, it is also the stall
//! detector: [`ShardProgress::stalled`] returns the shards that have
//! gone silent past a threshold, with their last-known job for the
//! operator's benefit.

use std::io::{IsTerminal, Write};
use std::time::{Duration, Instant};

use crate::log::{enabled, Level};

/// Minimum interval between repaints of the progress line.
const REFRESH: Duration = Duration::from_millis(200);

/// A progress meter over a known number of items.
#[derive(Debug)]
pub struct Progress {
    label: String,
    total: u64,
    done: u64,
    start: Instant,
    last_draw: Option<Instant>,
    drew_anything: bool,
    stderr_is_tty: bool,
}

impl Progress {
    /// Starts a meter for `total` items under the given label.
    pub fn new(label: &str, total: u64) -> Self {
        Progress {
            label: label.to_string(),
            total,
            done: 0,
            start: Instant::now(),
            last_draw: None,
            drew_anything: false,
            stderr_is_tty: std::io::stderr().is_terminal(),
        }
    }

    /// Advances the meter by `n` items, repainting at most every
    /// [`REFRESH`] interval.
    pub fn advance(&mut self, n: u64) {
        self.done += n;
        if !self.stderr_is_tty || !enabled(Level::Info) {
            return;
        }
        let due = match self.last_draw {
            None => true,
            Some(t) => t.elapsed() >= REFRESH,
        };
        if due {
            self.draw();
            self.last_draw = Some(Instant::now());
        }
    }

    fn draw(&mut self) {
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 { self.done as f64 / elapsed } else { 0.0 };
        let pct = if self.total > 0 { 100.0 * self.done as f64 / self.total as f64 } else { 0.0 };
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r{}: {}/{} ({:.1}%) {:.0}/s   ",
            self.label, self.done, self.total, pct, rate
        );
        let _ = err.flush();
        self.drew_anything = true;
    }

    /// Items recorded so far.
    pub fn done(&self) -> u64 {
        self.done
    }

    /// Clears the progress line and returns the overall rate in items per
    /// second over the meter's lifetime.
    pub fn finish(mut self) -> f64 {
        let elapsed = self.start.elapsed().as_secs_f64();
        if self.drew_anything {
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r{:width$}\r", "", width = self.label.len() + 40);
            let _ = err.flush();
            self.drew_anything = false;
        }
        if elapsed > 0.0 {
            self.done as f64 / elapsed
        } else {
            0.0
        }
    }
}

/// Live view of one shard's worker, fed from its sidecar heartbeats.
#[derive(Debug, Clone, Copy)]
struct ShardState {
    done: u64,
    total: u64,
    last_beat: Option<Instant>,
    last_job: Option<u64>,
    finished: bool,
}

/// One silent shard, as reported by [`ShardProgress::stalled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallInfo {
    /// Shard index of the silent worker.
    pub shard: usize,
    /// Whether the worker ever sent a heartbeat (a worker that never
    /// reported may have died before its telemetry started).
    pub ever_beat: bool,
    /// Plan-global id of the last job it reported completing.
    pub last_job: Option<u64>,
    /// Jobs it had completed at its last report.
    pub done: u64,
    /// Jobs in its range.
    pub total: u64,
}

/// Aggregate progress meter over the shards of a multi-process run.
#[derive(Debug)]
pub struct ShardProgress {
    label: String,
    shards: Vec<ShardState>,
    start: Instant,
    last_draw: Option<Instant>,
    drew_anything: bool,
    stderr_is_tty: bool,
}

impl ShardProgress {
    /// Starts a meter for shards with the given per-shard job totals.
    pub fn new(label: &str, shard_totals: &[u64]) -> Self {
        ShardProgress {
            label: label.to_string(),
            shards: shard_totals
                .iter()
                .map(|&total| ShardState {
                    done: 0,
                    total,
                    last_beat: None,
                    last_job: None,
                    finished: false,
                })
                .collect(),
            start: Instant::now(),
            last_draw: None,
            drew_anything: false,
            stderr_is_tty: std::io::stderr().is_terminal(),
        }
    }

    /// Records a heartbeat from `shard`: jobs done in its range and the
    /// last plan-global job id it completed. Repaints if due.
    pub fn heartbeat(&mut self, shard: usize, done: u64, last_job: Option<u64>) {
        if let Some(state) = self.shards.get_mut(shard) {
            state.done = done.min(state.total);
            state.last_beat = Some(Instant::now());
            if last_job.is_some() {
                state.last_job = last_job;
            }
        }
        self.maybe_draw();
    }

    /// Marks `shard` complete (its worker exited and was reaped); it no
    /// longer participates in stall detection.
    pub fn mark_finished(&mut self, shard: usize) {
        if let Some(state) = self.shards.get_mut(shard) {
            state.finished = true;
            state.done = state.total;
        }
        self.maybe_draw();
    }

    /// Shards that are unfinished and have been silent for at least
    /// `threshold` — never having reported counts as silent since the
    /// meter started. The caller decides whether a silent shard is a
    /// straggler (process still alive) or dead (process gone but
    /// unreaped); this only observes the telemetry going quiet.
    pub fn stalled(&self, threshold: Duration) -> Vec<StallInfo> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.finished)
            .filter(|(_, s)| s.last_beat.unwrap_or(self.start).elapsed() >= threshold)
            .map(|(i, s)| StallInfo {
                shard: i,
                ever_beat: s.last_beat.is_some(),
                last_job: s.last_job,
                done: s.done,
                total: s.total,
            })
            .collect()
    }

    /// Jobs reported done across all shards.
    pub fn done(&self) -> u64 {
        self.shards.iter().map(|s| s.done).sum()
    }

    fn maybe_draw(&mut self) {
        if !self.stderr_is_tty || !enabled(Level::Info) {
            return;
        }
        let due = match self.last_draw {
            None => true,
            Some(t) => t.elapsed() >= REFRESH,
        };
        if due {
            self.draw();
            self.last_draw = Some(Instant::now());
        }
    }

    fn draw(&mut self) {
        let done = self.done();
        let total: u64 = self.shards.iter().map(|s| s.total).sum();
        let pct = if total > 0 { 100.0 * done as f64 / total as f64 } else { 0.0 };
        let elapsed = self.start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 { done as f64 / elapsed } else { 0.0 };
        let mut cells = String::new();
        for s in &self.shards {
            let cell = if s.total > 0 { 100.0 * s.done as f64 / s.total as f64 } else { 100.0 };
            cells.push_str(&format!(" {cell:.0}%"));
        }
        let mut err = std::io::stderr().lock();
        let _ = write!(err, "\r{}: [{} ] {:.1}% {:.0}/s   ", self.label, cells, pct, rate);
        let _ = err.flush();
        self.drew_anything = true;
    }

    /// Clears the progress line and returns the overall rate in jobs
    /// per second over the meter's lifetime.
    pub fn finish(mut self) -> f64 {
        let elapsed = self.start.elapsed().as_secs_f64();
        if self.drew_anything {
            let width = self.label.len() + 6 * self.shards.len() + 40;
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r{:width$}\r", "");
            let _ = err.flush();
            self.drew_anything = false;
        }
        if elapsed > 0.0 {
            self.done() as f64 / elapsed
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_reports_rate() {
        // Logging may be off in tests; advance must still count.
        let mut p = Progress::new("test sweep", 1_000);
        for _ in 0..10 {
            p.advance(100);
        }
        assert_eq!(p.done(), 1_000);
        std::thread::sleep(Duration::from_millis(2));
        let rate = p.finish();
        assert!(rate > 0.0, "rate {rate} should be positive");
        assert!(rate <= 1_000.0 / 0.002 + 1.0, "rate {rate} bounded by elapsed");
    }

    #[test]
    fn zero_total_does_not_divide_by_zero() {
        let mut p = Progress::new("empty", 0);
        p.advance(0);
        let rate = p.finish();
        assert!(rate.is_finite());
    }

    #[test]
    fn shard_meter_aggregates_heartbeats() {
        let mut p = ShardProgress::new("shards", &[10, 10, 20]);
        p.heartbeat(0, 5, Some(4));
        p.heartbeat(2, 20, Some(39));
        // Out-of-range shard indices and over-counts are clamped.
        p.heartbeat(9, 100, None);
        p.heartbeat(1, 99, Some(19));
        assert_eq!(p.done(), 5 + 10 + 20);
        p.mark_finished(0);
        assert_eq!(p.done(), 40);
        let rate = p.finish();
        assert!(rate.is_finite() && rate >= 0.0);
    }

    #[test]
    fn stall_detection_distinguishes_silent_shards() {
        let mut p = ShardProgress::new("stall", &[10, 10]);
        // Shard 0 beats freshly; shard 1 never reports.
        std::thread::sleep(Duration::from_millis(15));
        p.heartbeat(0, 3, Some(2));
        let stalls = p.stalled(Duration::from_millis(10));
        assert_eq!(stalls.len(), 1, "only the silent shard stalls: {stalls:?}");
        assert_eq!(stalls[0].shard, 1);
        assert!(!stalls[0].ever_beat);
        assert_eq!(stalls[0].last_job, None);
        // A fresh heartbeat clears it; a finished shard never stalls.
        p.heartbeat(1, 1, Some(5));
        assert!(p.stalled(Duration::from_millis(10)).is_empty());
        std::thread::sleep(Duration::from_millis(15));
        let again = p.stalled(Duration::from_millis(10));
        assert_eq!(again.len(), 2, "both silent again");
        assert!(again[1].ever_beat);
        assert_eq!(again[1].last_job, Some(5));
        p.mark_finished(0);
        p.mark_finished(1);
        assert!(p.stalled(Duration::from_millis(0)).is_empty());
        let _ = p.finish();
    }
}
