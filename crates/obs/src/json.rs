//! Minimal JSON value, writer, and parser.
//!
//! The build runs offline with no access to serde, so manifests are
//! serialized by hand. [`Json`] keeps integers and floats distinct
//! (counters must round-trip exactly) and objects as insertion-ordered
//! key/value vectors so emitted manifests are stable and diffable. The
//! parser exists mainly so tests can round-trip what the writer emits;
//! it accepts standard JSON minus the corners the writer never produces
//! (`\u` escapes beyond the BMP are passed through unvalidated).
//!
//! # Examples
//!
//! ```
//! use udse_obs::Json;
//!
//! let doc = Json::obj([
//!     ("tool", Json::str("repro")),
//!     ("designs", Json::Int(262_500)),
//! ]);
//! let text = doc.to_string_pretty();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("designs").and_then(Json::as_i64), Some(262_500));
//! ```

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer, kept exact (counters, counts, seeds).
    Int(i64),
    /// A floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs in order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The integer value, if this is `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value of `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is `Arr`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty-printed serialization with two-space indentation and a
    /// trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }

    /// Parses a JSON document, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError { pos, what: "trailing characters after document" });
        }
        Ok(value)
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // `{}` on f64 is the shortest representation that round-trips, but
    // prints integral values without a decimal point; add one so the
    // value re-parses as Float, not Int.
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub pos: usize,
    /// What the parser expected or rejected.
    pub what: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.what)
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8, what: &'static str) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError { pos: *pos, what })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    match bytes.get(*pos) {
        None => Err(ParseError { pos: *pos, what: "unexpected end of input" }),
        Some(b'n') => parse_keyword(bytes, pos, b"null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, b"false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ParseError { pos: *pos, what: "expected ',' or ']'" }),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':', "expected ':' after object key")?;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(ParseError { pos: *pos, what: "expected ',' or '}'" }),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &'static [u8],
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(ParseError { pos: *pos, what: "invalid literal" })
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"', "expected string")?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError { pos: *pos, what: "unterminated string" }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError { pos: *pos, what: "bad \\u escape" })?;
                        out.push(
                            char::from_u32(hex)
                                .ok_or(ParseError { pos: *pos, what: "bad \\u escape" })?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(ParseError { pos: *pos, what: "bad escape" }),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always at a char boundary).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| ParseError { pos: *pos, what: "invalid utf-8" })?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError { pos: start, what: "invalid number" })?;
    if text.is_empty() || text == "-" {
        return Err(ParseError { pos: start, what: "expected value" });
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| ParseError { pos: start, what: "invalid number" })
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| ParseError { pos: start, what: "integer out of range" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_scalars() {
        assert_eq!(Json::Null.to_string_compact(), "null");
        assert_eq!(Json::Bool(true).to_string_compact(), "true");
        assert_eq!(Json::Int(-42).to_string_compact(), "-42");
        assert_eq!(Json::Float(1.5).to_string_compact(), "1.5");
        assert_eq!(Json::Float(3.0).to_string_compact(), "3.0");
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").to_string_compact(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let doc = Json::obj([("z", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(doc.to_string_compact(), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::obj([
            ("tool", Json::str("repro")),
            ("count", Json::Int(9_007_199_254_740_993)),
            ("rate", Json::Float(12345.678)),
            ("tiny", Json::Float(1.25e-12)),
            ("flags", Json::Arr(vec![Json::Bool(false), Json::Null])),
            ("nested", Json::obj([("unicode", Json::str("µarch → ±3%"))])),
            ("empty_obj", Json::obj(Vec::<(String, Json)>::new())),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            let back = Json::parse(&text).expect("parses");
            assert_eq!(back, doc, "round trip through {text}");
        }
    }

    #[test]
    fn int_float_distinction_survives_round_trip() {
        let back = Json::parse("{\"a\":3,\"b\":3.0}").unwrap();
        assert_eq!(back.get("a"), Some(&Json::Int(3)));
        assert_eq!(back.get("b"), Some(&Json::Float(3.0)));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let back = Json::parse(" { \"k\" : [ 1 , \"\\u00b5\" ] } ").unwrap();
        assert_eq!(back.get("k").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(back.get("k").unwrap().as_arr().unwrap()[1].as_str(), Some("µ"));
    }

    #[test]
    fn accessors() {
        let doc = Json::obj([("s", Json::str("x")), ("n", Json::Int(2))]);
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Int(1).get("s"), None);
    }
}
