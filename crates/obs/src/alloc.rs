//! A counting `#[global_allocator]` wrapper around [`std::alloc::System`].
//!
//! The pipeline's hot paths (the compiled predictor walk, the sharded
//! oracle) are sold on their per-design cost, so "how many heap
//! allocations did that cost" must be a measured number, not a comment.
//! [`CountingAlloc`] counts every allocation twice — into process-wide
//! atomics (totals, live bytes, peak) and into plain per-thread cells —
//! so both a whole-run `resources` manifest section and per-span deltas
//! ([`crate::span`]) fall out of the same counters.
//!
//! The wrapper is **opt-in per binary**: a crate that wants counting
//! declares
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: udse_obs::alloc::CountingAlloc = udse_obs::alloc::CountingAlloc::new();
//! ```
//!
//! Library code never installs it, so embedders keep their own
//! allocator and pay nothing. When the wrapper is *not* installed every
//! probe in this module reads zeros and [`counting`] returns `false`;
//! consumers (manifest, span table) suppress the columns instead of
//! printing zeros that would read as "allocation-free".
//!
//! Counting costs a handful of relaxed atomic adds and two thread-local
//! cell bumps per malloc/free — noise next to the allocator call itself.
//! The per-thread cells use `const`-initialized `Cell<u64>`s, which
//! neither allocate nor register TLS destructors, so touching them from
//! inside the allocator cannot recurse.
//!
//! [`assert_no_alloc`] is the test guard built on the thread-local
//! counters: it runs a closure and panics if the current thread
//! allocated inside it. It also panics when the counting allocator is
//! not installed, so a mis-wired test fails loudly instead of passing
//! vacuously.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static BYTES_DEALLOCATED: AtomicU64 = AtomicU64::new(0);
static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static THREAD_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Counting allocator; see the module docs for installation.
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new wrapper (all state is in statics; the value is a token for
    /// the `#[global_allocator]` slot).
    pub const fn new() -> Self {
        CountingAlloc
    }
}

#[inline]
fn note_alloc(size: usize) {
    let size = size as u64;
    ALLOCS.fetch_add(1, Relaxed);
    BYTES_ALLOCATED.fetch_add(size, Relaxed);
    let live = CURRENT_BYTES.fetch_add(size, Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Relaxed);
    THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
    THREAD_BYTES.with(|c| c.set(c.get() + size));
}

#[inline]
fn note_dealloc(size: usize) {
    let size = size as u64;
    DEALLOCS.fetch_add(1, Relaxed);
    BYTES_DEALLOCATED.fetch_add(size, Relaxed);
    // Saturating: a `dealloc` of memory obtained before this wrapper was
    // swapped in (impossible for `#[global_allocator]`, but cheap to be
    // safe about) must not wrap the live-bytes gauge.
    let _ = CURRENT_BYTES.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(size)));
}

// SAFETY: every method delegates the actual memory management to
// `System` unchanged; the wrapper only updates counters around it.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        note_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Counted as a fresh allocation plus a free of the old block:
            // a grow-in-place still round-trips through the allocator, and
            // `assert_no_alloc` should flag it (a "no allocation" hot loop
            // must not realloc either).
            note_alloc(new_size);
            note_dealloc(layout.size());
        }
        p
    }
}

/// Process-wide allocation totals since startup (all threads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations served (mallocs + reallocs + zeroed allocs).
    pub allocs: u64,
    /// Deallocations served (frees + the release half of reallocs).
    pub deallocs: u64,
    /// Total bytes ever allocated.
    pub bytes_allocated: u64,
    /// Total bytes ever freed.
    pub bytes_deallocated: u64,
    /// Bytes currently live.
    pub current_bytes: u64,
    /// High-water mark of live heap bytes.
    pub peak_bytes: u64,
}

/// Per-thread allocation totals (monotone counters; subtract two
/// snapshots for a delta).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadAllocStats {
    /// Allocations served on this thread.
    pub allocs: u64,
    /// Bytes allocated on this thread.
    pub bytes: u64,
}

/// Snapshot of the process-wide counters. All zeros when the counting
/// allocator is not installed.
pub fn stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Relaxed),
        deallocs: DEALLOCS.load(Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Relaxed),
        bytes_deallocated: BYTES_DEALLOCATED.load(Relaxed),
        current_bytes: CURRENT_BYTES.load(Relaxed),
        peak_bytes: PEAK_BYTES.load(Relaxed),
    }
}

/// Snapshot of the current thread's counters. All zeros when the
/// counting allocator is not installed.
pub fn thread_stats() -> ThreadAllocStats {
    ThreadAllocStats { allocs: THREAD_ALLOCS.with(Cell::get), bytes: THREAD_BYTES.with(Cell::get) }
}

/// Whether the counting allocator is actually serving this process.
///
/// Any Rust program allocates long before user code runs, so "the
/// global alloc counter is still zero" is a reliable "not installed"
/// signal by the time anything calls this.
pub fn counting() -> bool {
    ALLOCS.load(Relaxed) > 0
}

/// Runs `f` and panics if the current thread heap-allocated (or
/// realloc'd) inside it; returns `f`'s value otherwise.
///
/// Panics with an explanatory message when the counting allocator is
/// not installed — a binary that forgot the `#[global_allocator]`
/// declaration would otherwise pass every no-alloc assertion vacuously.
///
/// Only the calling thread is watched: allocations on other threads
/// (e.g. the [`crate::pool`] workers) are not attributed to `f`. Run
/// the code under test on the asserting thread.
pub fn assert_no_alloc<T>(context: &str, f: impl FnOnce() -> T) -> T {
    assert!(
        counting(),
        "assert_no_alloc({context}): the counting allocator is not installed; \
         declare `#[global_allocator] static A: udse_obs::alloc::CountingAlloc = \
         udse_obs::alloc::CountingAlloc::new();` in the test binary"
    );
    let before = thread_stats();
    let out = f();
    let after = thread_stats();
    let (allocs, bytes) = (after.allocs - before.allocs, after.bytes - before.bytes);
    assert!(
        allocs == 0,
        "assert_no_alloc({context}): {allocs} heap allocation(s) totalling {bytes} byte(s) \
         on the asserting thread"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The obs test binary installs `CountingAlloc` (see `lib.rs`), so
    // these tests exercise real counting.

    #[test]
    fn counting_allocator_is_installed_in_tests() {
        assert!(counting(), "obs unit tests must run under CountingAlloc");
    }

    #[test]
    fn allocations_move_every_counter() {
        let g0 = stats();
        let t0 = thread_stats();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let g1 = stats();
        let t1 = thread_stats();
        assert!(g1.allocs > g0.allocs);
        assert!(g1.bytes_allocated >= g0.bytes_allocated + 4096);
        assert!(g1.peak_bytes >= 4096);
        assert!(t1.allocs > t0.allocs);
        assert!(t1.bytes >= t0.bytes + 4096);
        drop(v);
        let g2 = stats();
        assert!(g2.deallocs > g1.deallocs);
        assert!(g2.bytes_deallocated >= g1.bytes_deallocated + 4096);
    }

    #[test]
    fn peak_tracks_high_water_not_current() {
        let before = stats();
        {
            let _big: Vec<u8> = vec![0; 1 << 20];
        }
        let after = stats();
        assert!(after.peak_bytes >= 1 << 20, "peak {} after a 1MiB vec", after.peak_bytes);
        assert!(after.peak_bytes >= before.peak_bytes, "peak is monotone");
        // The vec is freed: live bytes dropped back down.
        assert!(after.current_bytes < after.peak_bytes + (1 << 20));
    }

    #[test]
    fn assert_no_alloc_passes_on_arithmetic() {
        let x = assert_no_alloc("pure arithmetic", || (0u64..1000).map(|i| i * i).sum::<u64>());
        assert_eq!(x, 332_833_500);
    }

    #[test]
    fn assert_no_alloc_catches_an_allocation() {
        let err = std::panic::catch_unwind(|| {
            assert_no_alloc("deliberate vec", || Vec::<u64>::with_capacity(8).capacity())
        })
        .expect_err("allocation must panic the guard");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("deliberate vec"), "panic names the context: {msg}");
    }

    #[test]
    fn assert_no_alloc_catches_realloc() {
        let mut v: Vec<u64> = Vec::with_capacity(2);
        v.push(1);
        v.push(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            assert_no_alloc("grow past capacity", || v.push(3));
        }));
        assert!(result.is_err(), "growing a full vec reallocs and must be caught");
    }

    #[test]
    fn thread_counters_are_per_thread() {
        let t0 = thread_stats();
        std::thread::spawn(|| {
            let _v: Vec<u8> = vec![7; 1 << 16];
        })
        .join()
        .expect("worker thread");
        let t1 = thread_stats();
        // The worker's 64KiB does not land on this thread's counters.
        // (This thread may still allocate a little via the join itself.)
        assert!(t1.bytes - t0.bytes < 1 << 16, "worker bytes leaked into spawner counters");
    }
}
