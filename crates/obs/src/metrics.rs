//! Metrics registry: named atomic counters, gauges, and fixed-bucket
//! histograms.
//!
//! The hot paths touch only atomics; registration (name lookup) takes a
//! mutex and should be done once per stage, not per event. A process-wide
//! [`global`] registry backs the pipeline; tests build private
//! [`Registry`] instances to stay isolated.
//!
//! # Examples
//!
//! ```
//! use udse_obs::metrics::Registry;
//!
//! let r = Registry::new();
//! r.counter("oracle.cache.hits").add(3);
//! r.gauge("sweep.designs_per_sec").set(125_000.0);
//! let h = r.histogram("fit.seconds", &[0.01, 0.1, 1.0, 10.0]);
//! h.observe(0.25);
//! assert_eq!(r.counter("oracle.cache.hits").get(), 3);
//! assert!(h.quantile(0.5) > 0.1);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-written-wins floating-point measurement.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram with fixed, ascending upper bucket bounds plus an
/// implicit overflow bucket.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket at the end.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Atomic f64 accumulation via CAS on the bit pattern.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The configured upper bounds (without the overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Estimates the `q`-quantile (`0 <= q <= 1`) by linear interpolation
    /// inside the bucket containing the target rank. Observations beyond
    /// the last bound are attributed to the last bound (the usual
    /// Prometheus convention), so the estimate saturates there.
    ///
    /// Returns `f64::NAN` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let total = self.count();
        if total == 0 {
            return f64::NAN;
        }
        let target = q * total as f64;
        let mut cumulative = 0u64;
        let counts = self.bucket_counts();
        for (i, &c) in counts.iter().enumerate() {
            let next = cumulative + c;
            if (next as f64) >= target && c > 0 {
                let hi = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    return *self.bounds.last().expect("non-empty bounds");
                };
                let lo = if i == 0 { 0.0f64.min(hi) } else { self.bounds[i - 1] };
                let frac = (target - cumulative as f64) / c as f64;
                return lo + frac.clamp(0.0, 1.0) * (hi - lo);
            }
            cumulative = next;
        }
        *self.bounds.last().expect("non-empty bounds")
    }

    /// [`Histogram::quantile`] evaluated at several points — the manifest
    /// export path uses this for the standard p50/p90/p99 triple.
    ///
    /// # Panics
    ///
    /// Panics if any `q` is outside `[0, 1]`.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<f64> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }
}

/// Snapshot of one metric, for reporting and manifests.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary: count, sum, and `(upper_bound, count)` pairs
    /// with the overflow bucket encoded as `f64::INFINITY`.
    Histogram {
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: f64,
        /// Per-bucket `(upper_bound, count)`.
        buckets: Vec<(f64, u64)>,
    },
}

impl MetricValue {
    /// Estimates the `q`-quantile of a [`MetricValue::Histogram`] from
    /// its bucket snapshot, with the same interpolation and saturation
    /// rules as [`Histogram::quantile`]. Returns `None` for other metric
    /// kinds and for empty histograms.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn histogram_quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        let MetricValue::Histogram { count, buckets, .. } = self else {
            return None;
        };
        if *count == 0 || buckets.is_empty() {
            return None;
        }
        let last_finite = buckets.iter().rev().map(|&(le, _)| le).find(|le| le.is_finite())?;
        let target = q * *count as f64;
        let mut cumulative = 0u64;
        for (i, &(le, c)) in buckets.iter().enumerate() {
            let next = cumulative + c;
            if (next as f64) >= target && c > 0 {
                if !le.is_finite() {
                    return Some(last_finite);
                }
                let lo = if i == 0 { 0.0f64.min(le) } else { buckets[i - 1].0 };
                let frac = (target - cumulative as f64) / c as f64;
                return Some(lo + frac.clamp(0.0, 1.0) * (le - lo));
            }
            cumulative = next;
        }
        Some(last_finite)
    }
}

/// A named metric snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Dotted metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: MetricValue,
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A collection of named metrics.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<HashMap<&'static str, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns the counter `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entry =
            metrics.entry(name).or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match entry {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Returns the gauge `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entry =
            metrics.entry(name).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match entry {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Returns the histogram `name`, registering it with `bounds` on
    /// first use (later calls keep the original bounds).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind,
    /// or if `bounds` is empty or not strictly ascending.
    pub fn histogram(&self, name: &'static str, bounds: &[f64]) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entry = metrics
            .entry(name)
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))));
        match entry {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Snapshots every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut out: Vec<MetricSnapshot> = metrics
            .iter()
            .map(|(&name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut buckets: Vec<(f64, u64)> = h
                            .bounds()
                            .iter()
                            .copied()
                            .chain(std::iter::once(f64::INFINITY))
                            .zip(counts)
                            .collect();
                        // Drop a trailing empty overflow bucket for tidier
                        // manifests.
                        if let Some(&(_, 0)) = buckets.last() {
                            buckets.pop();
                        }
                        MetricValue::Histogram { count: h.count(), sum: h.sum(), buckets }
                    }
                };
                MetricSnapshot { name: name.to_string(), value }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

/// The process-wide registry used by the pipeline crates.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Shorthand for `global().counter(name)`.
pub fn counter(name: &'static str) -> Arc<Counter> {
    global().counter(name)
}

/// Shorthand for `global().gauge(name)`.
pub fn gauge(name: &'static str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Shorthand for `global().histogram(name, bounds)`.
pub fn histogram(name: &'static str, bounds: &[f64]) -> Arc<Histogram> {
    global().histogram(name, bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        let c = r.counter("a.b");
        c.inc();
        c.add(9);
        assert_eq!(r.counter("a.b").get(), 10);
    }

    #[test]
    fn concurrent_counter_increments_all_land() {
        let r = Arc::new(Registry::new());
        let c = r.counter("contended");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("incrementer thread panicked");
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_last_write_wins() {
        let r = Registry::new();
        r.gauge("g").set(1.5);
        r.gauge("g").set(-2.5);
        assert_eq!(r.gauge("g").get(), -2.5);
    }

    #[test]
    fn histogram_counts_sums_and_buckets() {
        let r = Registry::new();
        let h = r.histogram("h", &[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.5).abs() < 1e-12);
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 1]);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let h = Histogram::new(&[10.0, 20.0, 30.0]);
        // 10 observations uniform in (0, 10], 10 in (10, 20].
        for i in 0..10 {
            h.observe(0.5 + i as f64);
            h.observe(10.5 + i as f64);
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.5);
        let q75 = h.quantile(0.75);
        assert!((q25 - 5.0).abs() < 1.0, "q25 = {q25}");
        assert!((q50 - 10.0).abs() < 1.0, "q50 = {q50}");
        assert!((q75 - 15.0).abs() < 1.0, "q75 = {q75}");
        assert!(q25 <= q50 && q50 <= q75, "quantiles must be monotone");
        // Overflow saturates at the last bound.
        h.observe(1e9);
        assert_eq!(h.quantile(1.0), 30.0);
        // Empty histogram has no quantile.
        assert!(Histogram::new(&[1.0]).quantile(0.5).is_nan());
    }

    #[test]
    fn concurrent_histogram_observations_all_land() {
        let h = Arc::new(Histogram::new(&[0.5]));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        h.observe(1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("observer thread panicked");
        }
        assert_eq!(h.count(), 20_000);
        assert!((h.sum() - 20_000.0).abs() < 1e-9, "CAS sum lost updates: {}", h.sum());
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let r = Registry::new();
        r.counter("z.count").add(2);
        r.gauge("a.rate").set(3.0);
        r.histogram("m.hist", &[1.0]).observe(0.5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a.rate", "m.hist", "z.count"]);
        assert_eq!(snap[2].value, MetricValue::Counter(2));
        match &snap[1].value {
            MetricValue::Histogram { count, buckets, .. } => {
                assert_eq!(*count, 1);
                assert_eq!(buckets, &[(1.0, 1)]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_quantiles_match_live_histogram() {
        let r = Registry::new();
        let h = r.histogram("q.hist", &[1.0, 2.0, 4.0, 8.0]);
        for i in 0..100 {
            h.observe(0.08 * i as f64);
        }
        let snap = r.snapshot();
        let value = &snap.iter().find(|s| s.name == "q.hist").expect("registered").value;
        for q in [0.5, 0.9, 0.99] {
            let from_snapshot = value.histogram_quantile(q).expect("histogram");
            let live = h.quantile(q);
            assert!(
                (from_snapshot - live).abs() < 1e-9,
                "q{q}: snapshot {from_snapshot} vs live {live}"
            );
        }
        assert_eq!(h.quantiles(&[0.5, 0.9]), vec![h.quantile(0.5), h.quantile(0.9)]);
        // Non-histograms and empty histograms have no quantiles.
        r.counter("q.count").inc();
        let snap = r.snapshot();
        let counter = &snap.iter().find(|s| s.name == "q.count").unwrap().value;
        assert_eq!(counter.histogram_quantile(0.5), None);
        let empty = MetricValue::Histogram { count: 0, sum: 0.0, buckets: vec![] };
        assert_eq!(empty.histogram_quantile(0.5), None);
        // Overflow-heavy distributions saturate at the last finite bound.
        let overflow = MetricValue::Histogram {
            count: 10,
            sum: 1e4,
            buckets: vec![(1.0, 0), (f64::INFINITY, 10)],
        };
        assert_eq!(overflow.histogram_quantile(0.5), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge("same.name");
        r.counter("same.name");
    }
}
