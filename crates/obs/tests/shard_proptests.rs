//! Property tests for the result-shard wire format.
//!
//! A sharded run is only trustworthy if worker output survives the JSON
//! round trip bit-exactly and reassembly is insensitive to shard arrival
//! order — these properties are what make `repro --shards N` bitwise
//! identical to an in-process run.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use udse_obs::{Json, ResultShard, ShardedResults};

/// Finite values across the magnitudes metrics actually span, plus
/// awkward ones (subnormal-adjacent, negative, huge).
fn arbitrary_value(rng: &mut StdRng) -> f64 {
    let magnitude = match rng.gen_range(0u32..5) {
        0 => rng.gen_range(0.0f64..1.0),
        1 => rng.gen_range(0.0f64..100.0),
        2 => rng.gen_range(0.0f64..1e-12),
        3 => rng.gen_range(0.0f64..1e18),
        _ => f64::MIN_POSITIVE,
    };
    if rng.gen::<bool>() {
        -magnitude
    } else {
        magnitude
    }
}

/// One plan's worth of result rows: `total` jobs, each with the same
/// column count (the caller's convention; the format itself is ragged).
fn arbitrary_rows(rng: &mut StdRng, total: usize) -> Vec<Vec<f64>> {
    let columns = rng.gen_range(0usize..4);
    (0..total).map(|_| (0..columns).map(|_| arbitrary_value(rng)).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn shard_serialize_parse_serialize_is_identity(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let total = rng.gen_range(1usize..30);
        let rows = arbitrary_rows(&mut rng, total);
        // A shard holding an arbitrary contiguous slice of the plan.
        let count = rng.gen_range(1usize..5) as u64;
        let index = rng.gen_range(0..count);
        let start = rng.gen_range(0usize..total);
        let end = rng.gen_range(start..=total);
        let shard = ResultShard::new(
            "prop",
            total as u64,
            index,
            count,
            (start..end).map(|id| (id as u64, rows[id].clone())).collect(),
        )
        .expect("valid shard");
        let text = shard.to_json().to_string_pretty();
        let back = ResultShard::parse(&text).expect("canonical shard parses");
        prop_assert_eq!(back.plan_label.as_str(), "prop");
        prop_assert_eq!(back.rows.len(), shard.rows.len());
        for (a, b) in shard.rows.iter().zip(&back.rows) {
            prop_assert_eq!(a.id, b.id);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
            prop_assert_eq!(bits(&a.values), bits(&b.values));
        }
        // Byte identity: canonical serialization is a fixed point.
        prop_assert_eq!(back.to_json().to_string_pretty(), text);
    }

    #[test]
    fn assembly_is_shard_order_insensitive_and_bit_exact(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let total = rng.gen_range(1usize..40);
        let rows = arbitrary_rows(&mut rng, total);
        let count = rng.gen_range(1usize..6).min(total);
        // Contiguous slices exactly like EvalPlan::shard_range.
        let mut shards: Vec<ResultShard> = (0..count)
            .map(|i| {
                let range = (total * i / count)..(total * (i + 1) / count);
                ResultShard::new(
                    "prop",
                    total as u64,
                    i as u64,
                    count as u64,
                    range.map(|id| (id as u64, rows[id].clone())).collect(),
                )
                .expect("valid shard")
            })
            .collect();
        // Arrival order is whatever the filesystem gives us.
        shards.shuffle(&mut rng);
        let mut all = ShardedResults::new();
        for shard in shards {
            // Round-trip each shard through its wire format first.
            let back = ResultShard::parse(&shard.to_json().to_string_pretty()).expect("parses");
            all.push(back).expect("consistent shard");
        }
        let assembled = all.assemble().expect("complete plan");
        prop_assert_eq!(assembled.len(), rows.len());
        for (a, b) in rows.iter().zip(&assembled) {
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
            prop_assert_eq!(bits(a), bits(b));
        }
    }

    #[test]
    fn dropping_any_one_shard_is_detected(seed in 0u64..1_000_000) {
        // The killed-worker property: for any shard count and any victim,
        // assembly refuses and names the missing shard.
        let mut rng = StdRng::seed_from_u64(seed);
        let total = rng.gen_range(2usize..30);
        let count = rng.gen_range(2usize..6).min(total);
        let victim = rng.gen_range(0..count);
        let mut all = ShardedResults::new();
        for i in (0..count).filter(|&i| i != victim) {
            let range = (total * i / count)..(total * (i + 1) / count);
            all.push(
                ResultShard::new(
                    "prop",
                    total as u64,
                    i as u64,
                    count as u64,
                    range.map(|id| (id as u64, vec![0.5])).collect(),
                )
                .expect("valid shard"),
            )
            .expect("consistent shard");
        }
        let err = all.assemble().expect_err("missing shard must refuse");
        prop_assert!(
            err.contains(&format!("{victim}/{count}")),
            "error must name shard {}/{}: {}",
            victim,
            count,
            err
        );
    }
}

#[test]
fn shard_files_parse_back_through_the_generic_json_reader() {
    // The shard document is ordinary manifest-style JSON: generic
    // tooling can read it without the ResultShard type.
    let shard =
        ResultShard::new("t", 2, 0, 1, vec![(0, vec![1.25]), (1, vec![2.5])]).expect("valid");
    let doc = Json::parse(&shard.to_json().to_string_pretty()).expect("generic parse");
    assert_eq!(doc.get("plan_label").and_then(Json::as_str), Some("t"));
    assert_eq!(doc.get("rows").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
}
