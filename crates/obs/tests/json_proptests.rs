//! Property tests for the hand-rolled JSON writer/parser in `obs::json`.
//!
//! Manifests, quality baselines, and Chrome traces all flow through this
//! code, so the writer→parser pair must be lossless for every document
//! the writer can produce, and the parser must *fail cleanly* — never
//! panic — on the truncated files a killed run leaves behind.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udse_obs::Json;

/// Builds an arbitrary `Json` value, biased toward nesting near the root
/// and scalars near the leaves.
fn arbitrary_json(rng: &mut StdRng, depth: u32) -> Json {
    let choices = if depth == 0 { 5 } else { 7 };
    match rng.gen_range(0u32..choices) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen::<bool>()),
        // Cover the full i64 range, including extremes the writer must
        // keep exact (counters, seeds, timestamps).
        2 => Json::Int(rng.gen::<u64>() as i64),
        3 => Json::Float(arbitrary_float(rng)),
        4 => Json::Str(arbitrary_string(rng)),
        5 => {
            let n = rng.gen_range(0usize..5);
            Json::Arr((0..n).map(|_| arbitrary_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0usize..5);
            Json::obj((0..n).map(|i| {
                // Duplicate-free keys: the parser keeps pairs in order,
                // equality on Obj is positional.
                (format!("{}_{i}", arbitrary_string(rng)), arbitrary_json(rng, depth - 1))
            }))
        }
    }
}

/// Large, negative, fractional, and subnormal-adjacent — everything
/// except non-finite values, which the writer deliberately maps to
/// `null` (covered separately below).
fn arbitrary_float(rng: &mut StdRng) -> f64 {
    let magnitude = match rng.gen_range(0u32..4) {
        0 => rng.gen_range(0.0f64..1.0),
        1 => rng.gen_range(0.0f64..1e18),
        2 => rng.gen_range(0.0f64..1e-12),
        _ => rng.gen_range(0.0f64..1e300),
    };
    if rng.gen::<bool>() {
        -magnitude
    } else {
        magnitude
    }
}

/// Strings mixing plain text with every escape class the writer handles:
/// quotes, backslashes, control characters, and non-ASCII.
fn arbitrary_string(rng: &mut StdRng) -> String {
    const POOL: &[char] = &[
        'a',
        'Z',
        '9',
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{8}',
        '\u{c}',
        '\u{1}',
        '\u{1f}',
        ' ',
        'µ',
        '→',
        '±',
        '不',
        '\u{10348}',
    ];
    let n = rng.gen_range(0usize..12);
    (0..n).map(|_| POOL[rng.gen_range(0usize..POOL.len())]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_documents_round_trip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = arbitrary_json(&mut rng, 3);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            let back = Json::parse(&text);
            prop_assert!(back.is_ok(), "failed to parse {text:?}: {:?}", back.err());
            prop_assert_eq!(back.unwrap(), doc.clone());
        }
    }

    #[test]
    fn escape_heavy_strings_round_trip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = arbitrary_string(&mut rng);
        let doc = Json::obj([(s.clone(), Json::str(s.clone()))]);
        let back = Json::parse(&doc.to_string_compact()).expect("escaped string parses");
        prop_assert_eq!(back.get(&s).and_then(Json::as_str), Some(s.as_str()));
    }

    #[test]
    fn numbers_round_trip_exactly(int in 0u64..u64::MAX, seed in 0u64..1_000_000) {
        // Integers survive bit-exact (the Int/Float distinction is the
        // point of the hand-rolled writer)...
        let i = int as i64;
        prop_assert_eq!(Json::parse(&Json::Int(i).to_string_compact()), Ok(Json::Int(i)));
        // ...and finite floats re-parse to the identical bits, still
        // tagged Float even when integral.
        let mut rng = StdRng::seed_from_u64(seed);
        let f = arbitrary_float(&mut rng);
        match Json::parse(&Json::Float(f).to_string_compact()) {
            Ok(Json::Float(back)) => prop_assert_eq!(back.to_bits(), f.to_bits()),
            other => prop_assert!(false, "float {} re-parsed as {:?}", f, other),
        }
    }

    #[test]
    fn resource_sections_round_trip_for_arbitrary_measurements(seed in 0u64..1_000_000) {
        // The manifest v3 `resources` section flows through this same
        // writer/parser; the round trip must hold for any measurement,
        // including "probe unavailable" (None → null) fields.
        use udse_obs::manifest::ResourceTotals;
        let mut rng = StdRng::seed_from_u64(seed);
        // Counters serialize as JSON ints, so stay within i64 range.
        let counter = |rng: &mut StdRng| rng.gen::<u64>() >> 1;
        let totals = ResourceTotals {
            alloc_counting: rng.gen::<bool>(),
            allocs: counter(&mut rng),
            deallocs: counter(&mut rng),
            alloc_bytes: counter(&mut rng),
            peak_bytes: counter(&mut rng),
            peak_rss_kb: rng.gen::<bool>().then(|| counter(&mut rng)),
            cpu_seconds: rng.gen::<bool>().then(|| arbitrary_float(&mut rng).abs()),
        };
        let text = totals.to_json().to_string_compact();
        let parsed = Json::parse(&text).expect("canonical section parses");
        let back = ResourceTotals::from_json(&parsed).expect("object decodes");
        prop_assert_eq!(back, totals);
        // A pre-v3 placeholder (null) reads as "no section", not zeros.
        prop_assert_eq!(ResourceTotals::from_json(&Json::Null), None);
    }

    #[test]
    fn truncated_documents_error_never_panic(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Top-level object, like every document the pipeline writes: any
        // strict prefix of the compact form is incomplete.
        let n = rng.gen_range(1usize..4);
        let doc = Json::obj(
            (0..n).map(|i| (format!("k{i}"), arbitrary_json(&mut rng, 2))),
        );
        let text = doc.to_string_compact();
        // Truncation points land anywhere; back up to a char boundary.
        let mut cut = rng.gen_range(0usize..text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let prefix = &text[..cut];
        // Must return Err — a panic here would abort the test binary.
        prop_assert!(
            Json::parse(prefix).is_err(),
            "truncated document parsed: {prefix:?}"
        );
    }
}

#[test]
fn non_finite_floats_serialize_as_null_by_design() {
    for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let text = Json::obj([("v", Json::Float(v))]).to_string_compact();
        let back = Json::parse(&text).expect("null is valid");
        assert_eq!(back.get("v"), Some(&Json::Null));
    }
}
