//! Property tests for the telemetry sidecar JSONL format.
//!
//! The parent tails sidecars while workers are still writing them, so
//! the format must survive three hazards for arbitrary record contents:
//! the full-document round trip must be an identity, incremental
//! tailing at any chunk boundary must reconstruct exactly the records a
//! one-shot parse sees, and a worker killed mid-write (torn final line)
//! must cost at most that one record.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udse_obs::sidecar::{
    parse_tail, Heartbeat, SidecarDoc, SidecarMeta, SidecarRecord, SpanLine, Summary,
};
use udse_obs::trace::{Phase, TraceEvent};

/// ASCII-only labels: sidecar names come from span paths and plan
/// labels, which the codebase keeps in this alphabet.
fn arbitrary_label(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1usize..20);
    (0..len)
        .map(|_| {
            let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789._-/";
            alphabet[rng.gen_range(0..alphabet.len())] as char
        })
        .collect()
}

fn arbitrary_meta(rng: &mut StdRng) -> SidecarMeta {
    let shard_count = rng.gen_range(1u64..16);
    SidecarMeta {
        pid: rng.gen_range(1u64..1 << 22),
        plan_label: arbitrary_label(rng),
        shard_index: rng.gen_range(0..shard_count),
        shard_count,
        jobs: rng.gen_range(0u64..1 << 20),
        anchor_unix_us: rng.gen_range(-(1i64 << 50)..1 << 50),
    }
}

fn arbitrary_heartbeat(rng: &mut StdRng) -> Heartbeat {
    let total = rng.gen_range(0u64..1 << 20);
    Heartbeat {
        t_us: rng.gen_range(0u64..1 << 50),
        done: rng.gen_range(0..=total),
        total,
        last_job: if rng.gen::<bool>() { Some(rng.gen_range(0u64..1 << 40)) } else { None },
        rss_kb: if rng.gen::<bool>() { Some(rng.gen_range(0u64..1 << 30)) } else { None },
    }
}

fn arbitrary_event(rng: &mut StdRng) -> TraceEvent {
    let phase = if rng.gen::<bool>() { Phase::Complete } else { Phase::Instant };
    TraceEvent {
        name: arbitrary_label(rng),
        cat: if phase == Phase::Complete { "span".into() } else { "instant".into() },
        phase,
        // Instants carry no duration on the wire.
        dur_us: if phase == Phase::Complete { rng.gen_range(0u64..1 << 40) } else { 0 },
        ts_us: rng.gen_range(0u64..1 << 50),
        pid: rng.gen_range(1u64..64),
        tid: rng.gen_range(0u64..64),
    }
}

fn arbitrary_record(rng: &mut StdRng) -> SidecarRecord {
    match rng.gen_range(0u32..5) {
        0 => SidecarRecord::Meta(arbitrary_meta(rng)),
        1 => SidecarRecord::Heartbeat(arbitrary_heartbeat(rng)),
        2 => SidecarRecord::Span(SpanLine {
            path: arbitrary_label(rng),
            count: rng.gen_range(0u64..1 << 40),
            total_us: rng.gen_range(0u64..1 << 50),
            max_us: rng.gen_range(0u64..1 << 50),
        }),
        3 => SidecarRecord::Event(arbitrary_event(rng)),
        _ => SidecarRecord::Summary(arbitrary_summary(rng)),
    }
}

/// Summaries cover both measured and unmeasured resource probes: the
/// round-trip identity property then proves explicit nulls and absent
/// measurements are indistinguishable on the wire.
fn arbitrary_summary(rng: &mut StdRng) -> Summary {
    let opt = |rng: &mut StdRng, hi: u64| -> Option<u64> {
        if rng.gen::<bool>() {
            Some(rng.gen_range(0u64..hi))
        } else {
            None
        }
    };
    Summary {
        done: rng.gen_range(0u64..1 << 40),
        wall_us: rng.gen_range(0u64..1 << 50),
        dropped_events: rng.gen_range(0u64..1 << 30),
        cpu_us: opt(rng, 1 << 50),
        allocs: opt(rng, 1 << 40),
        alloc_bytes: opt(rng, 1 << 50),
        peak_rss_kb: opt(rng, 1 << 30),
        precompute_hits: opt(rng, 1 << 40),
        precompute_misses: opt(rng, 1 << 40),
    }
}

/// A well-formed stream: meta first, then a body of arbitrary records,
/// then a summary — the shape a clean worker writes.
fn arbitrary_stream(rng: &mut StdRng) -> Vec<SidecarRecord> {
    let mut records = vec![SidecarRecord::Meta(arbitrary_meta(rng))];
    let body = rng.gen_range(0usize..30);
    records.extend((0..body).map(|_| arbitrary_record(rng)));
    records.push(SidecarRecord::Summary(Summary { dropped_events: 0, ..arbitrary_summary(rng) }));
    records
}

fn serialize(records: &[SidecarRecord]) -> String {
    let mut text = String::new();
    for r in records {
        text.push_str(&r.to_json().to_string_compact());
        text.push('\n');
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn record_json_round_trip_is_identity(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let record = arbitrary_record(&mut rng);
            let line = record.to_json().to_string_compact();
            let back = SidecarRecord::from_json(
                &udse_obs::Json::parse(&line).expect("canonical line parses"),
            )
            .expect("canonical record decodes");
            prop_assert_eq!(&back, &record);
            // Byte identity: canonical serialization is a fixed point.
            prop_assert_eq!(back.to_json().to_string_compact(), line);
        }
    }

    #[test]
    fn incremental_tailing_matches_one_shot_parse(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let records = arbitrary_stream(&mut rng);
        let text = serialize(&records);
        // Feed the file in arbitrary-size increments, as the polling
        // parent sees it grow on disk.
        let mut seen = Vec::new();
        let mut offset = 0usize;
        let mut visible = 0usize;
        while visible < text.len() {
            visible = (visible + rng.gen_range(1usize..40)).min(text.len());
            let (batch, next) = parse_tail(&text[..visible], offset);
            prop_assert!(next >= offset, "offset must be monotonic");
            prop_assert!(next <= visible);
            seen.extend(batch);
            offset = next;
        }
        // A complete stream is fully consumed.
        prop_assert_eq!(offset, text.len());
        prop_assert_eq!(&seen, &records);
        // Re-polling an unchanged file yields nothing new.
        let (rest, same) = parse_tail(&text, offset);
        prop_assert!(rest.is_empty());
        prop_assert_eq!(same, offset);
    }

    #[test]
    fn any_prefix_parses_and_loses_at_most_the_torn_record(seed in 0u64..1_000_000) {
        // A worker killed mid-write leaves an arbitrary byte prefix of
        // its stream. Whatever the cut point, every record whose line is
        // fully present must survive, the torn line must be reported,
        // and nothing may error. (All content is ASCII, so every byte
        // offset is a char boundary.)
        let mut rng = StdRng::seed_from_u64(seed);
        let records = arbitrary_stream(&mut rng);
        let text = serialize(&records);
        let cut = rng.gen_range(0usize..=text.len());
        let bytes = text.as_bytes();
        // Records fully present in the prefix: one per newline consumed,
        // plus the tail line when the cut lands exactly on its newline.
        let complete = text[..cut].matches('\n').count()
            + usize::from(cut < text.len() && bytes[cut] == b'\n');
        let doc = SidecarDoc::parse(&text[..cut]).expect("a prefix is never corruption");
        let reference =
            SidecarDoc::parse(&serialize(&records[..complete])).expect("clean prefix parses");
        prop_assert_eq!(&doc.meta, &reference.meta);
        prop_assert_eq!(&doc.heartbeats, &reference.heartbeats);
        prop_assert_eq!(&doc.spans, &reference.spans);
        prop_assert_eq!(&doc.events, &reference.events);
        prop_assert_eq!(&doc.summary, &reference.summary);
        // A nonempty partial tail (the record being written) is reported
        // as truncated, not silently dropped.
        let torn = cut > 0 && cut < text.len() && bytes[cut - 1] != b'\n' && bytes[cut] != b'\n';
        if torn {
            prop_assert!(doc.problems.iter().any(|p| p.contains("truncated")),
                "problems: {:?}", doc.problems);
        }
    }
}
