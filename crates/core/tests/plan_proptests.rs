//! Property tests for the serializable evaluation-plan layer.
//!
//! `repro --shards` hands these documents to worker processes, so two
//! properties carry the whole determinism story: the JSON round trip
//! must be the identity (same jobs, same sim spec, same bytes), and the
//! shard slices must partition the plan's job IDs exactly — every job in
//! exactly one shard, in order, for any shard count.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udse_core::plan::{EvalPlan, SimSpec};
use udse_core::space::DesignSpace;
use udse_trace::Benchmark;

/// A random plan mixing points from both design spaces (their depth
/// lists overlap, which is exactly what the fo4 disambiguation must
/// survive) under a label drawn from the characters labels really use.
fn arbitrary_plan(rng: &mut StdRng) -> EvalPlan {
    const LABEL_POOL: &[char] = &['a', 'z', 'A', '0', '.', '_', '-', ' ', '/', 'µ'];
    let label: String = (0..rng.gen_range(1usize..12))
        .map(|_| LABEL_POOL[rng.gen_range(0..LABEL_POOL.len())])
        .collect();
    let n = rng.gen_range(0usize..40);
    let jobs = (0..n)
        .map(|_| {
            let b = Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())];
            let space =
                if rng.gen::<bool>() { DesignSpace::paper() } else { DesignSpace::exploration() };
            let p = space.decode(rng.gen_range(0..space.len())).expect("index in range");
            (b, p)
        })
        .collect();
    EvalPlan::from_jobs(&label, jobs)
}

fn arbitrary_spec(rng: &mut StdRng) -> SimSpec {
    SimSpec { trace_len: rng.gen_range(100usize..1_000_000), seed: rng.gen::<u64>() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialize_parse_serialize_is_identity(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = arbitrary_plan(&mut rng);
        let spec = arbitrary_spec(&mut rng);
        let text = plan.to_json(&spec).to_string_pretty();
        let (back, back_spec) = EvalPlan::parse(&text).expect("canonical plan parses");
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(back_spec, spec);
        // Byte identity: canonical serialization is a fixed point.
        prop_assert_eq!(back.to_json(&back_spec).to_string_pretty(), text);
    }

    #[test]
    fn shard_slices_partition_the_plan_exactly(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = arbitrary_plan(&mut rng);
        let count = rng.gen_range(1usize..12);
        // Concatenating the slices in shard order reproduces the job
        // list: no job missing, duplicated, or reordered.
        let mut rebuilt = Vec::with_capacity(plan.len());
        let mut next_id = 0usize;
        for index in 0..count {
            let range = plan.shard_range(index, count);
            prop_assert_eq!(range.start, next_id);
            next_id = range.end;
            rebuilt.extend_from_slice(plan.shard_jobs(index, count));
        }
        prop_assert_eq!(next_id, plan.len());
        prop_assert_eq!(rebuilt.as_slice(), plan.jobs());
        // Balance: slice sizes differ by at most one.
        let sizes: Vec<usize> =
            (0..count).map(|i| plan.shard_range(i, count).len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "unbalanced shards: {:?}", sizes);
    }

    #[test]
    fn sharded_round_trip_reassembles_the_job_list(seed in 0u64..1_000_000) {
        // The full worker protocol in miniature: serialize the plan, let
        // each "worker" parse it and slice its shard, and check the
        // slices reassemble (by their stable IDs) into the original.
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = arbitrary_plan(&mut rng);
        let spec = arbitrary_spec(&mut rng);
        let text = plan.to_json(&spec).to_string_pretty();
        let count = rng.gen_range(1usize..6);
        let mut slots = vec![None; plan.len()];
        for index in 0..count {
            let (worker_view, _) = EvalPlan::parse(&text).expect("worker parses the plan");
            let range = worker_view.shard_range(index, count);
            for (id, job) in range.clone().zip(worker_view.shard_jobs(index, count)) {
                prop_assert!(slots[id].is_none(), "job {} claimed twice", id);
                slots[id] = Some(*job);
            }
        }
        for (id, slot) in slots.iter().enumerate() {
            prop_assert_eq!(slot.as_ref(), Some(&plan.jobs()[id]));
        }
    }
}
