//! Allocation-free guarantee on the fused sweep's inner loop.
//!
//! The `characterize_all` grid walk predicts all nine benchmarks per
//! visited design by resolving grid indices once and reading compiled
//! tables (`grid_indices` + `predict_metrics_at`). The per-design work
//! must never touch the heap — at 262,500 designs x 9 benchmarks, even
//! one small allocation per design would dominate the sweep. This test
//! pins that with the counting allocator: after a warm-up pass, the
//! exact inner-loop sequence runs under `assert_no_alloc`, which panics
//! on the first heap allocation on the asserting thread.

use udse_core::model::PaperModels;
use udse_core::oracle::{Metrics, Oracle};
use udse_core::space::{DesignPoint, DesignSpace};
use udse_trace::Benchmark;

// Integration tests are separate binaries: each one that measures
// allocations must install the counting allocator itself.
#[global_allocator]
static ALLOC: udse_obs::CountingAlloc = udse_obs::CountingAlloc::new();

/// Smooth positive response surface so training is fast and both
/// transforms stay in-domain; the allocation property does not depend
/// on fit quality.
struct SmoothOracle;

impl Oracle for SmoothOracle {
    fn evaluate(&self, _b: Benchmark, p: &DesignPoint) -> Metrics {
        let v = p.predictors();
        Metrics {
            bips: (8.0 / v[0]) * (1.0 + 0.2 * v[1].ln()) * (1.0 + 0.002 * v[2]) + 0.05 * v[6],
            watts: 4.0 + 40.0 / v[0] + 1.2 * v[1] + 0.5 * v[6] + 0.01 * v[2] + 0.3 * v[4],
        }
    }
}

#[test]
fn fused_sweep_inner_loop_is_allocation_free_after_warmup() {
    let space = DesignSpace::exploration();
    let samples = DesignSpace::paper().sample_uar(300, 2007);
    let models =
        PaperModels::train(&SmoothOracle, Benchmark::Gzip, &samples).expect("smooth fit succeeds");
    let compiled = models.compile(&space);
    // The walk's decode bookkeeping is outside the per-design claim:
    // points are precomputed, as `pool::map_chunks` ranges are in the
    // real sweep.
    let points: Vec<DesignPoint> = space.sample_uar(4_096, 99);

    // Warm-up pass (first touches of lazily-faulted pages, etc.), and
    // the reference sum for the post-assert equality check.
    let sweep = |acc_init: f64| {
        let mut acc = acc_init;
        for p in &points {
            let idx = compiled.grid_indices(p);
            let m = compiled.predict_metrics_at(&idx);
            acc += m.bips + m.watts;
        }
        acc
    };
    let expected = sweep(0.0);
    let again =
        udse_obs::alloc::assert_no_alloc("fused characterize_all inner loop", || sweep(0.0));
    assert_eq!(again.to_bits(), expected.to_bits(), "repeat sweep must be deterministic");
    assert!(expected.is_finite());
}
