//! Allocation-free guarantee on the fused sweep's inner loop.
//!
//! The study sweeps drive a [`udse_core::model::GridWalker`] over stacked
//! [`udse_core::model::SuiteLanes`]: per visited design the walker
//! refreshes incremental prefix sums and predicts every stacked pair. The
//! per-design work must never touch the heap — at 262,500 designs x 9
//! benchmarks, even one small allocation per design would dominate the
//! sweep. This test pins that with the counting allocator: walkers
//! allocate their scratch at construction, then the whole walk (and the
//! raw batch kernel) runs under `assert_no_alloc`, which panics on the
//! first heap allocation on the asserting thread.

use udse_core::model::PaperModels;
use udse_core::oracle::{Metrics, Oracle};
use udse_core::space::{DesignPoint, DesignSpace};
use udse_trace::Benchmark;

// Integration tests are separate binaries: each one that measures
// allocations must install the counting allocator itself.
#[global_allocator]
static ALLOC: udse_obs::CountingAlloc = udse_obs::CountingAlloc::new();

/// Smooth positive response surface so training is fast and both
/// transforms stay in-domain; the allocation property does not depend
/// on fit quality.
struct SmoothOracle;

impl Oracle for SmoothOracle {
    fn evaluate(&self, _b: Benchmark, p: &DesignPoint) -> Metrics {
        let v = p.predictors();
        Metrics {
            bips: (8.0 / v[0]) * (1.0 + 0.2 * v[1].ln()) * (1.0 + 0.002 * v[2]) + 0.05 * v[6],
            watts: 4.0 + 40.0 / v[0] + 1.2 * v[1] + 0.5 * v[6] + 0.01 * v[2] + 0.3 * v[4],
        }
    }
}

fn compiled_pair(space: &DesignSpace) -> udse_core::model::CompiledPaperModels {
    let samples = DesignSpace::paper().sample_uar(300, 2007);
    let models =
        PaperModels::train(&SmoothOracle, Benchmark::Gzip, &samples).expect("smooth fit succeeds");
    models.compile(space)
}

#[test]
fn grid_walker_walk_is_allocation_free() {
    let space = DesignSpace::exploration();
    let compiled = compiled_pair(&space);
    let lanes = compiled.lanes();

    // Natural-order walk over a mid-space window. The walker owns its
    // prefix/metrics scratch, so everything past construction is pure
    // arithmetic — exactly what each `pool::map_chunks` chunk runs.
    let mut walker = lanes.walker(&space, 1);
    let sweep = |walker: &mut udse_core::model::GridWalker| {
        let mut acc = 0.0f64;
        walker.walk(100_000..104_096, |_, m| acc += m[0].bips + m[0].watts);
        acc
    };
    let expected = sweep(&mut walker);
    let again =
        udse_obs::alloc::assert_no_alloc("grid walker natural-order walk", || sweep(&mut walker));
    assert_eq!(again.to_bits(), expected.to_bits(), "repeat walk must be deterministic");
    assert!(expected.is_finite());

    // Strided walk (the quick-mode coprime subset) — same guarantee.
    let mut strided = lanes.walker(&space, 97);
    let strided_sweep = |walker: &mut udse_core::model::GridWalker| {
        let mut acc = 0.0f64;
        walker.walk(0..2_048, |_, m| acc += m[0].bips + m[0].watts);
        acc
    };
    let expected = strided_sweep(&mut strided);
    let again = udse_obs::alloc::assert_no_alloc("grid walker strided walk", || {
        strided_sweep(&mut strided)
    });
    assert_eq!(again.to_bits(), expected.to_bits(), "repeat strided walk must be deterministic");
}

#[test]
fn stacked_batch_kernel_is_allocation_free() {
    let space = DesignSpace::exploration();
    let compiled = compiled_pair(&space);
    let lanes = compiled.lanes();

    // Grid-index rows precomputed, as the real batch callers do.
    let points: Vec<DesignPoint> = space.sample_uar(4_096, 99);
    let idx_rows: Vec<usize> = points.iter().flat_map(|p| compiled.grid_indices(p)).collect();
    let mut out = vec![Metrics { bips: 0.0, watts: 0.0 }; points.len() * lanes.pairs()];

    lanes.predict_metrics_batch(&idx_rows, &mut out);
    let expected: f64 = out.iter().map(|m| m.bips + m.watts).sum();
    udse_obs::alloc::assert_no_alloc("stacked batch prediction kernel", || {
        lanes.predict_metrics_batch(&idx_rows, &mut out)
    });
    let again: f64 = out.iter().map(|m| m.bips + m.watts).sum();
    assert_eq!(again.to_bits(), expected.to_bits(), "repeat batch must be deterministic");
    assert!(expected.is_finite());
}
