//! Exhaustive bitwise equivalence of the decomposed oracle on the fig1
//! quick workload.
//!
//! The cycle-oracle decomposition (trace preflight + memoized outcome
//! streams + streamed engine) promises that every `SimResult` is
//! bitwise-identical to the direct `run_with_warmup` path. This test
//! proves it exhaustively over exactly the job population the quick
//! fig1 run simulates: the 200-sample training plan crossed with all
//! nine benchmarks plus the 25-sample validation set — every design the
//! study touches, evaluated through the memoizing `SimOracle` batch
//! path and re-simulated directly, bit for bit. (Trace length is
//! shortened from the study's 200k so the direct re-simulation stays
//! fast in debug builds; the full-scale identity is held by the BENCH
//! quality baseline, which is bit-exact against the pre-decomposition
//! seed.)

use udse_core::oracle::{Metrics, Oracle, SimOracle};
use udse_core::space::{DesignPoint, DesignSpace};
use udse_core::studies::{StudyConfig, TrainedSuite};
use udse_sim::Simulator;
use udse_trace::Benchmark;

#[test]
fn fig1_quick_jobs_are_bitwise_identical_to_direct_simulation() {
    let config = StudyConfig::quick();
    let oracle = SimOracle::with_trace_len(2_000);

    // The exact job list fig1 runs: training plan (benchmarks-major
    // cross product), then the validation sample across the suite.
    let plan = TrainedSuite::training_plan(&config);
    let mut jobs: Vec<(Benchmark, DesignPoint)> = plan.jobs().to_vec();
    let validation =
        DesignSpace::paper().sample_uar(config.validation_samples, config.seed ^ 0xA11D);
    for p in &validation {
        for &b in Benchmark::ALL.iter() {
            jobs.push((b, *p));
        }
    }
    assert_eq!(jobs.len(), 9 * (config.train_samples + config.validation_samples));

    let streamed = oracle.evaluate_many(&jobs);

    // Sub-config collapse is the whole point: thousands of jobs must
    // fold onto a small set of resolved streams.
    let lookups = oracle.precompute_hits() + oracle.precompute_misses();
    assert_eq!(lookups, 2 * jobs.len() as u64);
    // At most 125 cache triples + 1 BHT config exist per benchmark, so
    // the distinct-key population is bounded by 9 * 126 = 1134 however
    // many jobs run; everything else must hit the memo.
    assert!(
        oracle.precompute_misses() <= 9 * 126,
        "more misses than distinct sub-keys exist: {}",
        oracle.precompute_misses()
    );
    assert!(
        oracle.precompute_hits() > 3 * oracle.precompute_misses(),
        "expected heavy sub-config reuse, got {} hits / {} misses",
        oracle.precompute_hits(),
        oracle.precompute_misses()
    );

    for ((b, p), got) in jobs.iter().zip(&streamed) {
        let direct = Simulator::new(p.to_machine_config())
            .run_with_warmup(&oracle.trace(*b), oracle.warmup_insts());
        assert_eq!(
            *got,
            Metrics { bips: direct.bips, watts: direct.watts },
            "divergence for {b:?} at {p:?}"
        );
    }
}
