//! Exhaustive compiled-vs-naive equivalence over the ENTIRE exploration
//! grid: every one of the 262,500 designs, for both the sqrt-bips
//! performance model and the log-watts power model. The acceptance bound
//! is ≤1e-12 relative error — the compiled lowering only *regroups* the
//! same floating-point terms (per-variable partial sums instead of
//! per-term accumulation), so the drift is a few ulps, orders of
//! magnitude inside the bound.

use udse_core::model::PaperModels;
use udse_core::oracle::{Metrics, Oracle};
use udse_core::space::{DesignPoint, DesignSpace};
use udse_trace::Benchmark;

/// Smooth positive response surface so training is fast and both
/// transforms stay in-domain; the equivalence property does not depend
/// on fit quality.
struct SmoothOracle;

impl Oracle for SmoothOracle {
    fn evaluate(&self, _b: Benchmark, p: &DesignPoint) -> Metrics {
        let v = p.predictors();
        Metrics {
            bips: (8.0 / v[0]) * (1.0 + 0.2 * v[1].ln()) * (1.0 + 0.002 * v[2]) + 0.05 * v[6],
            watts: 4.0 + 40.0 / v[0] + 1.2 * v[1] + 0.5 * v[6] + 0.01 * v[2] + 0.3 * v[4],
        }
    }
}

#[test]
fn compiled_matches_naive_over_the_entire_exploration_grid() {
    let space = DesignSpace::exploration();
    let samples = DesignSpace::paper().sample_uar(500, 2007);
    let models =
        PaperModels::train(&SmoothOracle, Benchmark::Gzip, &samples).expect("smooth fit succeeds");
    let compiled = models.compile(&space);

    let mut max_rel_bips = 0.0f64;
    let mut max_rel_watts = 0.0f64;
    let mut visited = 0u64;
    for p in space.iter() {
        let row = p.predictors();
        let naive_bips = models.performance_model().predict_row(&row).expect("valid row");
        let fast_bips = compiled.predict_bips(&p);
        max_rel_bips = max_rel_bips.max((fast_bips - naive_bips).abs() / naive_bips.abs());
        let naive_watts = models.power_model().predict_row(&row).expect("valid row");
        let fast_watts = compiled.predict_watts(&p);
        max_rel_watts = max_rel_watts.max((fast_watts - naive_watts).abs() / naive_watts.abs());
        visited += 1;
    }
    assert_eq!(visited, space.len(), "must cover the whole grid");
    assert!(max_rel_bips <= 1e-12, "sqrt-bips max relative error {max_rel_bips:e} > 1e-12");
    assert!(max_rel_watts <= 1e-12, "log-watts max relative error {max_rel_watts:e} > 1e-12");
}

#[test]
fn grid_walker_matches_naive_over_the_entire_exploration_grid() {
    // The incremental grid walker (the study sweeps' actual inner loop)
    // must stay inside the same ≤1e-12 bound against per-row spline-basis
    // evaluation at every one of the 262,500 designs — and bitwise equal
    // to the pointwise compiled path it regroups nothing relative to.
    let space = DesignSpace::exploration();
    let samples = DesignSpace::paper().sample_uar(500, 2007);
    let models =
        PaperModels::train(&SmoothOracle, Benchmark::Gzip, &samples).expect("smooth fit succeeds");
    let compiled = models.compile(&space);
    let lanes = compiled.lanes();
    let mut walker = lanes.walker(&space, 1);

    let mut max_rel_bips = 0.0f64;
    let mut max_rel_watts = 0.0f64;
    let mut visited = 0u64;
    walker.walk(0..space.len(), |p, m| {
        assert_eq!(m[0].bips.to_bits(), compiled.predict_bips(&p).to_bits());
        assert_eq!(m[0].watts.to_bits(), compiled.predict_watts(&p).to_bits());
        let row = p.predictors();
        let naive_bips = models.performance_model().predict_row(&row).expect("valid row");
        max_rel_bips = max_rel_bips.max((m[0].bips - naive_bips).abs() / naive_bips.abs());
        let naive_watts = models.power_model().predict_row(&row).expect("valid row");
        max_rel_watts = max_rel_watts.max((m[0].watts - naive_watts).abs() / naive_watts.abs());
        visited += 1;
    });
    assert_eq!(visited, space.len(), "must cover the whole grid");
    assert!(max_rel_bips <= 1e-12, "walker sqrt-bips max relative error {max_rel_bips:e} > 1e-12");
    assert!(
        max_rel_watts <= 1e-12,
        "walker log-watts max relative error {max_rel_watts:e} > 1e-12"
    );
}

#[test]
fn compiled_row_and_index_paths_are_bitwise_identical() {
    // The grid-index path (used by the study sweeps) and the row path
    // (exact-equality lookup of predictor values) must agree to the bit:
    // both read the same tables and multiply the same level values.
    let space = DesignSpace::exploration();
    let samples = DesignSpace::paper().sample_uar(400, 11);
    let models =
        PaperModels::train(&SmoothOracle, Benchmark::Mcf, &samples).expect("smooth fit succeeds");
    let compiled = models.compile(&space);
    for p in space.sample_uar(2_000, 99) {
        let row = p.predictors();
        let via_row = compiled.performance_model().predict_row(&row).expect("on grid");
        assert_eq!(via_row.to_bits(), compiled.predict_bips(&p).to_bits());
        let via_row = compiled.power_model().predict_row(&row).expect("on grid");
        assert_eq!(via_row.to_bits(), compiled.predict_watts(&p).to_bits());
    }
}
