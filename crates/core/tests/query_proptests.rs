//! Property tests for the query wire format.
//!
//! `repro query` and any future service front-end exchange these
//! documents, so the canonical-bytes discipline must hold for every
//! query and result shape: serialize → parse → serialize is the
//! identity on both the value and the bytes, and documents with fields
//! the schema does not know are rejected rather than silently dropped
//! (a misspelled constraint must not become an unconstrained scan).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udse_core::oracle::Metrics;
use udse_core::query::{Axis, Constraint, OptimumEntry, PredictedPoint, Query, QueryResult};
use udse_core::space::{DesignPoint, DesignSpace};
use udse_trace::Benchmark;

fn arbitrary_point(rng: &mut StdRng) -> DesignPoint {
    // Mix both spaces: their depth lists overlap, which is exactly what
    // the `fo4` disambiguation field must survive.
    let space = if rng.gen::<bool>() { DesignSpace::paper() } else { DesignSpace::exploration() };
    space.decode(rng.gen_range(0..space.len())).expect("index in range")
}

fn arbitrary_bench(rng: &mut StdRng) -> Benchmark {
    Benchmark::ALL[rng.gen_range(0..Benchmark::ALL.len())]
}

/// A bound value that sometimes lands on an integer, exercising the
/// canonical writer's trailing-`.0` form alongside fractional floats.
fn arbitrary_bound(rng: &mut StdRng) -> f64 {
    if rng.gen::<bool>() {
        rng.gen_range(0..512) as f64
    } else {
        rng.gen_range(0.0..512.0)
    }
}

fn arbitrary_constraints(rng: &mut StdRng) -> Vec<Constraint> {
    (0..rng.gen_range(0usize..4))
        .map(|_| {
            let axis = Axis::ALL[rng.gen_range(0..Axis::ALL.len())];
            match rng.gen_range(0u8..3) {
                0 => Constraint::at_most(axis, arbitrary_bound(rng)),
                1 => Constraint::at_least(axis, arbitrary_bound(rng)),
                _ => Constraint::exactly(axis, arbitrary_bound(rng)),
            }
        })
        .collect()
}

fn arbitrary_query(rng: &mut StdRng) -> Query {
    match rng.gen_range(0u8..7) {
        0 => Query::point(arbitrary_bench(rng), arbitrary_point(rng)),
        1 => {
            let bench = rng.gen::<bool>().then(|| arbitrary_bench(rng));
            Query::optimum(bench, arbitrary_constraints(rng), rng.gen_range(1usize..2000))
        }
        2 => {
            let refs = (0..9).map(|_| rng.gen_range(0.001..10.0)).collect();
            Query::suite_optimum(refs, arbitrary_constraints(rng), rng.gen_range(1usize..2000))
        }
        3 => Query::pareto(
            arbitrary_bench(rng),
            arbitrary_constraints(rng),
            rng.gen_range(1usize..2000),
            rng.gen_range(1usize..200),
        ),
        4 => Query::top_k(
            arbitrary_bench(rng),
            arbitrary_constraints(rng),
            rng.gen_range(1usize..2000),
            rng.gen_range(1usize..50),
        ),
        5 => Query::what_if(arbitrary_bench(rng), arbitrary_point(rng), arbitrary_point(rng)),
        _ => Query::axis_sweep(
            arbitrary_bench(rng),
            arbitrary_point(rng),
            Axis::ALL[rng.gen_range(0..Axis::ALL.len())],
        ),
    }
}

fn arbitrary_metrics(rng: &mut StdRng) -> Metrics {
    Metrics { bips: rng.gen_range(0.01..8.0), watts: rng.gen_range(1.0..200.0) }
}

fn arbitrary_row(rng: &mut StdRng) -> PredictedPoint {
    PredictedPoint { point: arbitrary_point(rng), predicted: arbitrary_metrics(rng) }
}

fn arbitrary_rows(rng: &mut StdRng) -> Vec<PredictedPoint> {
    (0..rng.gen_range(0usize..12)).map(|_| arbitrary_row(rng)).collect()
}

fn arbitrary_result(rng: &mut StdRng) -> QueryResult {
    match rng.gen_range(0u8..6) {
        0 => QueryResult::Point { benchmark: arbitrary_bench(rng), row: arbitrary_row(rng) },
        1 => {
            let aggregate = rng.gen::<bool>();
            let entries = (0..rng.gen_range(1usize..10))
                .map(|_| OptimumEntry {
                    benchmark: (!aggregate).then(|| arbitrary_bench(rng)),
                    point: arbitrary_point(rng),
                    predicted: (!aggregate).then(|| arbitrary_metrics(rng)),
                    score: rng.gen_range(0.0001..100.0),
                })
                .collect();
            QueryResult::Optima { entries }
        }
        2 => {
            QueryResult::Frontier { benchmark: arbitrary_bench(rng), designs: arbitrary_rows(rng) }
        }
        3 => QueryResult::Ranking { benchmark: arbitrary_bench(rng), entries: arbitrary_rows(rng) },
        4 => QueryResult::Delta {
            benchmark: arbitrary_bench(rng),
            base: arbitrary_row(rng),
            alternative: arbitrary_row(rng),
        },
        _ => QueryResult::Sweep {
            benchmark: arbitrary_bench(rng),
            axis: Axis::ALL[rng.gen_range(0..Axis::ALL.len())],
            rows: arbitrary_rows(rng),
        },
    }
}

/// Splices an unknown field into the top-level object of a canonical
/// document, preserving everything else.
fn with_unknown_field(text: &str) -> String {
    let body = text.trim_start().strip_prefix('{').expect("canonical doc is an object");
    format!("{{\"bogus_field\": 1,{body}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn query_serialize_parse_serialize_is_identity(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let query = arbitrary_query(&mut rng);
        let text = query.to_json().to_string_compact();
        let back = Query::parse(&text).expect("canonical query parses");
        prop_assert_eq!(&back, &query);
        // Byte identity: canonical serialization is a fixed point, for
        // both the compact wire form and the pretty CLI form.
        prop_assert_eq!(back.to_json().to_string_compact(), text);
        let pretty = query.to_json().to_string_pretty();
        let back_pretty = Query::parse(&pretty).expect("pretty query parses");
        prop_assert_eq!(back_pretty.to_json().to_string_pretty(), pretty);
    }

    #[test]
    fn result_serialize_parse_serialize_is_identity(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let result = arbitrary_result(&mut rng);
        let text = result.to_json().to_string_pretty();
        let back = QueryResult::parse(&text).expect("canonical result parses");
        prop_assert_eq!(&back, &result);
        prop_assert_eq!(back.to_json().to_string_pretty(), text);
    }

    #[test]
    fn unknown_fields_are_rejected_not_ignored(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let query_doc = with_unknown_field(&arbitrary_query(&mut rng).to_json().to_string_compact());
        let err = Query::parse(&query_doc).expect_err("unknown field must fail");
        prop_assert!(err.contains("bogus_field"), "error does not name the field: {}", err);
        let result_doc =
            with_unknown_field(&arbitrary_result(&mut rng).to_json().to_string_pretty());
        let err = QueryResult::parse(&result_doc).expect_err("unknown field must fail");
        prop_assert!(err.contains("bogus_field"), "error does not name the field: {}", err);
    }
}
