//! The paper's Table 1 design space.
//!
//! Seven parameter *groups* vary jointly: depth, width (decode bandwidth
//! with load/store queue, store queue, and functional-unit counts),
//! physical registers (GPR/FPR/SPR together), reservation stations
//! (BR/FX/FP together), and the three cache sizes. The Cartesian product
//! of the group cardinalities (10 x 3 x 10 x 10 x 5 x 5 x 5) gives the
//! 375,000-point sampling space; restricting depth to 12–30 FO4 gives
//! the 262,500-point exploration space of §3.5.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udse_sim::MachineConfig;

/// Depth values (FO4 per stage) in the full sampling space: 9::3::36.
pub const DEPTH_VALUES: [u32; 10] = [9, 12, 15, 18, 21, 24, 27, 30, 33, 36];
/// Depth values in the exploration space: 12::3::30 (§3.5 restricts the
/// studied space so predictions never extrapolate in depth).
pub const EXPLORATION_DEPTH_VALUES: [u32; 7] = [12, 15, 18, 21, 24, 27, 30];
/// Width group: (decode width, LSQ entries, store-queue entries, units
/// per class), varied jointly per Table 1.
pub const WIDTH_VALUES: [(u32, u32, u32, u32); 3] =
    [(2, 15, 14, 1), (4, 30, 28, 2), (8, 45, 42, 4)];
/// Cardinality of the register group (GPR 40::10::130 etc.).
pub const REGS_LEVELS: u8 = 10;
/// Cardinality of the reservation-station group (BR 6::1::15 etc.).
pub const RESV_LEVELS: u8 = 10;
/// I-L1 sizes in KB: 16::2x::256.
pub const IL1_VALUES: [u32; 5] = [16, 32, 64, 128, 256];
/// D-L1 sizes in KB: 8::2x::128.
pub const DL1_VALUES: [u32; 5] = [8, 16, 32, 64, 128];
/// L2 sizes in KB: 0.25::2x::4 MB.
pub const L2_VALUES: [u32; 5] = [256, 512, 1024, 2048, 4096];

/// One point of the design space, stored as indices into the seven
/// jointly-varied groups of Table 1.
///
/// # Examples
///
/// ```
/// use udse_core::space::{DesignPoint, DesignSpace};
///
/// let space = DesignSpace::paper();
/// let p = space.decode(0).unwrap();
/// assert_eq!(p.fo4(), 9);
/// assert_eq!(p.decode_width(), 2);
/// assert_eq!(p.gpr(), 40);
/// let cfg = p.to_machine_config();
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DesignPoint {
    /// Index into the space's depth value list.
    pub depth_idx: u8,
    /// Index into [`WIDTH_VALUES`].
    pub width_idx: u8,
    /// Index 0..10 into the register group.
    pub regs_idx: u8,
    /// Index 0..10 into the reservation-station group.
    pub resv_idx: u8,
    /// Index into [`IL1_VALUES`].
    pub il1_idx: u8,
    /// Index into [`DL1_VALUES`].
    pub dl1_idx: u8,
    /// Index into [`L2_VALUES`].
    pub l2_idx: u8,
    /// Depth list this point's `depth_idx` refers to (paper vs
    /// exploration); stored as the FO4 value directly to keep the point
    /// self-describing.
    fo4: u32,
}

impl DesignPoint {
    /// Pipeline depth in FO4 delays per stage.
    pub fn fo4(&self) -> u32 {
        self.fo4
    }

    /// Decode bandwidth in instructions per cycle.
    pub fn decode_width(&self) -> u32 {
        WIDTH_VALUES[self.width_idx as usize].0
    }

    /// Load/store queue entries (tied to width).
    pub fn lsq_entries(&self) -> u32 {
        WIDTH_VALUES[self.width_idx as usize].1
    }

    /// Store queue entries (tied to width).
    pub fn store_queue_entries(&self) -> u32 {
        WIDTH_VALUES[self.width_idx as usize].2
    }

    /// Functional units per class (tied to width).
    pub fn units_per_class(&self) -> u32 {
        WIDTH_VALUES[self.width_idx as usize].3
    }

    /// General-purpose physical registers: 40::10::130.
    pub fn gpr(&self) -> u32 {
        40 + 10 * self.regs_idx as u32
    }

    /// Floating-point physical registers: 40::8::112.
    pub fn fpr(&self) -> u32 {
        40 + 8 * self.regs_idx as u32
    }

    /// Special-purpose physical registers: 42::6::96.
    pub fn spr(&self) -> u32 {
        42 + 6 * self.regs_idx as u32
    }

    /// Branch reservation stations: 6::1::15.
    pub fn resv_br(&self) -> u32 {
        6 + self.resv_idx as u32
    }

    /// Fixed-point reservation stations: 10::2::28.
    pub fn resv_fx(&self) -> u32 {
        10 + 2 * self.resv_idx as u32
    }

    /// Floating-point reservation stations: 5::1::14.
    pub fn resv_fp(&self) -> u32 {
        5 + self.resv_idx as u32
    }

    /// I-L1 cache size in KB.
    pub fn il1_kb(&self) -> u32 {
        IL1_VALUES[self.il1_idx as usize]
    }

    /// D-L1 cache size in KB.
    pub fn dl1_kb(&self) -> u32 {
        DL1_VALUES[self.dl1_idx as usize]
    }

    /// L2 cache size in KB.
    pub fn l2_kb(&self) -> u32 {
        L2_VALUES[self.l2_idx as usize]
    }

    /// Materializes the full simulator configuration for this point,
    /// inheriting the Table 3 structural constants (associativities,
    /// predictor, ROB).
    pub fn to_machine_config(&self) -> MachineConfig {
        let mut cfg = MachineConfig::power4_baseline();
        cfg.fo4_per_stage = self.fo4();
        cfg.decode_width = self.decode_width();
        cfg.lsq_entries = self.lsq_entries();
        cfg.store_queue_entries = self.store_queue_entries();
        cfg.units_per_class = self.units_per_class();
        cfg.gpr = self.gpr();
        cfg.fpr = self.fpr();
        cfg.spr = self.spr();
        cfg.resv_br = self.resv_br();
        cfg.resv_fx = self.resv_fx();
        cfg.resv_fp = self.resv_fp();
        cfg.il1_kb = self.il1_kb();
        cfg.dl1_kb = self.dl1_kb();
        cfg.l2_kb = self.l2_kb();
        cfg
    }

    /// Names of the regression predictor columns, matching
    /// [`DesignPoint::predictors`].
    pub fn predictor_names() -> Vec<String> {
        ["depth_fo4", "width", "gpr", "resv_fx", "log2_il1", "log2_dl1", "log2_l2"]
            .into_iter()
            .map(String::from)
            .collect()
    }

    /// The regression predictor vector for this point. One representative
    /// per jointly-varied group (the other members are perfectly
    /// collinear); cache sizes enter on a log2 scale.
    pub fn predictors(&self) -> Vec<f64> {
        vec![
            self.fo4() as f64,
            self.decode_width() as f64,
            self.gpr() as f64,
            self.resv_fx() as f64,
            (self.il1_kb() as f64).log2(),
            (self.dl1_kb() as f64).log2(),
            (self.l2_kb() as f64).log2(),
        ]
    }

    /// The raw design-parameter vector used for K-means clustering in the
    /// heterogeneity study (one representative per group, linear scale).
    pub fn cluster_vector(&self) -> Vec<f64> {
        vec![
            self.fo4() as f64,
            self.decode_width() as f64,
            self.gpr() as f64,
            self.resv_fx() as f64,
            (self.il1_kb() as f64).log2(),
            (self.dl1_kb() as f64).log2(),
            (self.l2_kb() as f64).log2(),
        ]
    }
}

/// The design space: the set of depth values crossed with the fixed
/// Table 1 groups.
///
/// # Examples
///
/// ```
/// use udse_core::space::DesignSpace;
///
/// assert_eq!(DesignSpace::paper().len(), 375_000);
/// assert_eq!(DesignSpace::exploration().len(), 262_500);
/// let samples = DesignSpace::paper().sample_uar(100, 7);
/// assert_eq!(samples.len(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpace {
    depths: &'static [u32],
}

impl DesignSpace {
    /// The full 375,000-point sampling space (depths 9–36 FO4).
    pub fn paper() -> Self {
        DesignSpace { depths: &DEPTH_VALUES }
    }

    /// The 262,500-point exploration space (depths 12–30 FO4), a strict
    /// subset of the sampling space so model queries never extrapolate
    /// (§3.5).
    pub fn exploration() -> Self {
        DesignSpace { depths: &EXPLORATION_DEPTH_VALUES }
    }

    /// The depth values of this space.
    pub fn depths(&self) -> &'static [u32] {
        self.depths
    }

    /// Number of points in the space.
    pub fn len(&self) -> u64 {
        self.depths.len() as u64
            * WIDTH_VALUES.len() as u64
            * REGS_LEVELS as u64
            * RESV_LEVELS as u64
            * IL1_VALUES.len() as u64
            * DL1_VALUES.len() as u64
            * L2_VALUES.len() as u64
    }

    /// Whether the space is empty (never, for the provided constructors).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Builds a point from raw group indices, validating each against
    /// its group's cardinality. Returns `None` when any index is out of
    /// range.
    pub fn point(&self, indices: [u8; 7]) -> Option<DesignPoint> {
        let [depth_idx, width_idx, regs_idx, resv_idx, il1_idx, dl1_idx, l2_idx] = indices;
        if depth_idx as usize >= self.depths.len()
            || width_idx as usize >= WIDTH_VALUES.len()
            || regs_idx >= REGS_LEVELS
            || resv_idx >= RESV_LEVELS
            || il1_idx as usize >= IL1_VALUES.len()
            || dl1_idx as usize >= DL1_VALUES.len()
            || l2_idx as usize >= L2_VALUES.len()
        {
            return None;
        }
        Some(DesignPoint {
            depth_idx,
            width_idx,
            regs_idx,
            resv_idx,
            il1_idx,
            dl1_idx,
            l2_idx,
            fo4: self.depths[depth_idx as usize],
        })
    }

    /// The raw group indices of a point, in [`DesignSpace::point`] order.
    pub fn indices(&self, p: &DesignPoint) -> [u8; 7] {
        [p.depth_idx, p.width_idx, p.regs_idx, p.resv_idx, p.il1_idx, p.dl1_idx, p.l2_idx]
    }

    /// Per-dimension cardinalities, in [`DesignSpace::point`] order.
    pub fn dimensions(&self) -> [u8; 7] {
        [
            self.depths.len() as u8,
            WIDTH_VALUES.len() as u8,
            REGS_LEVELS,
            RESV_LEVELS,
            IL1_VALUES.len() as u8,
            DL1_VALUES.len() as u8,
            L2_VALUES.len() as u8,
        ]
    }

    /// Decodes a flat index into a design point.
    ///
    /// The index layout is row-major over
    /// `(depth, width, regs, resv, il1, dl1, l2)`.
    pub fn decode(&self, index: u64) -> Option<DesignPoint> {
        if index >= self.len() {
            return None;
        }
        let mut rest = index;
        let take = |rest: &mut u64, n: u64| {
            let v = *rest % n;
            *rest /= n;
            v as u8
        };
        // Decode in reverse of the row-major order.
        let l2_idx = take(&mut rest, L2_VALUES.len() as u64);
        let dl1_idx = take(&mut rest, DL1_VALUES.len() as u64);
        let il1_idx = take(&mut rest, IL1_VALUES.len() as u64);
        let resv_idx = take(&mut rest, RESV_LEVELS as u64);
        let regs_idx = take(&mut rest, REGS_LEVELS as u64);
        let width_idx = take(&mut rest, WIDTH_VALUES.len() as u64);
        let depth_idx = take(&mut rest, self.depths.len() as u64);
        Some(DesignPoint {
            depth_idx,
            width_idx,
            regs_idx,
            resv_idx,
            il1_idx,
            dl1_idx,
            l2_idx,
            fo4: self.depths[depth_idx as usize],
        })
    }

    /// Encodes a design point back to its flat index.
    ///
    /// Returns `None` when the point's depth is not part of this space
    /// (e.g. a 9 FO4 sample encoded against the exploration space).
    pub fn encode(&self, p: &DesignPoint) -> Option<u64> {
        let depth_idx = self.depths.iter().position(|&d| d == p.fo4)? as u64;
        let mut idx = depth_idx;
        idx = idx * WIDTH_VALUES.len() as u64 + p.width_idx as u64;
        idx = idx * REGS_LEVELS as u64 + p.regs_idx as u64;
        idx = idx * RESV_LEVELS as u64 + p.resv_idx as u64;
        idx = idx * IL1_VALUES.len() as u64 + p.il1_idx as u64;
        idx = idx * DL1_VALUES.len() as u64 + p.dl1_idx as u64;
        idx = idx * L2_VALUES.len() as u64 + p.l2_idx as u64;
        Some(idx)
    }

    /// Iterates over every point of the space in index order.
    pub fn iter(&self) -> impl Iterator<Item = DesignPoint> + '_ {
        (0..self.len()).map(move |i| self.decode(i).expect("index in range"))
    }

    /// Draws `n` points uniformly at random (with replacement, as the
    /// paper's UAR sampling does; at n = 1,000 out of 375,000 duplicates
    /// are vanishingly rare).
    pub fn sample_uar(&self, n: usize, seed: u64) -> Vec<DesignPoint> {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = self.len();
        (0..n).map(|_| self.decode(rng.gen_range(0..len)).expect("index in range")).collect()
    }

    /// Returns the point of this space nearest to an arbitrary parameter
    /// vector in [`DesignPoint::cluster_vector`] coordinates — used to
    /// snap K-means centroids back onto valid designs.
    pub fn nearest(&self, vector: &[f64]) -> DesignPoint {
        assert_eq!(vector.len(), 7, "cluster vectors have 7 dimensions");
        let snap = |target: f64, values: &mut dyn Iterator<Item = f64>| -> u8 {
            let mut best = (0u8, f64::INFINITY);
            for (i, v) in values.enumerate() {
                let d = (v - target).abs();
                if d < best.1 {
                    best = (i as u8, d);
                }
            }
            best.0
        };
        let depth_idx = snap(vector[0], &mut self.depths.iter().map(|&d| d as f64));
        let width_idx = snap(vector[1], &mut WIDTH_VALUES.iter().map(|w| w.0 as f64));
        let regs_idx = snap(vector[2], &mut (0..REGS_LEVELS).map(|i| 40.0 + 10.0 * i as f64));
        let resv_idx = snap(vector[3], &mut (0..RESV_LEVELS).map(|i| 10.0 + 2.0 * i as f64));
        let il1_idx = snap(vector[4], &mut IL1_VALUES.iter().map(|&v| (v as f64).log2()));
        let dl1_idx = snap(vector[5], &mut DL1_VALUES.iter().map(|&v| (v as f64).log2()));
        let l2_idx = snap(vector[6], &mut L2_VALUES.iter().map(|&v| (v as f64).log2()));
        DesignPoint {
            depth_idx,
            width_idx,
            regs_idx,
            resv_idx,
            il1_idx,
            dl1_idx,
            l2_idx,
            fo4: self.depths[depth_idx as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_match_paper() {
        assert_eq!(DesignSpace::paper().len(), 375_000);
        assert_eq!(DesignSpace::exploration().len(), 262_500);
    }

    #[test]
    fn decode_encode_roundtrip() {
        let space = DesignSpace::paper();
        for idx in [0u64, 1, 17, 374_999, 200_000, 123_456] {
            let p = space.decode(idx).unwrap();
            assert_eq!(space.encode(&p), Some(idx));
        }
        assert_eq!(space.decode(375_000), None);
    }

    #[test]
    fn exploration_is_subset_of_paper() {
        let paper = DesignSpace::paper();
        let exp = DesignSpace::exploration();
        let p = exp.decode(99_999).unwrap();
        // The same physical design exists in the paper space.
        let idx = paper.encode(&p).expect("depth 12..30 present in paper space");
        assert_eq!(paper.decode(idx).unwrap().fo4(), p.fo4());
    }

    #[test]
    fn parameter_ranges_match_table1() {
        let space = DesignSpace::paper();
        let first = space.decode(0).unwrap();
        let last = space.decode(space.len() - 1).unwrap();
        assert_eq!(first.gpr(), 40);
        assert_eq!(last.gpr(), 130);
        assert_eq!(first.fpr(), 40);
        assert_eq!(last.fpr(), 112);
        assert_eq!(first.spr(), 42);
        assert_eq!(last.spr(), 96);
        assert_eq!(first.resv_br(), 6);
        assert_eq!(last.resv_br(), 15);
        assert_eq!(first.resv_fx(), 10);
        assert_eq!(last.resv_fx(), 28);
        assert_eq!(first.resv_fp(), 5);
        assert_eq!(last.resv_fp(), 14);
        assert_eq!(first.il1_kb(), 16);
        assert_eq!(last.il1_kb(), 256);
        assert_eq!(first.dl1_kb(), 8);
        assert_eq!(last.dl1_kb(), 128);
        assert_eq!(first.l2_kb(), 256);
        assert_eq!(last.l2_kb(), 4096);
        assert_eq!(first.fo4(), 9);
        assert_eq!(last.fo4(), 36);
    }

    #[test]
    fn every_point_yields_valid_machine_config() {
        // Spot-check a random sample (the full space is large).
        for p in DesignSpace::paper().sample_uar(500, 3) {
            p.to_machine_config().validate().unwrap();
        }
    }

    #[test]
    fn sampling_is_deterministic_and_diverse() {
        let space = DesignSpace::paper();
        let a = space.sample_uar(50, 9);
        let b = space.sample_uar(50, 9);
        assert_eq!(a, b);
        let depths: std::collections::HashSet<u32> = a.iter().map(|p| p.fo4()).collect();
        assert!(depths.len() >= 5, "UAR sample should cover many depths");
    }

    #[test]
    fn sampling_covers_parameter_ranges() {
        let space = DesignSpace::paper();
        let sample = space.sample_uar(1_000, 1);
        // Each group's extreme values should appear in 1,000 draws.
        assert!(sample.iter().any(|p| p.regs_idx == 0));
        assert!(sample.iter().any(|p| p.regs_idx == 9));
        assert!(sample.iter().any(|p| p.l2_idx == 0));
        assert!(sample.iter().any(|p| p.l2_idx == 4));
        assert!(sample.iter().any(|p| p.fo4() == 9));
        assert!(sample.iter().any(|p| p.fo4() == 36));
    }

    #[test]
    fn predictors_have_names() {
        let p = DesignSpace::paper().decode(7).unwrap();
        assert_eq!(p.predictors().len(), DesignPoint::predictor_names().len());
    }

    #[test]
    fn nearest_snaps_to_valid_point() {
        let space = DesignSpace::exploration();
        let p = space.decode(1234).unwrap();
        // Exact vector snaps to itself.
        assert_eq!(space.nearest(&p.cluster_vector()), p);
        // A perturbed vector still snaps to a valid point.
        let mut v = p.cluster_vector();
        v[0] += 1.4; // depth off-grid
        v[6] += 0.4; // l2 off-grid
        let q = space.nearest(&v);
        assert!(space.encode(&q).is_some());
    }

    #[test]
    fn iter_matches_len() {
        // Use a reduced check: count a slice of the iterator lazily.
        let space = DesignSpace::exploration();
        assert_eq!(space.iter().take(10).count(), 10);
        let total: u64 = space.len();
        assert_eq!(total, 262_500);
    }

    #[test]
    fn encode_rejects_foreign_depth() {
        let paper = DesignSpace::paper();
        let exp = DesignSpace::exploration();
        let nine_fo4 = paper.decode(0).unwrap();
        assert_eq!(nine_fo4.fo4(), 9);
        assert_eq!(exp.encode(&nine_fo4), None);
    }
}
