//! The POWER4-like baseline architecture of the paper's Table 3 and its
//! projection onto the design space grid.

use udse_sim::MachineConfig;

use crate::space::{DesignPoint, DesignSpace};

/// The Table 3 baseline machine: 19 FO4, 4-wide decode, 2 units per
/// class, 80 GPR / 72 FPR, 64 KB I-L1 / 32 KB D-L1 / 2 MB L2.
pub fn table3_baseline() -> MachineConfig {
    MachineConfig::power4_baseline()
}

/// The grid point of the exploration space closest to the Table 3
/// baseline — the anchor for the depth study's "original analysis"
/// (depth itself is swept; the other parameters hold these values).
///
/// # Examples
///
/// ```
/// use udse_core::baseline::baseline_point;
///
/// let p = baseline_point();
/// assert_eq!(p.decode_width(), 4);
/// assert_eq!(p.dl1_kb(), 32);
/// assert_eq!(p.l2_kb(), 2048);
/// ```
pub fn baseline_point() -> DesignPoint {
    let cfg = table3_baseline();
    DesignSpace::exploration().nearest(&[
        cfg.fo4_per_stage as f64,
        cfg.decode_width as f64,
        cfg.gpr as f64,
        cfg.resv_fx as f64,
        (cfg.il1_kb as f64).log2(),
        (cfg.dl1_kb as f64).log2(),
        (cfg.l2_kb as f64).log2(),
    ])
}

/// Returns the baseline point with its depth replaced by the given FO4
/// value (must be a depth of the exploration space).
///
/// # Panics
///
/// Panics if `fo4` is not one of the exploration-space depths.
pub fn baseline_at_depth(fo4: u32) -> DesignPoint {
    let space = DesignSpace::exploration();
    assert!(space.depths().contains(&fo4), "depth {fo4} not in exploration space");
    let mut v = baseline_point().cluster_vector();
    v[0] = fo4 as f64;
    space.nearest(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_point_matches_table3_closely() {
        let p = baseline_point();
        // 19 FO4 snaps to 18 (nearest grid depth).
        assert_eq!(p.fo4(), 18);
        assert_eq!(p.decode_width(), 4);
        assert_eq!(p.gpr(), 80);
        assert_eq!(p.il1_kb(), 64);
        assert_eq!(p.dl1_kb(), 32);
        assert_eq!(p.l2_kb(), 2048);
    }

    #[test]
    fn baseline_at_depth_sweeps_only_depth() {
        let base = baseline_point();
        for &fo4 in DesignSpace::exploration().depths() {
            let p = baseline_at_depth(fo4);
            assert_eq!(p.fo4(), fo4);
            assert_eq!(p.width_idx, base.width_idx);
            assert_eq!(p.regs_idx, base.regs_idx);
            assert_eq!(p.l2_idx, base.l2_idx);
        }
    }

    #[test]
    #[should_panic(expected = "not in exploration space")]
    fn foreign_depth_panics() {
        let _ = baseline_at_depth(19);
    }
}
