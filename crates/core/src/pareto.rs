//! Pareto-frontier construction in the power-delay space (paper §4).

/// A pareto frontier over `(delay, power)` points: the set of designs
/// that minimize delay for a given power budget (equivalently, minimize
/// power for a given delay target).
///
/// Construction follows the paper §4.2: the delay range is discretized
/// and the power-minimizing design identified per delay bin, then
/// strictly dominated survivors are removed so the result is a true
/// frontier (monotone decreasing power as delay grows).
///
/// # Examples
///
/// ```
/// use udse_core::pareto::ParetoFrontier;
///
/// let pts = vec![
///     (1.0, 50.0), // fast, hot
///     (2.0, 20.0), // balanced
///     (2.5, 30.0), // dominated by the balanced point? no: slower AND hotter than (2.0, 20.0) -> dominated
///     (4.0, 10.0), // slow, cool
/// ];
/// let f = ParetoFrontier::from_points(&pts, 100);
/// let ids: Vec<usize> = f.indices().to_vec();
/// assert!(ids.contains(&0) && ids.contains(&1) && ids.contains(&3));
/// assert!(!ids.contains(&2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoFrontier {
    indices: Vec<usize>,
    points: Vec<(f64, f64)>,
}

impl ParetoFrontier {
    /// Builds the frontier from `(delay, power)` pairs using `bins` delay
    /// bins. Returns points ordered by increasing delay.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, `bins` is zero, or any value is
    /// non-finite.
    pub fn from_points(points: &[(f64, f64)], bins: usize) -> Self {
        assert!(!points.is_empty(), "pareto frontier of empty set");
        assert!(bins > 0, "need at least one delay bin");
        assert!(
            points.iter().all(|(d, p)| d.is_finite() && p.is_finite()),
            "non-finite delay/power"
        );
        let (mut dmin, mut dmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(d, _) in points {
            dmin = dmin.min(d);
            dmax = dmax.max(d);
        }
        let span = (dmax - dmin).max(f64::MIN_POSITIVE);
        // Power-minimizing candidate per delay bin.
        let mut best: Vec<Option<usize>> = vec![None; bins];
        for (i, &(d, p)) in points.iter().enumerate() {
            let b = (((d - dmin) / span) * bins as f64) as usize;
            let b = b.min(bins - 1);
            match best[b] {
                Some(j) if points[j].1 <= p => {}
                _ => best[b] = Some(i),
            }
        }
        // Sweep bins by increasing delay, keeping only candidates that
        // strictly improve (lower) power: the non-dominated skyline.
        let mut indices = Vec::new();
        let mut min_power = f64::INFINITY;
        for candidate in best.into_iter().flatten() {
            let p = points[candidate].1;
            if p < min_power {
                min_power = p;
                indices.push(candidate);
            }
        }
        let frontier_points = indices.iter().map(|&i| points[i]).collect();
        ParetoFrontier { indices, points: frontier_points }
    }

    /// Indices (into the input slice) of the frontier designs, ordered by
    /// increasing delay.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The `(delay, power)` values of the frontier designs.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of frontier designs.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the frontier is empty (never, after construction).
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Verifies that no frontier point is dominated by any input point
    /// (within a tolerance); used by property tests.
    pub fn is_non_dominated(&self, all: &[(f64, f64)]) -> bool {
        self.points
            .iter()
            .all(|&(d, p)| !all.iter().any(|&(d2, p2)| d2 < d - 1e-12 && p2 < p - 1e-12))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_is_its_own_frontier() {
        let f = ParetoFrontier::from_points(&[(1.0, 1.0)], 10);
        assert_eq!(f.indices(), &[0]);
        assert_eq!(f.len(), 1);
        assert!(!f.is_empty());
    }

    #[test]
    fn dominated_points_removed() {
        let pts = vec![(1.0, 10.0), (2.0, 5.0), (1.5, 20.0), (3.0, 6.0), (4.0, 2.0)];
        let f = ParetoFrontier::from_points(&pts, 50);
        assert_eq!(f.indices(), &[0, 1, 4]);
        assert!(f.is_non_dominated(&pts));
    }

    #[test]
    fn frontier_power_is_monotone_decreasing() {
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let d = 1.0 + (i % 10) as f64;
                let p = 100.0 / d + ((i * 7) % 13) as f64;
                (d, p)
            })
            .collect();
        let f = ParetoFrontier::from_points(&pts, 64);
        for w in f.points().windows(2) {
            assert!(w[0].0 < w[1].0, "delay must increase");
            assert!(w[0].1 > w[1].1, "power must decrease");
        }
    }

    #[test]
    fn equal_points_keep_one() {
        let pts = vec![(1.0, 1.0), (1.0, 1.0), (1.0, 1.0)];
        let f = ParetoFrontier::from_points(&pts, 4);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn more_bins_refine_the_frontier() {
        let pts: Vec<(f64, f64)> = (0..1000)
            .map(|i| {
                let d = 1.0 + i as f64 / 100.0;
                (d, 20.0 / d)
            })
            .collect();
        let coarse = ParetoFrontier::from_points(&pts, 5);
        let fine = ParetoFrontier::from_points(&pts, 100);
        assert!(fine.len() > coarse.len());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_input_panics() {
        let _ = ParetoFrontier::from_points(&[], 10);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_input_panics() {
        let _ = ParetoFrontier::from_points(&[(f64::NAN, 1.0)], 10);
    }
}
