//! Plain-text table and CSV helpers for the experiment harnesses.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Renders an aligned plain-text table.
///
/// # Examples
///
/// ```
/// use udse_core::report::format_table;
///
/// let s = format_table(
///     &["bench", "bips"],
///     &[vec!["mcf".into(), "0.25".into()], vec!["gzip".into(), "1.31".into()]],
/// );
/// assert!(s.contains("bench"));
/// assert!(s.contains("mcf"));
/// ```
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header count");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate() {
            let _ = write!(out, "{:>width$}  ", cell, width = widths[i]);
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    write_row(&mut out, &header_cells);
    let total: usize = widths.iter().sum::<usize>() + 2 * cols;
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// Writes rows as CSV (comma-separated, no quoting — cells must not
/// contain commas).
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
///
/// # Panics
///
/// Panics if any cell contains a comma or a row width mismatches.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    headers: &[&str],
    rows: &[Vec<String>],
) -> io::Result<()> {
    let mut f = File::create(path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width must match header count");
        assert!(row.iter().all(|c| !c.contains(',')), "cells must not contain commas");
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// Formats a float with a fixed number of decimals (table cell helper).
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a ratio as a signed percentage, e.g. `-3.9%` (Table 2 style).
pub fn fmt_pct(v: f64) -> String {
    format!("{:+.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let s = format_table(&["a", "long_header"], &[vec!["x".into(), "y".into()]]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long_header"));
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("udse_report_test.csv");
        write_csv(&dir, &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(-0.039), "-3.9%");
        assert_eq!(fmt_pct(0.052), "+5.2%");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_table_panics() {
        let _ = format_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
