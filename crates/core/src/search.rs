//! Heuristic optimization over the design space (paper §8: "for larger
//! design spaces, we may apply the models in heuristic search instead of
//! exhaustive prediction").
//!
//! Because the regression models evaluate in microseconds, exhaustive
//! prediction is tractable for the paper's 262,500-point space; these
//! heuristics matter when the space grows combinatorially (more
//! parameters, finer resolutions) or when the objective is the simulator
//! itself (as in Eyerman et al. \[6], which the paper contrasts against).
//! Four searchers are provided:
//!
//! - [`hill_climb`]: steepest-ascent over the 7-dimensional index grid;
//! - [`random_restart_hill_climb`]: the standard multistart wrapper;
//! - [`simulated_annealing`]: escapes local optima via temperature-decayed
//!   uphill moves;
//! - [`genetic_search`]: the population-based heuristic the paper
//!   contrasts against (Eyerman et al. \[6] found genetic search among the
//!   most effective simulator-driven heuristics).
//!
//! All of them report the number of objective evaluations so the cost can
//! be compared against exhaustive prediction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::space::{DesignPoint, DesignSpace};

/// Records a finished search in the global registry and debug log so
/// heuristic cost is visible next to exhaustive-sweep cost in manifests.
fn record_search(kind: &str, result: &SearchResult) {
    udse_obs::metrics::counter("search.evaluations").add(result.evaluations);
    udse_obs::debug!(
        "search",
        "{kind}: best {:.4} after {} evaluations",
        result.best_value,
        result.evaluations
    );
}

/// Outcome of a heuristic search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// The best design found.
    pub best: DesignPoint,
    /// Objective value at the best design.
    pub best_value: f64,
    /// Total objective evaluations spent.
    pub evaluations: u64,
}

/// All axis-neighbours of a point: each of the seven group indices moved
/// by ±1 (clipped at the group bounds).
pub fn neighbors(space: &DesignSpace, p: &DesignPoint) -> Vec<DesignPoint> {
    let idx = space.indices(p);
    let dims = space.dimensions();
    let mut out = Vec::with_capacity(14);
    for d in 0..7 {
        if idx[d] > 0 {
            let mut n = idx;
            n[d] -= 1;
            out.push(space.point(n).expect("in-range neighbour"));
        }
        if idx[d] + 1 < dims[d] {
            let mut n = idx;
            n[d] += 1;
            out.push(space.point(n).expect("in-range neighbour"));
        }
    }
    out
}

/// Steepest-ascent hill climbing from `start`: repeatedly moves to the
/// best neighbour until no neighbour improves the objective.
pub fn hill_climb<F>(space: &DesignSpace, start: DesignPoint, mut objective: F) -> SearchResult
where
    F: FnMut(&DesignPoint) -> f64,
{
    let mut current = start;
    let mut current_value = objective(&current);
    let mut evaluations = 1u64;
    loop {
        let mut best_step: Option<(DesignPoint, f64)> = None;
        for n in neighbors(space, &current) {
            let v = objective(&n);
            evaluations += 1;
            if v > current_value && best_step.as_ref().is_none_or(|(_, bv)| v > *bv) {
                best_step = Some((n, v));
            }
        }
        match best_step {
            Some((p, v)) => {
                current = p;
                current_value = v;
            }
            None => {
                let result = SearchResult { best: current, best_value: current_value, evaluations };
                record_search("hill_climb", &result);
                return result;
            }
        }
    }
}

/// Hill climbing from `restarts` uniform-random starting points, keeping
/// the best local optimum.
///
/// # Panics
///
/// Panics if `restarts` is zero.
pub fn random_restart_hill_climb<F>(
    space: &DesignSpace,
    restarts: usize,
    seed: u64,
    mut objective: F,
) -> SearchResult
where
    F: FnMut(&DesignPoint) -> f64,
{
    assert!(restarts > 0, "need at least one restart");
    let starts = space.sample_uar(restarts, seed);
    let mut best: Option<SearchResult> = None;
    let mut total_evals = 0u64;
    for start in starts {
        let r = hill_climb(space, start, &mut objective);
        total_evals += r.evaluations;
        if best.as_ref().is_none_or(|b| r.best_value > b.best_value) {
            best = Some(r);
        }
    }
    let mut result = best.expect("at least one restart ran");
    result.evaluations = total_evals;
    result
}

/// Simulated annealing: random single-axis moves, always accepting
/// improvements and accepting regressions with probability
/// `exp(delta / T)` under a geometrically cooling temperature.
///
/// `initial_temp` should be on the scale of typical objective
/// differences; `iterations` bounds the evaluation budget.
///
/// # Panics
///
/// Panics if `iterations` is zero or `initial_temp` is not positive.
pub fn simulated_annealing<F>(
    space: &DesignSpace,
    iterations: u64,
    initial_temp: f64,
    seed: u64,
    mut objective: F,
) -> SearchResult
where
    F: FnMut(&DesignPoint) -> f64,
{
    assert!(iterations > 0, "need a positive iteration budget");
    assert!(initial_temp > 0.0, "initial temperature must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = space.sample_uar(1, seed ^ 0x5A)[0];
    let mut current_value = objective(&current);
    let mut best = current;
    let mut best_value = current_value;
    let mut evaluations = 1u64;
    let dims = space.dimensions();
    let cooling = (1e-3f64).powf(1.0 / iterations as f64);
    let mut temp = initial_temp;
    for _ in 0..iterations {
        // Propose a random single-axis move.
        let d = rng.gen_range(0..7usize);
        let mut idx = space.indices(&current);
        let up = rng.gen_bool(0.5);
        if up && idx[d] + 1 < dims[d] {
            idx[d] += 1;
        } else if !up && idx[d] > 0 {
            idx[d] -= 1;
        } else {
            temp *= cooling;
            continue;
        }
        let candidate = space.point(idx).expect("in-range proposal");
        let v = objective(&candidate);
        evaluations += 1;
        let delta = v - current_value;
        if delta >= 0.0 || rng.gen::<f64>() < (delta / temp).exp() {
            current = candidate;
            current_value = v;
            if v > best_value {
                best = candidate;
                best_value = v;
            }
        }
        temp *= cooling;
    }
    let result = SearchResult { best, best_value, evaluations };
    record_search("simulated_annealing", &result);
    result
}

/// Configuration for [`genetic_search`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-dimension mutation probability.
    pub mutation_rate: f64,
    /// Individuals copied unchanged into the next generation.
    pub elitism: usize,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        GeneticConfig {
            population: 40,
            generations: 30,
            tournament: 3,
            mutation_rate: 0.15,
            elitism: 2,
        }
    }
}

/// Genetic search over the design grid: tournament selection, uniform
/// per-dimension crossover, and ±1-step mutation.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero population/
/// generations, tournament or elitism larger than the population).
pub fn genetic_search<F>(
    space: &DesignSpace,
    config: &GeneticConfig,
    seed: u64,
    mut objective: F,
) -> SearchResult
where
    F: FnMut(&DesignPoint) -> f64,
{
    assert!(config.population >= 2, "population must be at least 2");
    assert!(config.generations >= 1, "need at least one generation");
    assert!(
        config.tournament >= 1 && config.tournament <= config.population,
        "tournament size out of range"
    );
    assert!(config.elitism < config.population, "elitism must leave room for offspring");
    let mut rng = StdRng::seed_from_u64(seed);
    let dims = space.dimensions();
    let mut evaluations = 0u64;
    let mut score = |p: &DesignPoint, evals: &mut u64| {
        *evals += 1;
        objective(p)
    };
    // Initial population.
    let mut pop: Vec<(DesignPoint, f64)> = space
        .sample_uar(config.population, seed ^ 0x6E6E)
        .into_iter()
        .map(|p| {
            let v = score(&p, &mut evaluations);
            (p, v)
        })
        .collect();
    let mut best =
        pop.iter().cloned().max_by(|a, b| a.1.total_cmp(&b.1)).expect("non-empty population");

    for _ in 0..config.generations {
        pop.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut next: Vec<(DesignPoint, f64)> = pop[..config.elitism].to_vec();
        while next.len() < config.population {
            // Tournament selection of two parents.
            let pick = |rng: &mut StdRng, pop: &[(DesignPoint, f64)]| {
                (0..config.tournament)
                    .map(|_| &pop[rng.gen_range(0..pop.len())])
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("tournament non-empty")
                    .0
            };
            let pa = space.indices(&pick(&mut rng, &pop));
            let pb = space.indices(&pick(&mut rng, &pop));
            // Uniform crossover + mutation.
            let mut child = [0u8; 7];
            for d in 0..7 {
                child[d] = if rng.gen_bool(0.5) { pa[d] } else { pb[d] };
                if rng.gen::<f64>() < config.mutation_rate {
                    let up = rng.gen_bool(0.5);
                    if up && child[d] + 1 < dims[d] {
                        child[d] += 1;
                    } else if !up && child[d] > 0 {
                        child[d] -= 1;
                    }
                }
            }
            let p = space.point(child).expect("crossover stays in range");
            let v = score(&p, &mut evaluations);
            if v > best.1 {
                best = (p, v);
            }
            next.push((p, v));
        }
        pop = next;
    }
    let result = SearchResult { best: best.0, best_value: best.1, evaluations };
    record_search("genetic_search", &result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smooth unimodal objective peaking at a known interior point.
    fn objective(p: &DesignPoint) -> f64 {
        let v = p.predictors();
        let peak = [21.0, 4.0, 90.0, 20.0, 6.0, 5.0, 11.0];
        let scale = [9.0, 3.0, 45.0, 9.0, 2.0, 2.0, 2.0];
        -v.iter()
            .zip(peak.iter().zip(&scale))
            .map(|(x, (c, s))| ((x - c) / s) * ((x - c) / s))
            .sum::<f64>()
    }

    fn exhaustive_max(space: &DesignSpace) -> f64 {
        space.iter().map(|p| objective(&p)).fold(f64::NEG_INFINITY, f64::max)
    }

    #[test]
    fn neighbors_are_valid_and_adjacent() {
        let space = DesignSpace::exploration();
        let p = space.decode(123_456).unwrap();
        let ns = neighbors(&space, &p);
        assert!(!ns.is_empty() && ns.len() <= 14);
        for n in &ns {
            let a = space.indices(&p);
            let b = space.indices(n);
            let diff: u32 =
                a.iter().zip(&b).map(|(x, y)| (*x as i32 - *y as i32).unsigned_abs()).sum();
            assert_eq!(diff, 1, "neighbour differs in exactly one step");
            assert!(space.encode(n).is_some());
        }
    }

    #[test]
    fn corner_point_has_only_seven_neighbors() {
        let space = DesignSpace::exploration();
        let corner = space.point([0, 0, 0, 0, 0, 0, 0]).unwrap();
        assert_eq!(neighbors(&space, &corner).len(), 7);
    }

    #[test]
    fn hill_climb_finds_unimodal_peak() {
        let space = DesignSpace::exploration();
        let start = space.decode(0).unwrap();
        let r = hill_climb(&space, start, objective);
        let truth = exhaustive_max(&space);
        assert!((r.best_value - truth).abs() < 1e-9, "{} vs {truth}", r.best_value);
        // Orders of magnitude cheaper than 262,500 evaluations.
        assert!(r.evaluations < 2_000, "spent {} evaluations", r.evaluations);
    }

    #[test]
    fn restarts_never_hurt() {
        let space = DesignSpace::exploration();
        let one = random_restart_hill_climb(&space, 1, 3, objective);
        let many = random_restart_hill_climb(&space, 8, 3, objective);
        assert!(many.best_value >= one.best_value - 1e-12);
        assert!(many.evaluations > one.evaluations);
    }

    #[test]
    fn annealing_approaches_the_peak() {
        let space = DesignSpace::exploration();
        let r = simulated_annealing(&space, 20_000, 2.0, 7, objective);
        let truth = exhaustive_max(&space);
        assert!(r.best_value > truth - 0.5, "annealing {} vs truth {truth}", r.best_value);
    }

    #[test]
    fn genetic_search_approaches_the_peak() {
        let space = DesignSpace::exploration();
        let r = genetic_search(&space, &GeneticConfig::default(), 5, objective);
        let truth = exhaustive_max(&space);
        assert!(r.best_value > truth - 0.5, "genetic {} vs truth {truth}", r.best_value);
        assert!(r.evaluations < 5_000);
    }

    #[test]
    fn genetic_search_deterministic_per_seed() {
        let space = DesignSpace::exploration();
        let a = genetic_search(&space, &GeneticConfig::default(), 9, objective);
        let b = genetic_search(&space, &GeneticConfig::default(), 9, objective);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn degenerate_genetic_config_panics() {
        let space = DesignSpace::exploration();
        let cfg = GeneticConfig { population: 1, ..GeneticConfig::default() };
        let _ = genetic_search(&space, &cfg, 1, objective);
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let space = DesignSpace::exploration();
        let a = random_restart_hill_climb(&space, 4, 11, objective);
        let b = random_restart_hill_climb(&space, 4, 11, objective);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one restart")]
    fn zero_restarts_panics() {
        let space = DesignSpace::exploration();
        let _ = random_restart_hill_climb(&space, 0, 1, objective);
    }
}
