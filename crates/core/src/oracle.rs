//! Ground-truth evaluation of design points ("simulation" in the paper).
//!
//! Every oracle is `Send + Sync` (the trait requires it), and the batch
//! entry point [`Oracle::evaluate_many`] fans independent simulations out
//! across cores through the [`udse_obs::pool`] work pool. The pool
//! preserves input order and each simulation is a pure function of its
//! `(benchmark, point)` pair, so a parallel batch is bitwise-identical to
//! a sequential one — `repro --jobs 1` and `--jobs N` produce the same
//! numbers.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use udse_sim::{
    BhtSubConfig, BranchStream, CacheStreams, CacheSubConfig, Simulator, StreamScratch,
    TracePreflight,
};
use udse_trace::{Benchmark, Trace};

use crate::plan::EvalPlan;
use crate::space::DesignPoint;

/// The two responses the paper models for every design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Performance in billions of instructions per second.
    pub bips: f64,
    /// Chip power in watts.
    pub watts: f64,
}

impl Metrics {
    /// Execution delay in seconds for the reference one-billion
    /// instruction workload (the paper's delay axis).
    pub fn delay_seconds(&self) -> f64 {
        1.0 / self.bips
    }

    /// The paper's `bips^3 / w` efficiency metric.
    pub fn bips_cubed_per_watt(&self) -> f64 {
        self.bips.powi(3) / self.watts
    }
}

/// Anything that can produce ground-truth `(bips, watts)` for a design
/// point running a benchmark: the detailed simulator in this
/// reproduction, a cluster of Turandot instances in the paper.
///
/// Implementations must be `Send + Sync`: the study drivers batch
/// independent evaluations through [`Oracle::evaluate_many`], which runs
/// them on the [`udse_obs::pool`] worker threads.
pub trait Oracle: Send + Sync {
    /// Evaluates one design for one benchmark.
    fn evaluate(&self, benchmark: Benchmark, point: &DesignPoint) -> Metrics;

    /// Evaluates a batch of `(benchmark, point)` jobs, returning metrics
    /// in job order. The default implementation fans the jobs out across
    /// the work pool; order and values are identical to evaluating the
    /// jobs sequentially because each evaluation is independent.
    fn evaluate_many(&self, jobs: &[(Benchmark, DesignPoint)]) -> Vec<Metrics> {
        udse_obs::pool::map(jobs, |(b, p)| self.evaluate(*b, p))
    }

    /// Evaluates every job of an [`EvalPlan`], returning metrics in job-ID
    /// order. Equivalent to [`Oracle::evaluate_many`] on the plan's job
    /// list; sharding oracles override the batch path, not this, so a
    /// plan evaluates identically however the work is distributed.
    fn evaluate_plan(&self, plan: &EvalPlan) -> Vec<Metrics> {
        udse_obs::metrics::counter("plan.jobs").add(plan.len() as u64);
        self.evaluate_many(plan.jobs())
    }

    /// Evaluates one design for every benchmark in the suite, in
    /// [`Benchmark::ALL`] order.
    fn evaluate_suite(&self, point: &DesignPoint) -> Vec<Metrics> {
        let jobs: Vec<(Benchmark, DesignPoint)> =
            Benchmark::ALL.iter().map(|&b| (b, *point)).collect();
        self.evaluate_many(&jobs)
    }
}

/// The detailed-simulation oracle: generates (and caches) one synthetic
/// trace per benchmark and runs the cycle simulator with a warmup
/// fraction discarded from statistics.
///
/// Evaluation is deterministic: the same `(benchmark, point)` always
/// yields the same metrics.
///
/// # Examples
///
/// ```
/// use udse_core::oracle::{Oracle, SimOracle};
/// use udse_core::space::DesignSpace;
/// use udse_trace::Benchmark;
///
/// let oracle = SimOracle::with_trace_len(5_000);
/// let p = DesignSpace::paper().decode(1234).unwrap();
/// let m = oracle.evaluate(Benchmark::Gzip, &p);
/// assert!(m.bips > 0.0 && m.watts > 0.0);
/// ```
#[derive(Debug)]
pub struct SimOracle {
    trace_len: usize,
    warmup_frac: f64,
    seed: u64,
    traces: RwLock<HashMap<Benchmark, Arc<Trace>>>,
    preflights: RwLock<HashMap<Benchmark, Arc<TracePreflight>>>,
    streams: RwLock<StreamStore>,
    precompute_hits: AtomicU64,
    precompute_misses: AtomicU64,
}

/// Default trace length for study-quality runs; long enough that L2-scale
/// reuse distances and predictor training are exercised past warmup.
pub const DEFAULT_TRACE_LEN: usize = 200_000;

/// Default byte budget for memoized outcome streams. The paper-scale
/// workload (9 traces x 125 cache sub-configs x ~0.5 bytes/instruction
/// over 200k instructions) fits comfortably; the bound exists so
/// enlarged spaces degrade to recomputation instead of unbounded memory.
pub const DEFAULT_STREAM_BUDGET: usize = 256 << 20;

/// Key of one memoized entry, for FIFO eviction bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum StreamKey {
    Cache(Benchmark, CacheSubConfig),
    Branch(Benchmark, BhtSubConfig),
}

/// Bounded store of resolved outcome streams, shared across every run
/// of the owning oracle. Entries evict FIFO once the byte budget is
/// exceeded (the newest entry always survives, so the evaluation that
/// just resolved it can proceed).
#[derive(Debug)]
struct StreamStore {
    budget: usize,
    bytes: usize,
    cache: HashMap<(Benchmark, CacheSubConfig), Arc<CacheStreams>>,
    branch: HashMap<(Benchmark, BhtSubConfig), Arc<BranchStream>>,
    fifo: VecDeque<StreamKey>,
}

impl StreamStore {
    fn new(budget: usize) -> Self {
        StreamStore {
            budget,
            bytes: 0,
            cache: HashMap::new(),
            branch: HashMap::new(),
            fifo: VecDeque::new(),
        }
    }

    fn clear(&mut self) {
        self.bytes = 0;
        self.cache.clear();
        self.branch.clear();
        self.fifo.clear();
    }

    fn insert_cache(&mut self, key: (Benchmark, CacheSubConfig), streams: Arc<CacheStreams>) {
        if self.cache.contains_key(&key) {
            return; // another thread resolved it first; keep theirs
        }
        self.bytes += streams.bytes();
        self.cache.insert(key, streams);
        self.fifo.push_back(StreamKey::Cache(key.0, key.1));
        self.evict();
    }

    fn insert_branch(&mut self, key: (Benchmark, BhtSubConfig), stream: Arc<BranchStream>) {
        if self.branch.contains_key(&key) {
            return;
        }
        self.bytes += stream.bytes();
        self.branch.insert(key, stream);
        self.fifo.push_back(StreamKey::Branch(key.0, key.1));
        self.evict();
    }

    fn evict(&mut self) {
        while self.bytes > self.budget && self.fifo.len() > 1 {
            match self.fifo.pop_front().expect("fifo non-empty") {
                StreamKey::Cache(b, sub) => {
                    if let Some(s) = self.cache.remove(&(b, sub)) {
                        self.bytes -= s.bytes();
                    }
                }
                StreamKey::Branch(b, sub) => {
                    if let Some(s) = self.branch.remove(&(b, sub)) {
                        self.bytes -= s.bytes();
                    }
                }
            }
        }
    }
}

thread_local! {
    /// Per-thread engine scratch: work-pool threads reuse one set of
    /// pools and one completion ring across every simulation they run,
    /// keeping the steady-state cycle loop allocation-free.
    static SCRATCH: RefCell<StreamScratch> = RefCell::new(StreamScratch::default());
}

impl SimOracle {
    /// Creates an oracle with the default study-quality trace length.
    pub fn new() -> Self {
        Self::with_trace_len(DEFAULT_TRACE_LEN)
    }

    /// Creates an oracle with a custom trace length (tests use short
    /// traces for speed).
    ///
    /// # Panics
    ///
    /// Panics if `trace_len < 100`.
    pub fn with_trace_len(trace_len: usize) -> Self {
        assert!(trace_len >= 100, "trace length too short to be meaningful");
        SimOracle {
            trace_len,
            warmup_frac: 0.25,
            seed: 0x5EED,
            traces: RwLock::new(HashMap::new()),
            preflights: RwLock::new(HashMap::new()),
            streams: RwLock::new(StreamStore::new(DEFAULT_STREAM_BUDGET)),
            precompute_hits: AtomicU64::new(0),
            precompute_misses: AtomicU64::new(0),
        }
    }

    /// Overrides the trace seed (for sensitivity experiments).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.traces = RwLock::new(HashMap::new());
        self.preflights = RwLock::new(HashMap::new());
        self.streams.write().expect("stream store poisoned").clear();
        self
    }

    /// Overrides the memoized-stream byte budget (tests exercise
    /// eviction with tiny budgets; `0` disables memoization except for
    /// the entry currently being used).
    #[must_use]
    pub fn with_stream_budget(self, bytes: usize) -> Self {
        self.streams.write().expect("stream store poisoned").budget = bytes;
        self
    }

    /// The configured trace length.
    pub fn trace_len(&self) -> usize {
        self.trace_len
    }

    /// The configured trace seed (captured by
    /// [`crate::plan::SimSpec::of`] so worker processes rebuild an
    /// equivalent oracle).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns the cached trace for a benchmark, generating it on first
    /// use. Thread-safe: concurrent first uses serialize on the write
    /// lock and generate the (deterministic) trace exactly once.
    pub fn trace(&self, benchmark: Benchmark) -> Arc<Trace> {
        if let Some(t) = self.traces.read().expect("trace cache poisoned").get(&benchmark) {
            return Arc::clone(t);
        }
        let mut traces = self.traces.write().expect("trace cache poisoned");
        Arc::clone(
            traces
                .entry(benchmark)
                .or_insert_with(|| Arc::new(Trace::generate(benchmark, self.trace_len, self.seed))),
        )
    }

    /// Number of instructions discarded as warmup.
    pub fn warmup_insts(&self) -> usize {
        (self.trace_len as f64 * self.warmup_frac) as usize
    }

    /// Stream-store lookups served from the memo (cache + BHT keys each
    /// count one lookup per evaluation).
    pub fn precompute_hits(&self) -> u64 {
        self.precompute_hits.load(Ordering::Relaxed)
    }

    /// Stream-store lookups that had to resolve a fresh stream.
    pub fn precompute_misses(&self) -> u64 {
        self.precompute_misses.load(Ordering::Relaxed)
    }

    /// The design-invariant preflight of a benchmark's trace, computed
    /// once per `(benchmark, seed, trace_len)` and shared via `Arc`.
    pub fn preflight(&self, benchmark: Benchmark) -> Arc<TracePreflight> {
        if let Some(p) = self.preflights.read().expect("preflight cache poisoned").get(&benchmark) {
            return Arc::clone(p);
        }
        let trace = self.trace(benchmark);
        let mut preflights = self.preflights.write().expect("preflight cache poisoned");
        Arc::clone(
            preflights.entry(benchmark).or_insert_with(|| Arc::new(TracePreflight::of(&trace))),
        )
    }

    fn record(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.precompute_hits.fetch_add(hits, Ordering::Relaxed);
            udse_obs::metrics::counter("sim.precompute.hits").add(hits);
        }
        if misses > 0 {
            self.precompute_misses.fetch_add(misses, Ordering::Relaxed);
            udse_obs::metrics::counter("sim.precompute.misses").add(misses);
        }
    }

    /// The memoized cache-outcome streams for one sub-config, resolving
    /// and inserting on first use.
    fn cache_streams(
        &self,
        benchmark: Benchmark,
        pre: &TracePreflight,
        sub: CacheSubConfig,
    ) -> Arc<CacheStreams> {
        let key = (benchmark, sub);
        if let Some(s) = self.streams.read().expect("stream store poisoned").cache.get(&key) {
            self.record(1, 0);
            return Arc::clone(s);
        }
        self.record(0, 1);
        let resolved = Arc::new(CacheStreams::resolve(pre, &sub));
        let mut store = self.streams.write().expect("stream store poisoned");
        store.insert_cache(key, Arc::clone(&resolved));
        resolved
    }

    /// The memoized branch-outcome stream for one BHT sub-config.
    fn branch_stream(
        &self,
        benchmark: Benchmark,
        pre: &TracePreflight,
        sub: BhtSubConfig,
    ) -> Arc<BranchStream> {
        let key = (benchmark, sub);
        if let Some(s) = self.streams.read().expect("stream store poisoned").branch.get(&key) {
            self.record(1, 0);
            return Arc::clone(s);
        }
        self.record(0, 1);
        let resolved = Arc::new(BranchStream::resolve(pre, &sub));
        let mut store = self.streams.write().expect("stream store poisoned");
        store.insert_branch(key, Arc::clone(&resolved));
        resolved
    }

    /// Runs one simulation against resolved artifacts with the calling
    /// thread's reusable scratch.
    fn run(
        &self,
        point: &DesignPoint,
        pre: &TracePreflight,
        cache: &CacheStreams,
        bht: &BranchStream,
    ) -> Metrics {
        let sim = Simulator::new(point.to_machine_config());
        let result = SCRATCH.with(|s| {
            sim.run_streamed_with(pre, cache, bht, self.warmup_insts(), &mut s.borrow_mut())
        });
        Metrics { bips: result.bips, watts: result.watts }
    }
}

impl Default for SimOracle {
    fn default() -> Self {
        SimOracle::new()
    }
}

impl Oracle for SimOracle {
    fn evaluate(&self, benchmark: Benchmark, point: &DesignPoint) -> Metrics {
        let cfg = point.to_machine_config();
        let pre = self.preflight(benchmark);
        let cache = self.cache_streams(benchmark, &pre, CacheSubConfig::of(&cfg));
        let bht = self.branch_stream(benchmark, &pre, BhtSubConfig::of(&cfg));
        self.run(point, &pre, &cache, &bht)
    }

    /// Batched evaluation with deterministic memo accounting: a
    /// sequential pre-pass walks the jobs in order and performs both
    /// stream lookups per job (cache sub-key, then BHT sub-key) — the
    /// first unresolved occurrence of a key counts the miss, every
    /// later occurrence a hit — so `sim.precompute.hits/misses` come
    /// out identical whatever `--jobs` width runs the batch. The
    /// distinct pending streams then resolve in one parallel wave, are
    /// inserted into the shared store in first-occurrence order (so
    /// eviction is deterministic too), and the simulations fan out over
    /// batch-local `Arc`s that keep every stream alive even if the
    /// bounded store evicts it mid-batch.
    fn evaluate_many(&self, jobs: &[(Benchmark, DesignPoint)]) -> Vec<Metrics> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let mut preflights: HashMap<Benchmark, Arc<TracePreflight>> = HashMap::new();
        for (b, _) in jobs {
            if !preflights.contains_key(b) {
                preflights.insert(*b, self.preflight(*b));
            }
        }

        let mut cache_ready: HashMap<(Benchmark, CacheSubConfig), Arc<CacheStreams>> =
            HashMap::new();
        let mut branch_ready: HashMap<(Benchmark, BhtSubConfig), Arc<BranchStream>> =
            HashMap::new();
        let mut cache_pending: Vec<(Benchmark, CacheSubConfig)> = Vec::new();
        let mut branch_pending: Vec<(Benchmark, BhtSubConfig)> = Vec::new();
        let (mut hits, mut misses) = (0u64, 0u64);
        {
            let store = self.streams.read().expect("stream store poisoned");
            let mut seen_cache: std::collections::HashSet<(Benchmark, CacheSubConfig)> =
                std::collections::HashSet::new();
            let mut seen_branch: std::collections::HashSet<(Benchmark, BhtSubConfig)> =
                std::collections::HashSet::new();
            for (b, p) in jobs {
                let cfg = p.to_machine_config();
                let ck = (*b, CacheSubConfig::of(&cfg));
                if !seen_cache.insert(ck) {
                    hits += 1;
                } else if let Some(s) = store.cache.get(&ck) {
                    hits += 1;
                    cache_ready.insert(ck, Arc::clone(s));
                } else {
                    misses += 1;
                    cache_pending.push(ck);
                }
                let bk = (*b, BhtSubConfig::of(&cfg));
                if !seen_branch.insert(bk) {
                    hits += 1;
                } else if let Some(s) = store.branch.get(&bk) {
                    hits += 1;
                    branch_ready.insert(bk, Arc::clone(s));
                } else {
                    misses += 1;
                    branch_pending.push(bk);
                }
            }
        }
        self.record(hits, misses);

        if !cache_pending.is_empty() || !branch_pending.is_empty() {
            let resolved_cache: Vec<Arc<CacheStreams>> =
                udse_obs::pool::map(&cache_pending, |(b, sub)| {
                    Arc::new(CacheStreams::resolve(&preflights[b], sub))
                });
            let resolved_branch: Vec<Arc<BranchStream>> =
                udse_obs::pool::map(&branch_pending, |(b, sub)| {
                    Arc::new(BranchStream::resolve(&preflights[b], sub))
                });
            let mut store = self.streams.write().expect("stream store poisoned");
            for (key, s) in cache_pending.iter().zip(&resolved_cache) {
                cache_ready.insert(*key, Arc::clone(s));
                store.insert_cache(*key, Arc::clone(s));
            }
            for (key, s) in branch_pending.iter().zip(&resolved_branch) {
                branch_ready.insert(*key, Arc::clone(s));
                store.insert_branch(*key, Arc::clone(s));
            }
        }

        udse_obs::pool::map(jobs, |(b, p)| {
            let cfg = p.to_machine_config();
            let ck = (*b, CacheSubConfig::of(&cfg));
            let bk = (*b, BhtSubConfig::of(&cfg));
            self.run(p, &preflights[b], &cache_ready[&ck], &branch_ready[&bk])
        })
    }
}

/// A memoizing wrapper around any oracle: repeated evaluations of the
/// same `(benchmark, point)` pair are served from a cache. Useful when
/// several studies re-visit the same designs (frontier validation, depth
/// validation, heterogeneity gains all simulate overlapping sets).
///
/// # Examples
///
/// ```
/// use udse_core::oracle::{CachedOracle, Oracle, SimOracle};
/// use udse_core::space::DesignSpace;
/// use udse_trace::Benchmark;
///
/// let oracle = CachedOracle::new(SimOracle::with_trace_len(2_000));
/// let p = DesignSpace::paper().decode(7).unwrap();
/// let a = oracle.evaluate(Benchmark::Gcc, &p); // simulated
/// let b = oracle.evaluate(Benchmark::Gcc, &p); // cached
/// assert_eq!(a, b);
/// assert_eq!(oracle.hits(), 1);
/// ```
#[derive(Debug)]
pub struct CachedOracle<O> {
    inner: O,
    cache: RwLock<HashMap<(Benchmark, DesignPoint), Metrics>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<O: Oracle> CachedOracle<O> {
    /// Wraps an oracle with an unbounded memoization cache.
    pub fn new(inner: O) -> Self {
        CachedOracle {
            inner,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Number of evaluations served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of evaluations delegated to the inner oracle.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl<O: Oracle> Oracle for CachedOracle<O> {
    fn evaluate(&self, benchmark: Benchmark, point: &DesignPoint) -> Metrics {
        let key = (benchmark, *point);
        if let Some(m) = self.cache.read().expect("oracle cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            udse_obs::metrics::counter("oracle.cache.hits").inc();
            return *m;
        }
        let m = self.inner.evaluate(benchmark, point);
        self.misses.fetch_add(1, Ordering::Relaxed);
        udse_obs::metrics::counter("oracle.cache.misses").inc();
        self.cache.write().expect("oracle cache poisoned").insert(key, m);
        m
    }

    /// Batched lookup: cached pairs are served immediately, the distinct
    /// uncached pairs are simulated in one parallel batch through the
    /// inner oracle, and results come back in job order. Duplicate jobs
    /// within the batch simulate once and count one miss (subsequent
    /// occurrences are hits), matching the sequential accounting.
    fn evaluate_many(&self, jobs: &[(Benchmark, DesignPoint)]) -> Vec<Metrics> {
        let mut pending: Vec<(Benchmark, DesignPoint)> = Vec::new();
        let mut pending_index: HashMap<(Benchmark, DesignPoint), usize> = HashMap::new();
        let mut hits = 0u64;
        {
            let cache = self.cache.read().expect("oracle cache poisoned");
            for key in jobs {
                if cache.contains_key(key) {
                    hits += 1;
                } else if !pending_index.contains_key(key) {
                    pending_index.insert(*key, pending.len());
                    pending.push(*key);
                } else {
                    hits += 1; // duplicate within the batch
                }
            }
        }
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
            udse_obs::metrics::counter("oracle.cache.hits").add(hits);
        }
        if !pending.is_empty() {
            let fresh = self.inner.evaluate_many(&pending);
            self.misses.fetch_add(pending.len() as u64, Ordering::Relaxed);
            udse_obs::metrics::counter("oracle.cache.misses").add(pending.len() as u64);
            let mut cache = self.cache.write().expect("oracle cache poisoned");
            for (key, m) in pending.iter().zip(&fresh) {
                cache.insert(*key, *m);
            }
        }
        let cache = self.cache.read().expect("oracle cache poisoned");
        jobs.iter().map(|key| *cache.get(key).expect("all jobs resolved")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignSpace;

    #[test]
    fn cached_oracle_memoizes() {
        let oracle = CachedOracle::new(SimOracle::with_trace_len(1_000));
        let p = DesignSpace::paper().decode(99).unwrap();
        let a = oracle.evaluate(Benchmark::Mesa, &p);
        assert_eq!(oracle.misses(), 1);
        let b = oracle.evaluate(Benchmark::Mesa, &p);
        assert_eq!(oracle.hits(), 1);
        assert_eq!(a, b);
        // A different benchmark is a different key.
        let _ = oracle.evaluate(Benchmark::Gzip, &p);
        assert_eq!(oracle.misses(), 2);
    }

    #[test]
    fn deterministic_evaluation() {
        let oracle = SimOracle::with_trace_len(2_000);
        let p = DesignSpace::paper().decode(42).unwrap();
        let a = oracle.evaluate(Benchmark::Twolf, &p);
        let b = oracle.evaluate(Benchmark::Twolf, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn traces_are_cached() {
        let oracle = SimOracle::with_trace_len(2_000);
        let t1 = oracle.trace(Benchmark::Gcc);
        let t2 = oracle.trace(Benchmark::Gcc);
        assert!(Arc::ptr_eq(&t1, &t2));
    }

    #[test]
    fn suite_order_matches_benchmark_all() {
        let oracle = SimOracle::with_trace_len(1_000);
        let p = DesignSpace::paper().decode(7).unwrap();
        let suite = oracle.evaluate_suite(&p);
        assert_eq!(suite.len(), 9);
        let direct = oracle.evaluate(Benchmark::Ammp, &p);
        assert_eq!(suite[0], direct);
    }

    #[test]
    fn metrics_derived_quantities() {
        let m = Metrics { bips: 2.0, watts: 16.0 };
        assert_eq!(m.delay_seconds(), 0.5);
        assert_eq!(m.bips_cubed_per_watt(), 0.5);
    }

    #[test]
    fn different_seeds_change_results() {
        let p = DesignSpace::paper().decode(42).unwrap();
        let a = SimOracle::with_trace_len(2_000).evaluate(Benchmark::Jbb, &p);
        let b = SimOracle::with_trace_len(2_000).with_seed(99).evaluate(Benchmark::Jbb, &p);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn tiny_trace_panics() {
        let _ = SimOracle::with_trace_len(10);
    }

    #[test]
    fn oracles_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimOracle>();
        assert_send_sync::<CachedOracle<SimOracle>>();
        assert_send_sync::<Metrics>();
        assert_send_sync::<&dyn Oracle>();
    }

    #[test]
    fn evaluate_many_matches_sequential_evaluation() {
        let space = DesignSpace::paper();
        let oracle = SimOracle::with_trace_len(1_000);
        let jobs: Vec<(Benchmark, DesignPoint)> = (0..12)
            .map(|i| (Benchmark::ALL[i % 9], space.decode(i as u64 * 1_000).unwrap()))
            .collect();
        let batched = oracle.evaluate_many(&jobs);
        let sequential: Vec<Metrics> = jobs.iter().map(|(b, p)| oracle.evaluate(*b, p)).collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn cached_evaluate_many_counts_hits_and_dedups() {
        let space = DesignSpace::paper();
        let oracle = CachedOracle::new(SimOracle::with_trace_len(1_000));
        let p0 = space.decode(11).unwrap();
        let p1 = space.decode(2_222).unwrap();
        // Warm one key, then batch with a duplicate and two new keys.
        let warm = oracle.evaluate(Benchmark::Gcc, &p0);
        let jobs = vec![
            (Benchmark::Gcc, p0),  // cache hit
            (Benchmark::Gcc, p1),  // miss
            (Benchmark::Gcc, p1),  // duplicate of the miss: hit
            (Benchmark::Gzip, p0), // miss
        ];
        let out = oracle.evaluate_many(&jobs);
        assert_eq!(out[0], warm);
        assert_eq!(out[1], out[2]);
        assert_eq!(oracle.hits(), 2);
        assert_eq!(oracle.misses(), 3); // 1 warmup + 2 batch misses
                                        // The whole batch is now cached.
        let again = oracle.evaluate_many(&jobs);
        assert_eq!(again, out);
        assert_eq!(oracle.misses(), 3);
    }

    #[test]
    fn streamed_oracle_matches_direct_simulation() {
        let oracle = SimOracle::with_trace_len(2_000);
        let space = DesignSpace::paper();
        for idx in [0u64, 42, 9_999, 123_456] {
            let p = space.decode(idx).unwrap();
            let m = oracle.evaluate(Benchmark::Twolf, &p);
            let direct = Simulator::new(p.to_machine_config())
                .run_with_warmup(&oracle.trace(Benchmark::Twolf), oracle.warmup_insts());
            assert_eq!(m, Metrics { bips: direct.bips, watts: direct.watts }, "index {idx}");
        }
    }

    #[test]
    fn precompute_accounting_is_deterministic_and_batch_independent() {
        let space = DesignSpace::paper();
        // Two designs sharing cache geometry + identical BHT (the paper
        // space has a single BHT config), plus one distinct geometry.
        let jobs: Vec<(Benchmark, DesignPoint)> = (0..12)
            .map(|i| (Benchmark::ALL[i % 3], space.decode(i as u64 * 500).unwrap()))
            .collect();
        let a = SimOracle::with_trace_len(1_000);
        let first = a.evaluate_many(&jobs);
        let (h1, m1) = (a.precompute_hits(), a.precompute_misses());
        assert_eq!(h1 + m1, 2 * jobs.len() as u64, "two lookups per job");
        assert!(m1 > 0, "first batch must resolve streams");
        // Same batch again: everything hits.
        let again = a.evaluate_many(&jobs);
        assert_eq!(again, first);
        assert_eq!(a.precompute_misses(), m1, "no re-resolution on a warm store");
        assert_eq!(a.precompute_hits(), h1 + 2 * jobs.len() as u64);
        // A fresh oracle fed the same jobs one at a time produces the
        // same accounting as the batched pre-pass.
        let b = SimOracle::with_trace_len(1_000);
        let sequential: Vec<Metrics> = jobs.iter().map(|(bm, p)| b.evaluate(*bm, p)).collect();
        assert_eq!(sequential, first);
        assert_eq!((b.precompute_hits(), b.precompute_misses()), (h1, m1));
    }

    #[test]
    fn stream_store_eviction_is_bounded_and_lossless() {
        let space = DesignSpace::paper();
        // A budget of zero keeps at most the newest entry: every new
        // sub-config evicts the previous one, so nearly every lookup
        // misses — but results stay bitwise-identical to a warm store.
        let cold = SimOracle::with_trace_len(1_000).with_stream_budget(0);
        let warm = SimOracle::with_trace_len(1_000);
        let jobs: Vec<(Benchmark, DesignPoint)> =
            (0..8).map(|i| (Benchmark::Gzip, space.decode(i as u64 * 7_777).unwrap())).collect();
        let from_cold = cold.evaluate_many(&jobs);
        let from_warm = warm.evaluate_many(&jobs);
        assert_eq!(from_cold, from_warm);
        let store = cold.streams.read().unwrap();
        assert!(store.fifo.len() <= 2, "zero budget keeps at most the newest entries per kind");
        drop(store);
        // Evicted entries re-resolve on the next batch instead of
        // serving stale data.
        assert_eq!(cold.evaluate_many(&jobs), from_warm);
    }

    #[test]
    fn parallel_trace_generation_is_consistent() {
        // Hammer the trace cache from several threads; every thread must
        // see the same Arc'd trace.
        let oracle = SimOracle::with_trace_len(1_000);
        let ptrs: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| Arc::as_ptr(&oracle.trace(Benchmark::Mcf)) as usize))
                .collect();
            handles.into_iter().map(|h| h.join().expect("trace thread panicked")).collect()
        });
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]), "trace generated more than once");
    }
}
