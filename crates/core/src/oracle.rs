//! Ground-truth evaluation of design points ("simulation" in the paper).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use udse_sim::Simulator;
use udse_trace::{Benchmark, Trace};

use crate::space::DesignPoint;

/// The two responses the paper models for every design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Performance in billions of instructions per second.
    pub bips: f64,
    /// Chip power in watts.
    pub watts: f64,
}

impl Metrics {
    /// Execution delay in seconds for the reference one-billion
    /// instruction workload (the paper's delay axis).
    pub fn delay_seconds(&self) -> f64 {
        1.0 / self.bips
    }

    /// The paper's `bips^3 / w` efficiency metric.
    pub fn bips_cubed_per_watt(&self) -> f64 {
        self.bips.powi(3) / self.watts
    }
}

/// Anything that can produce ground-truth `(bips, watts)` for a design
/// point running a benchmark: the detailed simulator in this
/// reproduction, a cluster of Turandot instances in the paper.
pub trait Oracle {
    /// Evaluates one design for one benchmark.
    fn evaluate(&self, benchmark: Benchmark, point: &DesignPoint) -> Metrics;

    /// Evaluates one design for every benchmark in the suite, in
    /// [`Benchmark::ALL`] order.
    fn evaluate_suite(&self, point: &DesignPoint) -> Vec<Metrics> {
        Benchmark::ALL.iter().map(|&b| self.evaluate(b, point)).collect()
    }
}

/// The detailed-simulation oracle: generates (and caches) one synthetic
/// trace per benchmark and runs the cycle simulator with a warmup
/// fraction discarded from statistics.
///
/// Evaluation is deterministic: the same `(benchmark, point)` always
/// yields the same metrics.
///
/// # Examples
///
/// ```
/// use udse_core::oracle::{Oracle, SimOracle};
/// use udse_core::space::DesignSpace;
/// use udse_trace::Benchmark;
///
/// let oracle = SimOracle::with_trace_len(5_000);
/// let p = DesignSpace::paper().decode(1234).unwrap();
/// let m = oracle.evaluate(Benchmark::Gzip, &p);
/// assert!(m.bips > 0.0 && m.watts > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimOracle {
    trace_len: usize,
    warmup_frac: f64,
    seed: u64,
    traces: RefCell<HashMap<Benchmark, Rc<Trace>>>,
}

/// Default trace length for study-quality runs; long enough that L2-scale
/// reuse distances and predictor training are exercised past warmup.
pub const DEFAULT_TRACE_LEN: usize = 200_000;

impl SimOracle {
    /// Creates an oracle with the default study-quality trace length.
    pub fn new() -> Self {
        Self::with_trace_len(DEFAULT_TRACE_LEN)
    }

    /// Creates an oracle with a custom trace length (tests use short
    /// traces for speed).
    ///
    /// # Panics
    ///
    /// Panics if `trace_len < 100`.
    pub fn with_trace_len(trace_len: usize) -> Self {
        assert!(trace_len >= 100, "trace length too short to be meaningful");
        SimOracle {
            trace_len,
            warmup_frac: 0.25,
            seed: 0x5EED,
            traces: RefCell::new(HashMap::new()),
        }
    }

    /// Overrides the trace seed (for sensitivity experiments).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.traces = RefCell::new(HashMap::new());
        self
    }

    /// The configured trace length.
    pub fn trace_len(&self) -> usize {
        self.trace_len
    }

    /// Returns the cached trace for a benchmark, generating it on first
    /// use.
    pub fn trace(&self, benchmark: Benchmark) -> Rc<Trace> {
        if let Some(t) = self.traces.borrow().get(&benchmark) {
            return Rc::clone(t);
        }
        let t = Rc::new(Trace::generate(benchmark, self.trace_len, self.seed));
        self.traces.borrow_mut().insert(benchmark, Rc::clone(&t));
        t
    }

    /// Number of instructions discarded as warmup.
    pub fn warmup_insts(&self) -> usize {
        (self.trace_len as f64 * self.warmup_frac) as usize
    }
}

impl Default for SimOracle {
    fn default() -> Self {
        SimOracle::new()
    }
}

impl Oracle for SimOracle {
    fn evaluate(&self, benchmark: Benchmark, point: &DesignPoint) -> Metrics {
        let trace = self.trace(benchmark);
        let result =
            Simulator::new(point.to_machine_config()).run_with_warmup(&trace, self.warmup_insts());
        Metrics { bips: result.bips, watts: result.watts }
    }
}

/// A memoizing wrapper around any oracle: repeated evaluations of the
/// same `(benchmark, point)` pair are served from a cache. Useful when
/// several studies re-visit the same designs (frontier validation, depth
/// validation, heterogeneity gains all simulate overlapping sets).
///
/// # Examples
///
/// ```
/// use udse_core::oracle::{CachedOracle, Oracle, SimOracle};
/// use udse_core::space::DesignSpace;
/// use udse_trace::Benchmark;
///
/// let oracle = CachedOracle::new(SimOracle::with_trace_len(2_000));
/// let p = DesignSpace::paper().decode(7).unwrap();
/// let a = oracle.evaluate(Benchmark::Gcc, &p); // simulated
/// let b = oracle.evaluate(Benchmark::Gcc, &p); // cached
/// assert_eq!(a, b);
/// assert_eq!(oracle.hits(), 1);
/// ```
#[derive(Debug)]
pub struct CachedOracle<O> {
    inner: O,
    cache: RefCell<HashMap<(Benchmark, DesignPoint), Metrics>>,
    hits: std::cell::Cell<u64>,
    misses: std::cell::Cell<u64>,
}

impl<O: Oracle> CachedOracle<O> {
    /// Wraps an oracle with an unbounded memoization cache.
    pub fn new(inner: O) -> Self {
        CachedOracle {
            inner,
            cache: RefCell::new(HashMap::new()),
            hits: std::cell::Cell::new(0),
            misses: std::cell::Cell::new(0),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Number of evaluations served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Number of evaluations delegated to the inner oracle.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }
}

impl<O: Oracle> Oracle for CachedOracle<O> {
    fn evaluate(&self, benchmark: Benchmark, point: &DesignPoint) -> Metrics {
        let key = (benchmark, *point);
        if let Some(m) = self.cache.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            udse_obs::metrics::counter("oracle.cache.hits").inc();
            return *m;
        }
        let m = self.inner.evaluate(benchmark, point);
        self.misses.set(self.misses.get() + 1);
        udse_obs::metrics::counter("oracle.cache.misses").inc();
        self.cache.borrow_mut().insert(key, m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignSpace;

    #[test]
    fn cached_oracle_memoizes() {
        let oracle = CachedOracle::new(SimOracle::with_trace_len(1_000));
        let p = DesignSpace::paper().decode(99).unwrap();
        let a = oracle.evaluate(Benchmark::Mesa, &p);
        assert_eq!(oracle.misses(), 1);
        let b = oracle.evaluate(Benchmark::Mesa, &p);
        assert_eq!(oracle.hits(), 1);
        assert_eq!(a, b);
        // A different benchmark is a different key.
        let _ = oracle.evaluate(Benchmark::Gzip, &p);
        assert_eq!(oracle.misses(), 2);
    }

    #[test]
    fn deterministic_evaluation() {
        let oracle = SimOracle::with_trace_len(2_000);
        let p = DesignSpace::paper().decode(42).unwrap();
        let a = oracle.evaluate(Benchmark::Twolf, &p);
        let b = oracle.evaluate(Benchmark::Twolf, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn traces_are_cached() {
        let oracle = SimOracle::with_trace_len(2_000);
        let t1 = oracle.trace(Benchmark::Gcc);
        let t2 = oracle.trace(Benchmark::Gcc);
        assert!(Rc::ptr_eq(&t1, &t2));
    }

    #[test]
    fn suite_order_matches_benchmark_all() {
        let oracle = SimOracle::with_trace_len(1_000);
        let p = DesignSpace::paper().decode(7).unwrap();
        let suite = oracle.evaluate_suite(&p);
        assert_eq!(suite.len(), 9);
        let direct = oracle.evaluate(Benchmark::Ammp, &p);
        assert_eq!(suite[0], direct);
    }

    #[test]
    fn metrics_derived_quantities() {
        let m = Metrics { bips: 2.0, watts: 16.0 };
        assert_eq!(m.delay_seconds(), 0.5);
        assert_eq!(m.bips_cubed_per_watt(), 0.5);
    }

    #[test]
    fn different_seeds_change_results() {
        let p = DesignSpace::paper().decode(42).unwrap();
        let a = SimOracle::with_trace_len(2_000).evaluate(Benchmark::Jbb, &p);
        let b = SimOracle::with_trace_len(2_000).with_seed(99).evaluate(Benchmark::Jbb, &p);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn tiny_trace_panics() {
        let _ = SimOracle::with_trace_len(10);
    }
}
