//! Ground-truth evaluation of design points ("simulation" in the paper).
//!
//! Every oracle is `Send + Sync` (the trait requires it), and the batch
//! entry point [`Oracle::evaluate_many`] fans independent simulations out
//! across cores through the [`udse_obs::pool`] work pool. The pool
//! preserves input order and each simulation is a pure function of its
//! `(benchmark, point)` pair, so a parallel batch is bitwise-identical to
//! a sequential one — `repro --jobs 1` and `--jobs N` produce the same
//! numbers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use udse_sim::Simulator;
use udse_trace::{Benchmark, Trace};

use crate::plan::EvalPlan;
use crate::space::DesignPoint;

/// The two responses the paper models for every design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Performance in billions of instructions per second.
    pub bips: f64,
    /// Chip power in watts.
    pub watts: f64,
}

impl Metrics {
    /// Execution delay in seconds for the reference one-billion
    /// instruction workload (the paper's delay axis).
    pub fn delay_seconds(&self) -> f64 {
        1.0 / self.bips
    }

    /// The paper's `bips^3 / w` efficiency metric.
    pub fn bips_cubed_per_watt(&self) -> f64 {
        self.bips.powi(3) / self.watts
    }
}

/// Anything that can produce ground-truth `(bips, watts)` for a design
/// point running a benchmark: the detailed simulator in this
/// reproduction, a cluster of Turandot instances in the paper.
///
/// Implementations must be `Send + Sync`: the study drivers batch
/// independent evaluations through [`Oracle::evaluate_many`], which runs
/// them on the [`udse_obs::pool`] worker threads.
pub trait Oracle: Send + Sync {
    /// Evaluates one design for one benchmark.
    fn evaluate(&self, benchmark: Benchmark, point: &DesignPoint) -> Metrics;

    /// Evaluates a batch of `(benchmark, point)` jobs, returning metrics
    /// in job order. The default implementation fans the jobs out across
    /// the work pool; order and values are identical to evaluating the
    /// jobs sequentially because each evaluation is independent.
    fn evaluate_many(&self, jobs: &[(Benchmark, DesignPoint)]) -> Vec<Metrics> {
        udse_obs::pool::map(jobs, |(b, p)| self.evaluate(*b, p))
    }

    /// Evaluates every job of an [`EvalPlan`], returning metrics in job-ID
    /// order. Equivalent to [`Oracle::evaluate_many`] on the plan's job
    /// list; sharding oracles override the batch path, not this, so a
    /// plan evaluates identically however the work is distributed.
    fn evaluate_plan(&self, plan: &EvalPlan) -> Vec<Metrics> {
        udse_obs::metrics::counter("plan.jobs").add(plan.len() as u64);
        self.evaluate_many(plan.jobs())
    }

    /// Evaluates one design for every benchmark in the suite, in
    /// [`Benchmark::ALL`] order.
    fn evaluate_suite(&self, point: &DesignPoint) -> Vec<Metrics> {
        let jobs: Vec<(Benchmark, DesignPoint)> =
            Benchmark::ALL.iter().map(|&b| (b, *point)).collect();
        self.evaluate_many(&jobs)
    }
}

/// The detailed-simulation oracle: generates (and caches) one synthetic
/// trace per benchmark and runs the cycle simulator with a warmup
/// fraction discarded from statistics.
///
/// Evaluation is deterministic: the same `(benchmark, point)` always
/// yields the same metrics.
///
/// # Examples
///
/// ```
/// use udse_core::oracle::{Oracle, SimOracle};
/// use udse_core::space::DesignSpace;
/// use udse_trace::Benchmark;
///
/// let oracle = SimOracle::with_trace_len(5_000);
/// let p = DesignSpace::paper().decode(1234).unwrap();
/// let m = oracle.evaluate(Benchmark::Gzip, &p);
/// assert!(m.bips > 0.0 && m.watts > 0.0);
/// ```
#[derive(Debug)]
pub struct SimOracle {
    trace_len: usize,
    warmup_frac: f64,
    seed: u64,
    traces: RwLock<HashMap<Benchmark, Arc<Trace>>>,
}

/// Default trace length for study-quality runs; long enough that L2-scale
/// reuse distances and predictor training are exercised past warmup.
pub const DEFAULT_TRACE_LEN: usize = 200_000;

impl SimOracle {
    /// Creates an oracle with the default study-quality trace length.
    pub fn new() -> Self {
        Self::with_trace_len(DEFAULT_TRACE_LEN)
    }

    /// Creates an oracle with a custom trace length (tests use short
    /// traces for speed).
    ///
    /// # Panics
    ///
    /// Panics if `trace_len < 100`.
    pub fn with_trace_len(trace_len: usize) -> Self {
        assert!(trace_len >= 100, "trace length too short to be meaningful");
        SimOracle {
            trace_len,
            warmup_frac: 0.25,
            seed: 0x5EED,
            traces: RwLock::new(HashMap::new()),
        }
    }

    /// Overrides the trace seed (for sensitivity experiments).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.traces = RwLock::new(HashMap::new());
        self
    }

    /// The configured trace length.
    pub fn trace_len(&self) -> usize {
        self.trace_len
    }

    /// The configured trace seed (captured by
    /// [`crate::plan::SimSpec::of`] so worker processes rebuild an
    /// equivalent oracle).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns the cached trace for a benchmark, generating it on first
    /// use. Thread-safe: concurrent first uses serialize on the write
    /// lock and generate the (deterministic) trace exactly once.
    pub fn trace(&self, benchmark: Benchmark) -> Arc<Trace> {
        if let Some(t) = self.traces.read().expect("trace cache poisoned").get(&benchmark) {
            return Arc::clone(t);
        }
        let mut traces = self.traces.write().expect("trace cache poisoned");
        Arc::clone(
            traces
                .entry(benchmark)
                .or_insert_with(|| Arc::new(Trace::generate(benchmark, self.trace_len, self.seed))),
        )
    }

    /// Number of instructions discarded as warmup.
    pub fn warmup_insts(&self) -> usize {
        (self.trace_len as f64 * self.warmup_frac) as usize
    }
}

impl Default for SimOracle {
    fn default() -> Self {
        SimOracle::new()
    }
}

impl Oracle for SimOracle {
    fn evaluate(&self, benchmark: Benchmark, point: &DesignPoint) -> Metrics {
        let trace = self.trace(benchmark);
        let result =
            Simulator::new(point.to_machine_config()).run_with_warmup(&trace, self.warmup_insts());
        Metrics { bips: result.bips, watts: result.watts }
    }
}

/// A memoizing wrapper around any oracle: repeated evaluations of the
/// same `(benchmark, point)` pair are served from a cache. Useful when
/// several studies re-visit the same designs (frontier validation, depth
/// validation, heterogeneity gains all simulate overlapping sets).
///
/// # Examples
///
/// ```
/// use udse_core::oracle::{CachedOracle, Oracle, SimOracle};
/// use udse_core::space::DesignSpace;
/// use udse_trace::Benchmark;
///
/// let oracle = CachedOracle::new(SimOracle::with_trace_len(2_000));
/// let p = DesignSpace::paper().decode(7).unwrap();
/// let a = oracle.evaluate(Benchmark::Gcc, &p); // simulated
/// let b = oracle.evaluate(Benchmark::Gcc, &p); // cached
/// assert_eq!(a, b);
/// assert_eq!(oracle.hits(), 1);
/// ```
#[derive(Debug)]
pub struct CachedOracle<O> {
    inner: O,
    cache: RwLock<HashMap<(Benchmark, DesignPoint), Metrics>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<O: Oracle> CachedOracle<O> {
    /// Wraps an oracle with an unbounded memoization cache.
    pub fn new(inner: O) -> Self {
        CachedOracle {
            inner,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Number of evaluations served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of evaluations delegated to the inner oracle.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl<O: Oracle> Oracle for CachedOracle<O> {
    fn evaluate(&self, benchmark: Benchmark, point: &DesignPoint) -> Metrics {
        let key = (benchmark, *point);
        if let Some(m) = self.cache.read().expect("oracle cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            udse_obs::metrics::counter("oracle.cache.hits").inc();
            return *m;
        }
        let m = self.inner.evaluate(benchmark, point);
        self.misses.fetch_add(1, Ordering::Relaxed);
        udse_obs::metrics::counter("oracle.cache.misses").inc();
        self.cache.write().expect("oracle cache poisoned").insert(key, m);
        m
    }

    /// Batched lookup: cached pairs are served immediately, the distinct
    /// uncached pairs are simulated in one parallel batch through the
    /// inner oracle, and results come back in job order. Duplicate jobs
    /// within the batch simulate once and count one miss (subsequent
    /// occurrences are hits), matching the sequential accounting.
    fn evaluate_many(&self, jobs: &[(Benchmark, DesignPoint)]) -> Vec<Metrics> {
        let mut pending: Vec<(Benchmark, DesignPoint)> = Vec::new();
        let mut pending_index: HashMap<(Benchmark, DesignPoint), usize> = HashMap::new();
        let mut hits = 0u64;
        {
            let cache = self.cache.read().expect("oracle cache poisoned");
            for key in jobs {
                if cache.contains_key(key) {
                    hits += 1;
                } else if !pending_index.contains_key(key) {
                    pending_index.insert(*key, pending.len());
                    pending.push(*key);
                } else {
                    hits += 1; // duplicate within the batch
                }
            }
        }
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
            udse_obs::metrics::counter("oracle.cache.hits").add(hits);
        }
        if !pending.is_empty() {
            let fresh = self.inner.evaluate_many(&pending);
            self.misses.fetch_add(pending.len() as u64, Ordering::Relaxed);
            udse_obs::metrics::counter("oracle.cache.misses").add(pending.len() as u64);
            let mut cache = self.cache.write().expect("oracle cache poisoned");
            for (key, m) in pending.iter().zip(&fresh) {
                cache.insert(*key, *m);
            }
        }
        let cache = self.cache.read().expect("oracle cache poisoned");
        jobs.iter().map(|key| *cache.get(key).expect("all jobs resolved")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignSpace;

    #[test]
    fn cached_oracle_memoizes() {
        let oracle = CachedOracle::new(SimOracle::with_trace_len(1_000));
        let p = DesignSpace::paper().decode(99).unwrap();
        let a = oracle.evaluate(Benchmark::Mesa, &p);
        assert_eq!(oracle.misses(), 1);
        let b = oracle.evaluate(Benchmark::Mesa, &p);
        assert_eq!(oracle.hits(), 1);
        assert_eq!(a, b);
        // A different benchmark is a different key.
        let _ = oracle.evaluate(Benchmark::Gzip, &p);
        assert_eq!(oracle.misses(), 2);
    }

    #[test]
    fn deterministic_evaluation() {
        let oracle = SimOracle::with_trace_len(2_000);
        let p = DesignSpace::paper().decode(42).unwrap();
        let a = oracle.evaluate(Benchmark::Twolf, &p);
        let b = oracle.evaluate(Benchmark::Twolf, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn traces_are_cached() {
        let oracle = SimOracle::with_trace_len(2_000);
        let t1 = oracle.trace(Benchmark::Gcc);
        let t2 = oracle.trace(Benchmark::Gcc);
        assert!(Arc::ptr_eq(&t1, &t2));
    }

    #[test]
    fn suite_order_matches_benchmark_all() {
        let oracle = SimOracle::with_trace_len(1_000);
        let p = DesignSpace::paper().decode(7).unwrap();
        let suite = oracle.evaluate_suite(&p);
        assert_eq!(suite.len(), 9);
        let direct = oracle.evaluate(Benchmark::Ammp, &p);
        assert_eq!(suite[0], direct);
    }

    #[test]
    fn metrics_derived_quantities() {
        let m = Metrics { bips: 2.0, watts: 16.0 };
        assert_eq!(m.delay_seconds(), 0.5);
        assert_eq!(m.bips_cubed_per_watt(), 0.5);
    }

    #[test]
    fn different_seeds_change_results() {
        let p = DesignSpace::paper().decode(42).unwrap();
        let a = SimOracle::with_trace_len(2_000).evaluate(Benchmark::Jbb, &p);
        let b = SimOracle::with_trace_len(2_000).with_seed(99).evaluate(Benchmark::Jbb, &p);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn tiny_trace_panics() {
        let _ = SimOracle::with_trace_len(10);
    }

    #[test]
    fn oracles_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimOracle>();
        assert_send_sync::<CachedOracle<SimOracle>>();
        assert_send_sync::<Metrics>();
        assert_send_sync::<&dyn Oracle>();
    }

    #[test]
    fn evaluate_many_matches_sequential_evaluation() {
        let space = DesignSpace::paper();
        let oracle = SimOracle::with_trace_len(1_000);
        let jobs: Vec<(Benchmark, DesignPoint)> = (0..12)
            .map(|i| (Benchmark::ALL[i % 9], space.decode(i as u64 * 1_000).unwrap()))
            .collect();
        let batched = oracle.evaluate_many(&jobs);
        let sequential: Vec<Metrics> = jobs.iter().map(|(b, p)| oracle.evaluate(*b, p)).collect();
        assert_eq!(batched, sequential);
    }

    #[test]
    fn cached_evaluate_many_counts_hits_and_dedups() {
        let space = DesignSpace::paper();
        let oracle = CachedOracle::new(SimOracle::with_trace_len(1_000));
        let p0 = space.decode(11).unwrap();
        let p1 = space.decode(2_222).unwrap();
        // Warm one key, then batch with a duplicate and two new keys.
        let warm = oracle.evaluate(Benchmark::Gcc, &p0);
        let jobs = vec![
            (Benchmark::Gcc, p0),  // cache hit
            (Benchmark::Gcc, p1),  // miss
            (Benchmark::Gcc, p1),  // duplicate of the miss: hit
            (Benchmark::Gzip, p0), // miss
        ];
        let out = oracle.evaluate_many(&jobs);
        assert_eq!(out[0], warm);
        assert_eq!(out[1], out[2]);
        assert_eq!(oracle.hits(), 2);
        assert_eq!(oracle.misses(), 3); // 1 warmup + 2 batch misses
                                        // The whole batch is now cached.
        let again = oracle.evaluate_many(&jobs);
        assert_eq!(again, out);
        assert_eq!(oracle.misses(), 3);
    }

    #[test]
    fn parallel_trace_generation_is_consistent() {
        // Hammer the trace cache from several threads; every thread must
        // see the same Arc'd trace.
        let oracle = SimOracle::with_trace_len(1_000);
        let ptrs: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| Arc::as_ptr(&oracle.trace(Benchmark::Mcf)) as usize))
                .collect();
            handles.into_iter().map(|h| h.join().expect("trace thread panicked")).collect()
        });
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]), "trace generated more than once");
    }
}
