//! Serializable evaluation plans: the unit of ground-truth work.
//!
//! Every simulation batch the studies build — training samples,
//! validation designs, depth/heterogeneity re-simulations, frontier
//! checks — is a list of independent `(benchmark, design point)` jobs.
//! [`EvalPlan`] makes that list a first-class value with **stable job
//! IDs** (a job's ID is its position in the plan) and a canonical,
//! versioned text serialization, so a batch can be handed to another
//! process, evaluated in deterministic contiguous slices, and
//! reassembled bitwise-identically to an in-process run (see
//! `repro --shards` and [`crate::oracle::Oracle::evaluate_plan`]).
//!
//! The serialization is hand-rolled JSON via [`udse_obs::json`]
//! (zero-dependency rule). Design points serialize as their seven group
//! indices plus the FO4 depth value; the depth value disambiguates the
//! paper space from the exploration space, whose depth lists overlap but
//! never agree at the same index.
//!
//! # Examples
//!
//! ```
//! use udse_core::plan::{EvalPlan, SimSpec};
//! use udse_core::space::DesignSpace;
//! use udse_trace::Benchmark;
//!
//! let points = DesignSpace::paper().sample_uar(4, 7);
//! let plan = EvalPlan::cross_suite("train", &points);
//! assert_eq!(plan.len(), 9 * 4);
//! let sim = SimSpec { trace_len: 2_000, seed: 0x5EED };
//! let text = plan.to_json(&sim).to_string_pretty();
//! let (back, spec) = EvalPlan::parse(&text).unwrap();
//! assert_eq!(back.jobs(), plan.jobs());
//! assert_eq!(spec, sim);
//! ```

use std::ops::Range;

use udse_obs::Json;
use udse_trace::Benchmark;

use crate::oracle::SimOracle;
use crate::space::{DesignPoint, DesignSpace};

/// Plan document layout version, bumped on incompatible changes.
pub const PLAN_SCHEMA_VERSION: i64 = 1;

/// The simulator configuration a plan's jobs must be evaluated under.
/// Serialized with the plan so a worker process reconstructs an oracle
/// that is bitwise-equivalent to the one that authored the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSpec {
    /// Synthetic trace length in instructions.
    pub trace_len: usize,
    /// Trace generation seed.
    pub seed: u64,
}

impl SimSpec {
    /// Captures the spec of an existing oracle.
    pub fn of(oracle: &SimOracle) -> Self {
        SimSpec { trace_len: oracle.trace_len(), seed: oracle.seed() }
    }

    /// Builds a fresh oracle matching this spec.
    ///
    /// # Panics
    ///
    /// Panics if `trace_len < 100` (the [`SimOracle`] floor).
    pub fn build(&self) -> SimOracle {
        SimOracle::with_trace_len(self.trace_len).with_seed(self.seed)
    }
}

/// An ordered batch of independent `(benchmark, design point)`
/// evaluation jobs. A job's stable ID is its index in the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPlan {
    label: String,
    jobs: Vec<(Benchmark, DesignPoint)>,
}

impl EvalPlan {
    /// Creates an empty plan.
    pub fn new(label: &str) -> Self {
        EvalPlan { label: label.to_string(), jobs: Vec::new() }
    }

    /// Wraps an existing job list.
    pub fn from_jobs(label: &str, jobs: Vec<(Benchmark, DesignPoint)>) -> Self {
        EvalPlan { label: label.to_string(), jobs }
    }

    /// The benchmarks-major cross product `Benchmark::ALL × points`, the
    /// shape the training and validation batches use: job
    /// `bi * points.len() + pi` is `(ALL[bi], points[pi])`.
    pub fn cross_suite(label: &str, points: &[DesignPoint]) -> Self {
        let jobs = Benchmark::ALL.iter().flat_map(|&b| points.iter().map(move |p| (b, *p)));
        EvalPlan { label: label.to_string(), jobs: jobs.collect() }
    }

    /// Appends a job and returns its stable ID.
    pub fn push(&mut self, benchmark: Benchmark, point: DesignPoint) -> u64 {
        self.jobs.push((benchmark, point));
        (self.jobs.len() - 1) as u64
    }

    /// The plan's label (used in shard file names and diagnostics).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// All jobs in ID order.
    pub fn jobs(&self) -> &[(Benchmark, DesignPoint)] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the plan has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The deterministic contiguous job-ID slice assigned to shard
    /// `index` of `count`. The `count` slices partition `0..len()`
    /// exactly (no gaps, no overlap) and sizes differ by at most one.
    ///
    /// # Panics
    ///
    /// Panics when `count == 0` or `index >= count`.
    pub fn shard_range(&self, index: usize, count: usize) -> Range<usize> {
        assert!(count >= 1, "shard count must be at least 1");
        assert!(index < count, "shard index {index} out of range for {count} shards");
        let len = self.jobs.len();
        (len * index / count)..(len * (index + 1) / count)
    }

    /// The jobs of one shard slice, in ID order.
    pub fn shard_jobs(&self, index: usize, count: usize) -> &[(Benchmark, DesignPoint)] {
        &self.jobs[self.shard_range(index, count)]
    }

    /// Serializes the plan (with the simulator spec its jobs assume) to
    /// the canonical versioned document. Serialization is deterministic:
    /// the same plan always produces the same bytes.
    pub fn to_json(&self, sim: &SimSpec) -> Json {
        let jobs = self
            .jobs
            .iter()
            .enumerate()
            .map(|(id, (b, p))| {
                let idx = [
                    p.depth_idx,
                    p.width_idx,
                    p.regs_idx,
                    p.resv_idx,
                    p.il1_idx,
                    p.dl1_idx,
                    p.l2_idx,
                ];
                Json::obj([
                    ("id", Json::Int(id as i64)),
                    ("bench", Json::str(b.name())),
                    ("idx", Json::Arr(idx.iter().map(|&i| Json::Int(i as i64)).collect())),
                    ("fo4", Json::Int(p.fo4() as i64)),
                ])
            })
            .collect();
        Json::obj([
            ("plan_version", Json::Int(PLAN_SCHEMA_VERSION)),
            ("label", Json::str(self.label.as_str())),
            (
                "sim",
                Json::obj([
                    ("trace_len", Json::Int(sim.trace_len as i64)),
                    ("seed", Json::Int(sim.seed as i64)),
                ]),
            ),
            ("jobs", Json::Arr(jobs)),
        ])
    }

    /// Parses a plan document.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, an unsupported version, an unknown
    /// benchmark name, indices outside both design spaces, or job IDs
    /// that are not exactly `0..n` in order (the canonical form).
    pub fn parse(text: &str) -> Result<(Self, SimSpec), String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&doc)
    }

    /// Interprets an already-parsed document as a plan.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EvalPlan::parse`].
    pub fn from_json(doc: &Json) -> Result<(Self, SimSpec), String> {
        let version = doc
            .get("plan_version")
            .and_then(Json::as_i64)
            .ok_or("missing plan_version — not an evaluation plan")?;
        if version != PLAN_SCHEMA_VERSION {
            return Err(format!(
                "unsupported plan_version {version} (this build reads {PLAN_SCHEMA_VERSION})"
            ));
        }
        let label = doc.get("label").and_then(Json::as_str).ok_or("missing label")?.to_string();
        let sim = doc.get("sim").ok_or("missing sim section")?;
        let trace_len = sim
            .get("trace_len")
            .and_then(Json::as_i64)
            .filter(|&v| v >= 0)
            .ok_or("sim.trace_len missing or negative")? as usize;
        let seed = sim.get("seed").and_then(Json::as_i64).ok_or("sim.seed missing")? as u64;
        let rows = doc.get("jobs").and_then(Json::as_arr).ok_or("missing jobs array")?;
        let mut jobs = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let id = row
                .get("id")
                .and_then(Json::as_i64)
                .ok_or_else(|| format!("job {i}: missing id"))?;
            if id != i as i64 {
                return Err(format!("job {i}: id {id} out of order (canonical plans number 0..n)"));
            }
            let name = row
                .get("bench")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("job {i}: missing bench"))?;
            let benchmark = benchmark_by_name(name)
                .ok_or_else(|| format!("job {i}: unknown benchmark `{name}`"))?;
            let idx_arr = row
                .get("idx")
                .and_then(Json::as_arr)
                .filter(|a| a.len() == 7)
                .ok_or_else(|| format!("job {i}: idx must be a 7-element array"))?;
            let mut idx = [0u8; 7];
            for (slot, v) in idx.iter_mut().zip(idx_arr) {
                *slot = v
                    .as_i64()
                    .filter(|&v| (0..=u8::MAX as i64).contains(&v))
                    .ok_or_else(|| format!("job {i}: non-integer group index"))?
                    as u8;
            }
            let fo4 = row
                .get("fo4")
                .and_then(Json::as_i64)
                .filter(|&v| v >= 0)
                .ok_or_else(|| format!("job {i}: missing fo4"))? as u32;
            let point = point_from_parts(idx, fo4)
                .ok_or_else(|| format!("job {i}: indices {idx:?} with fo4 {fo4} fit no space"))?;
            jobs.push((benchmark, point));
        }
        Ok((EvalPlan { label, jobs }, SimSpec { trace_len, seed }))
    }
}

/// Looks up a benchmark by its [`Benchmark::name`].
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    Benchmark::ALL.into_iter().find(|b| b.name() == name)
}

/// Reconstructs a design point from its serialized group indices and FO4
/// depth. The depth value selects the space: the paper and exploration
/// depth lists never agree at the same index (`9 + 3i` vs `12 + 3i`), so
/// the reconstruction is unambiguous.
pub(crate) fn point_from_parts(indices: [u8; 7], fo4: u32) -> Option<DesignPoint> {
    for space in [DesignSpace::paper(), DesignSpace::exploration()] {
        if let Some(p) = space.point(indices) {
            if p.fo4() == fo4 {
                return Some(p);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> EvalPlan {
        let paper = DesignSpace::paper();
        let explo = DesignSpace::exploration();
        let mut plan = EvalPlan::new("mixed");
        // Points from both spaces, including a depth the lists share.
        assert_eq!(plan.push(Benchmark::Ammp, paper.decode(0).unwrap()), 0);
        assert_eq!(plan.push(Benchmark::Jbb, explo.decode(0).unwrap()), 1);
        assert_eq!(plan.push(Benchmark::Mcf, paper.decode(374_999).unwrap()), 2);
        assert_eq!(plan.push(Benchmark::Twolf, explo.decode(262_499).unwrap()), 3);
        plan
    }

    #[test]
    fn round_trip_preserves_jobs_and_spec() {
        let plan = sample_plan();
        let sim = SimSpec { trace_len: 20_000, seed: 0x5EED };
        let text = plan.to_json(&sim).to_string_pretty();
        let (back, spec) = EvalPlan::parse(&text).expect("canonical plan parses");
        assert_eq!(back, plan);
        assert_eq!(spec, sim);
        // Serialize → parse → serialize is byte identity.
        assert_eq!(back.to_json(&spec).to_string_pretty(), text);
    }

    #[test]
    fn ambiguous_depths_resolve_by_fo4() {
        // Exploration depth_idx 0 is 12 FO4; paper depth_idx 0 is 9 FO4.
        // Both serialize the same indices and must come back from the
        // right space.
        let explo_p = DesignSpace::exploration().decode(0).unwrap();
        let paper_p = DesignSpace::paper().decode(0).unwrap();
        assert_eq!(explo_p.depth_idx, paper_p.depth_idx);
        let mut plan = EvalPlan::new("depths");
        plan.push(Benchmark::Gcc, explo_p);
        plan.push(Benchmark::Gcc, paper_p);
        let sim = SimSpec { trace_len: 2_000, seed: 1 };
        let (back, _) = EvalPlan::parse(&plan.to_json(&sim).to_string_pretty()).unwrap();
        assert_eq!(back.jobs()[0].1.fo4(), 12);
        assert_eq!(back.jobs()[1].1.fo4(), 9);
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for len in [0usize, 1, 2, 7, 9, 1_000] {
            let plan = EvalPlan::from_jobs(
                "p",
                (0..len)
                    .map(|i| (Benchmark::Ammp, DesignSpace::paper().decode(i as u64).unwrap()))
                    .collect(),
            );
            for count in 1..=8usize {
                let mut covered = 0usize;
                for index in 0..count {
                    let r = plan.shard_range(index, count);
                    assert_eq!(r.start, covered, "gap before shard {index}/{count} at len {len}");
                    covered = r.end;
                    let size = r.end - r.start;
                    assert!(
                        size + 1 >= len / count && size <= len.div_ceil(count),
                        "unbalanced shard {index}/{count}: {size} of {len}"
                    );
                }
                assert_eq!(covered, len, "shards must cover the plan, count {count}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_out_of_range_panics() {
        let _ = sample_plan().shard_range(3, 3);
    }

    #[test]
    fn malformed_documents_error_cleanly() {
        assert!(EvalPlan::parse("not json").is_err());
        assert!(EvalPlan::parse("{}").is_err(), "missing version rejected");
        let future = r#"{"plan_version": 99, "label": "x", "sim": {"trace_len": 100, "seed": 0}, "jobs": []}"#;
        assert!(EvalPlan::parse(future).unwrap_err().contains("unsupported plan_version"));
        let bad_bench = r#"{"plan_version": 1, "label": "x", "sim": {"trace_len": 100, "seed": 0},
            "jobs": [{"id": 0, "bench": "nope", "idx": [0,0,0,0,0,0,0], "fo4": 9}]}"#;
        assert!(EvalPlan::parse(bad_bench).unwrap_err().contains("unknown benchmark"));
        let bad_id = r#"{"plan_version": 1, "label": "x", "sim": {"trace_len": 100, "seed": 0},
            "jobs": [{"id": 1, "bench": "ammp", "idx": [0,0,0,0,0,0,0], "fo4": 9}]}"#;
        assert!(EvalPlan::parse(bad_id).unwrap_err().contains("out of order"));
        let bad_point = r#"{"plan_version": 1, "label": "x", "sim": {"trace_len": 100, "seed": 0},
            "jobs": [{"id": 0, "bench": "ammp", "idx": [0,0,0,0,0,0,0], "fo4": 10}]}"#;
        assert!(EvalPlan::parse(bad_point).unwrap_err().contains("fit no space"));
    }

    #[test]
    fn sim_spec_builds_matching_oracle() {
        let spec = SimSpec { trace_len: 2_000, seed: 42 };
        let oracle = spec.build();
        assert_eq!(SimSpec::of(&oracle), spec);
    }
}
