//! Canonical versioned JSON wire format for queries and results.
//!
//! This is the protocol the planned `udse-serve` daemon will speak, so
//! it follows the [`crate::plan`] serialization discipline strictly:
//!
//! - Every document carries a version field (`query_version` /
//!   `result_version`) checked against [`QUERY_SCHEMA_VERSION`].
//! - Serialization is canonical: the same value always produces the same
//!   bytes, and serialize → parse → serialize is byte identity.
//! - Parsing is strict: unknown or duplicate object keys are rejected at
//!   every nesting level, so schema drift fails loudly instead of being
//!   silently ignored across a process boundary.
//!
//! Parsing is mildly lenient only where JSON itself is ambiguous: a
//! fractionless number like `64` is accepted where a float is expected
//! (the canonical writer always emits `64.0`).
//!
//! Design points serialize exactly as in evaluation plans — seven group
//! indices plus the FO4 depth that disambiguates the paper space from
//! the exploration space.

use udse_obs::Json;
use udse_trace::Benchmark;

use crate::oracle::Metrics;
use crate::plan::{benchmark_by_name, point_from_parts};
use crate::space::DesignPoint;

use super::{Axis, Constraint, Objective, OptimumEntry, PredictedPoint, Query, QueryResult};

/// Query/result document layout version, bumped on incompatible changes.
pub const QUERY_SCHEMA_VERSION: i64 = 1;

/// Rejects objects with keys outside `allowed` (and duplicate keys), so
/// wire documents with schema drift fail loudly.
fn check_keys(doc: &Json, ctx: &str, allowed: &[&str]) -> Result<(), String> {
    let Json::Obj(pairs) = doc else {
        return Err(format!("{ctx}: expected an object"));
    };
    for (i, (k, _)) in pairs.iter().enumerate() {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("{ctx}: unknown field `{k}`"));
        }
        if pairs[..i].iter().any(|(prev, _)| prev == k) {
            return Err(format!("{ctx}: duplicate field `{k}`"));
        }
    }
    Ok(())
}

fn check_version(doc: &Json, field: &str) -> Result<(), String> {
    let version = doc
        .get(field)
        .and_then(Json::as_i64)
        .ok_or_else(|| format!("missing {field} — not a query document"))?;
    if version != QUERY_SCHEMA_VERSION {
        return Err(format!(
            "unsupported {field} {version} (this build reads {QUERY_SCHEMA_VERSION})"
        ));
    }
    Ok(())
}

fn point_to_json(p: &DesignPoint) -> Json {
    let idx = [p.depth_idx, p.width_idx, p.regs_idx, p.resv_idx, p.il1_idx, p.dl1_idx, p.l2_idx];
    Json::obj([
        ("idx", Json::Arr(idx.iter().map(|&i| Json::Int(i as i64)).collect())),
        ("fo4", Json::Int(p.fo4() as i64)),
    ])
}

fn point_from_json(doc: &Json, ctx: &str) -> Result<DesignPoint, String> {
    check_keys(doc, ctx, &["idx", "fo4"])?;
    let idx_arr = doc
        .get("idx")
        .and_then(Json::as_arr)
        .filter(|a| a.len() == 7)
        .ok_or_else(|| format!("{ctx}: idx must be a 7-element array"))?;
    let mut idx = [0u8; 7];
    for (slot, v) in idx.iter_mut().zip(idx_arr) {
        *slot = v
            .as_i64()
            .filter(|&v| (0..=u8::MAX as i64).contains(&v))
            .ok_or_else(|| format!("{ctx}: non-integer group index"))? as u8;
    }
    let fo4 = doc
        .get("fo4")
        .and_then(Json::as_i64)
        .filter(|&v| v >= 0)
        .ok_or_else(|| format!("{ctx}: missing fo4"))? as u32;
    point_from_parts(idx, fo4)
        .ok_or_else(|| format!("{ctx}: indices {idx:?} with fo4 {fo4} fit no space"))
}

fn bench_to_json(b: Option<Benchmark>) -> Json {
    match b {
        Some(b) => Json::str(b.name()),
        None => Json::Null,
    }
}

fn bench_required(doc: &Json, ctx: &str) -> Result<Benchmark, String> {
    let name =
        doc.get("bench").and_then(Json::as_str).ok_or_else(|| format!("{ctx}: missing bench"))?;
    benchmark_by_name(name).ok_or_else(|| format!("{ctx}: unknown benchmark `{name}`"))
}

fn bench_optional(doc: &Json, ctx: &str) -> Result<Option<Benchmark>, String> {
    match doc.get("bench") {
        Some(Json::Null) => Ok(None),
        Some(Json::Str(name)) => benchmark_by_name(name)
            .map(Some)
            .ok_or_else(|| format!("{ctx}: unknown benchmark `{name}`")),
        _ => Err(format!("{ctx}: bench must be a benchmark name or null")),
    }
}

fn finite_f64(v: &Json, ctx: &str) -> Result<f64, String> {
    v.as_f64().filter(|f| f.is_finite()).ok_or_else(|| format!("{ctx}: expected a finite number"))
}

fn opt_f64_to_json(v: Option<f64>) -> Json {
    match v {
        Some(f) => Json::Float(f),
        None => Json::Null,
    }
}

fn opt_f64_from_json(doc: &Json, key: &str, ctx: &str) -> Result<Option<f64>, String> {
    match doc.get(key) {
        Some(Json::Null) => Ok(None),
        Some(v) => finite_f64(v, &format!("{ctx}.{key}")).map(Some),
        None => Err(format!("{ctx}: missing {key} (use null for unbounded)")),
    }
}

fn usize_field(doc: &Json, key: &str, ctx: &str) -> Result<usize, String> {
    doc.get(key)
        .and_then(Json::as_i64)
        .filter(|&v| v >= 0)
        .map(|v| v as usize)
        .ok_or_else(|| format!("{ctx}: missing or negative {key}"))
}

fn constraint_to_json(c: &Constraint) -> Json {
    Json::obj([
        ("axis", Json::str(c.axis.name())),
        ("min", opt_f64_to_json(c.min)),
        ("max", opt_f64_to_json(c.max)),
    ])
}

fn constraint_from_json(doc: &Json, ctx: &str) -> Result<Constraint, String> {
    check_keys(doc, ctx, &["axis", "min", "max"])?;
    let name =
        doc.get("axis").and_then(Json::as_str).ok_or_else(|| format!("{ctx}: missing axis"))?;
    let axis = Axis::by_name(name).ok_or_else(|| format!("{ctx}: unknown axis `{name}`"))?;
    Ok(Constraint {
        axis,
        min: opt_f64_from_json(doc, "min", ctx)?,
        max: opt_f64_from_json(doc, "max", ctx)?,
    })
}

fn constraints_to_json(cs: &[Constraint]) -> Json {
    Json::Arr(cs.iter().map(constraint_to_json).collect())
}

fn constraints_from_json(doc: &Json, ctx: &str) -> Result<Vec<Constraint>, String> {
    let rows = doc
        .get("constraints")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: missing constraints array"))?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| constraint_from_json(row, &format!("{ctx}.constraints[{i}]")))
        .collect()
}

fn objective_to_json(o: &Objective) -> Json {
    match o {
        Objective::Efficiency => Json::str("efficiency"),
        Objective::SuiteRelative(refs) => Json::obj([(
            "suite_relative",
            Json::Arr(refs.iter().map(|&r| Json::Float(r)).collect()),
        )]),
    }
}

fn objective_from_json(doc: &Json, ctx: &str) -> Result<Objective, String> {
    match doc.get("objective") {
        Some(Json::Str(s)) if s == "efficiency" => Ok(Objective::Efficiency),
        Some(obj @ Json::Obj(_)) => {
            check_keys(obj, &format!("{ctx}.objective"), &["suite_relative"])?;
            let refs = obj
                .get("suite_relative")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("{ctx}.objective: missing suite_relative array"))?;
            let refs = refs
                .iter()
                .enumerate()
                .map(|(i, v)| finite_f64(v, &format!("{ctx}.objective.suite_relative[{i}]")))
                .collect::<Result<Vec<f64>, String>>()?;
            Ok(Objective::SuiteRelative(refs))
        }
        _ => Err(format!("{ctx}: objective must be \"efficiency\" or {{\"suite_relative\": […]}}")),
    }
}

fn metrics_to_json(m: &Metrics) -> Json {
    Json::obj([("bips", Json::Float(m.bips)), ("watts", Json::Float(m.watts))])
}

fn metrics_from_json(doc: &Json, ctx: &str) -> Result<Metrics, String> {
    check_keys(doc, ctx, &["bips", "watts"])?;
    let field = |key: &str| {
        doc.get(key)
            .ok_or_else(|| format!("{ctx}: missing {key}"))
            .and_then(|v| finite_f64(v, &format!("{ctx}.{key}")))
    };
    Ok(Metrics { bips: field("bips")?, watts: field("watts")? })
}

fn row_to_json(row: &PredictedPoint) -> Json {
    Json::obj([
        ("point", point_to_json(&row.point)),
        ("predicted", metrics_to_json(&row.predicted)),
    ])
}

fn row_from_json(doc: &Json, ctx: &str) -> Result<PredictedPoint, String> {
    check_keys(doc, ctx, &["point", "predicted"])?;
    let point = doc.get("point").ok_or_else(|| format!("{ctx}: missing point"))?;
    let predicted = doc.get("predicted").ok_or_else(|| format!("{ctx}: missing predicted"))?;
    Ok(PredictedPoint {
        point: point_from_json(point, &format!("{ctx}.point"))?,
        predicted: metrics_from_json(predicted, &format!("{ctx}.predicted"))?,
    })
}

fn rows_to_json(rows: &[PredictedPoint]) -> Json {
    Json::Arr(rows.iter().map(row_to_json).collect())
}

fn rows_from_json(doc: &Json, key: &str, ctx: &str) -> Result<Vec<PredictedPoint>, String> {
    let rows =
        doc.get(key).and_then(Json::as_arr).ok_or_else(|| format!("{ctx}: missing {key} array"))?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| row_from_json(row, &format!("{ctx}.{key}[{i}]")))
        .collect()
}

impl Query {
    /// Serializes the query to its canonical versioned document. The same
    /// query always produces the same bytes.
    pub fn to_json(&self) -> Json {
        let head = |ty: &str| {
            vec![
                ("query_version".to_string(), Json::Int(QUERY_SCHEMA_VERSION)),
                ("type".to_string(), Json::str(ty)),
            ]
        };
        let mut pairs = match self {
            Query::Point { benchmark, point } => {
                let mut p = head("point");
                p.push(("bench".to_string(), Json::str(benchmark.name())));
                p.push(("point".to_string(), point_to_json(point)));
                p
            }
            Query::ConstrainedOptimum { benchmark, objective, constraints, stride } => {
                let mut p = head("constrained_optimum");
                p.push(("bench".to_string(), bench_to_json(*benchmark)));
                p.push(("objective".to_string(), objective_to_json(objective)));
                p.push(("constraints".to_string(), constraints_to_json(constraints)));
                p.push(("stride".to_string(), Json::Int(*stride as i64)));
                p
            }
            Query::ParetoSlice { benchmark, constraints, stride, bins } => {
                let mut p = head("pareto_slice");
                p.push(("bench".to_string(), Json::str(benchmark.name())));
                p.push(("constraints".to_string(), constraints_to_json(constraints)));
                p.push(("stride".to_string(), Json::Int(*stride as i64)));
                p.push(("bins".to_string(), Json::Int(*bins as i64)));
                p
            }
            Query::TopK { benchmark, constraints, stride, k } => {
                let mut p = head("top_k");
                p.push(("bench".to_string(), Json::str(benchmark.name())));
                p.push(("constraints".to_string(), constraints_to_json(constraints)));
                p.push(("stride".to_string(), Json::Int(*stride as i64)));
                p.push(("k".to_string(), Json::Int(*k as i64)));
                p
            }
            Query::WhatIf { benchmark, base, alternative } => {
                let mut p = head("what_if");
                p.push(("bench".to_string(), Json::str(benchmark.name())));
                p.push(("base".to_string(), point_to_json(base)));
                p.push(("alternative".to_string(), point_to_json(alternative)));
                p
            }
            Query::AxisSweep { benchmark, base, axis } => {
                let mut p = head("axis_sweep");
                p.push(("bench".to_string(), Json::str(benchmark.name())));
                p.push(("base".to_string(), point_to_json(base)));
                p.push(("axis".to_string(), Json::str(axis.name())));
                p
            }
        };
        Json::Obj(std::mem::take(&mut pairs))
    }

    /// Parses a query document.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, an unsupported `query_version`, an
    /// unknown `type`, unknown or duplicate fields at any level, unknown
    /// benchmark/axis names, or points that fit neither design space.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&doc)
    }

    /// Interprets an already-parsed document as a query.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Query::parse`].
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        check_version(doc, "query_version")?;
        let ty = doc.get("type").and_then(Json::as_str).ok_or("missing query type")?;
        match ty {
            "point" => {
                check_keys(doc, "point query", &["query_version", "type", "bench", "point"])?;
                Ok(Query::Point {
                    benchmark: bench_required(doc, "point query")?,
                    point: point_from_json(
                        doc.get("point").ok_or("point query: missing point")?,
                        "point query.point",
                    )?,
                })
            }
            "constrained_optimum" => {
                let ctx = "constrained_optimum query";
                check_keys(
                    doc,
                    ctx,
                    &["query_version", "type", "bench", "objective", "constraints", "stride"],
                )?;
                Ok(Query::ConstrainedOptimum {
                    benchmark: bench_optional(doc, ctx)?,
                    objective: objective_from_json(doc, ctx)?,
                    constraints: constraints_from_json(doc, ctx)?,
                    stride: usize_field(doc, "stride", ctx)?,
                })
            }
            "pareto_slice" => {
                let ctx = "pareto_slice query";
                check_keys(
                    doc,
                    ctx,
                    &["query_version", "type", "bench", "constraints", "stride", "bins"],
                )?;
                Ok(Query::ParetoSlice {
                    benchmark: bench_required(doc, ctx)?,
                    constraints: constraints_from_json(doc, ctx)?,
                    stride: usize_field(doc, "stride", ctx)?,
                    bins: usize_field(doc, "bins", ctx)?,
                })
            }
            "top_k" => {
                let ctx = "top_k query";
                check_keys(
                    doc,
                    ctx,
                    &["query_version", "type", "bench", "constraints", "stride", "k"],
                )?;
                Ok(Query::TopK {
                    benchmark: bench_required(doc, ctx)?,
                    constraints: constraints_from_json(doc, ctx)?,
                    stride: usize_field(doc, "stride", ctx)?,
                    k: usize_field(doc, "k", ctx)?,
                })
            }
            "what_if" => {
                let ctx = "what_if query";
                check_keys(doc, ctx, &["query_version", "type", "bench", "base", "alternative"])?;
                Ok(Query::WhatIf {
                    benchmark: bench_required(doc, ctx)?,
                    base: point_from_json(
                        doc.get("base").ok_or("what_if query: missing base")?,
                        "what_if query.base",
                    )?,
                    alternative: point_from_json(
                        doc.get("alternative").ok_or("what_if query: missing alternative")?,
                        "what_if query.alternative",
                    )?,
                })
            }
            "axis_sweep" => {
                let ctx = "axis_sweep query";
                check_keys(doc, ctx, &["query_version", "type", "bench", "base", "axis"])?;
                let name = doc
                    .get("axis")
                    .and_then(Json::as_str)
                    .ok_or("axis_sweep query: missing axis")?;
                Ok(Query::AxisSweep {
                    benchmark: bench_required(doc, ctx)?,
                    base: point_from_json(
                        doc.get("base").ok_or("axis_sweep query: missing base")?,
                        "axis_sweep query.base",
                    )?,
                    axis: Axis::by_name(name)
                        .ok_or_else(|| format!("axis_sweep query: unknown axis `{name}`"))?,
                })
            }
            other => Err(format!("unknown query type `{other}`")),
        }
    }
}

fn entry_to_json(e: &OptimumEntry) -> Json {
    Json::obj([
        ("bench", bench_to_json(e.benchmark)),
        ("point", point_to_json(&e.point)),
        (
            "predicted",
            match &e.predicted {
                Some(m) => metrics_to_json(m),
                None => Json::Null,
            },
        ),
        ("score", Json::Float(e.score)),
    ])
}

fn entry_from_json(doc: &Json, ctx: &str) -> Result<OptimumEntry, String> {
    check_keys(doc, ctx, &["bench", "point", "predicted", "score"])?;
    let predicted = match doc.get("predicted") {
        Some(Json::Null) => None,
        Some(m) => Some(metrics_from_json(m, &format!("{ctx}.predicted"))?),
        None => {
            return Err(format!("{ctx}: missing predicted (use null for aggregate objectives)"))
        }
    };
    let score = doc
        .get("score")
        .ok_or_else(|| format!("{ctx}: missing score"))
        .and_then(|v| finite_f64(v, &format!("{ctx}.score")))?;
    Ok(OptimumEntry {
        benchmark: bench_optional(doc, ctx)?,
        point: point_from_json(
            doc.get("point").ok_or_else(|| format!("{ctx}: missing point"))?,
            &format!("{ctx}.point"),
        )?,
        predicted,
        score,
    })
}

impl QueryResult {
    /// Serializes the result to its canonical versioned document. The
    /// same result always produces the same bytes, so materialized
    /// results can be compared and cached by their serialization.
    pub fn to_json(&self) -> Json {
        let head = |ty: &str| {
            vec![
                ("result_version".to_string(), Json::Int(QUERY_SCHEMA_VERSION)),
                ("type".to_string(), Json::str(ty)),
            ]
        };
        let mut pairs = match self {
            QueryResult::Point { benchmark, row } => {
                let mut p = head("point");
                p.push(("bench".to_string(), Json::str(benchmark.name())));
                p.push(("row".to_string(), row_to_json(row)));
                p
            }
            QueryResult::Optima { entries } => {
                let mut p = head("optima");
                p.push((
                    "entries".to_string(),
                    Json::Arr(entries.iter().map(entry_to_json).collect()),
                ));
                p
            }
            QueryResult::Frontier { benchmark, designs } => {
                let mut p = head("frontier");
                p.push(("bench".to_string(), Json::str(benchmark.name())));
                p.push(("designs".to_string(), rows_to_json(designs)));
                p
            }
            QueryResult::Ranking { benchmark, entries } => {
                let mut p = head("ranking");
                p.push(("bench".to_string(), Json::str(benchmark.name())));
                p.push(("entries".to_string(), rows_to_json(entries)));
                p
            }
            QueryResult::Delta { benchmark, base, alternative } => {
                let mut p = head("delta");
                p.push(("bench".to_string(), Json::str(benchmark.name())));
                p.push(("base".to_string(), row_to_json(base)));
                p.push(("alternative".to_string(), row_to_json(alternative)));
                // Derived, recomputed on every serialization from the
                // stored rows, so parse → serialize stays byte-identical.
                p.push((
                    "delta".to_string(),
                    Json::obj([
                        ("bips", Json::Float(alternative.predicted.bips - base.predicted.bips)),
                        ("watts", Json::Float(alternative.predicted.watts - base.predicted.watts)),
                    ]),
                ));
                p
            }
            QueryResult::Sweep { benchmark, axis, rows } => {
                let mut p = head("sweep");
                p.push(("bench".to_string(), Json::str(benchmark.name())));
                p.push(("axis".to_string(), Json::str(axis.name())));
                p.push(("rows".to_string(), rows_to_json(rows)));
                p
            }
        };
        Json::Obj(std::mem::take(&mut pairs))
    }

    /// Parses a result document.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, an unsupported `result_version`, an
    /// unknown `type`, or unknown/duplicate fields at any level.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json(&doc)
    }

    /// Interprets an already-parsed document as a result.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QueryResult::parse`].
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        check_version(doc, "result_version")?;
        let ty = doc.get("type").and_then(Json::as_str).ok_or("missing result type")?;
        match ty {
            "point" => {
                check_keys(doc, "point result", &["result_version", "type", "bench", "row"])?;
                Ok(QueryResult::Point {
                    benchmark: bench_required(doc, "point result")?,
                    row: row_from_json(
                        doc.get("row").ok_or("point result: missing row")?,
                        "point result.row",
                    )?,
                })
            }
            "optima" => {
                check_keys(doc, "optima result", &["result_version", "type", "entries"])?;
                let rows = doc
                    .get("entries")
                    .and_then(Json::as_arr)
                    .ok_or("optima result: missing entries array")?;
                Ok(QueryResult::Optima {
                    entries: rows
                        .iter()
                        .enumerate()
                        .map(|(i, row)| {
                            entry_from_json(row, &format!("optima result.entries[{i}]"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                })
            }
            "frontier" => {
                let ctx = "frontier result";
                check_keys(doc, ctx, &["result_version", "type", "bench", "designs"])?;
                Ok(QueryResult::Frontier {
                    benchmark: bench_required(doc, ctx)?,
                    designs: rows_from_json(doc, "designs", ctx)?,
                })
            }
            "ranking" => {
                let ctx = "ranking result";
                check_keys(doc, ctx, &["result_version", "type", "bench", "entries"])?;
                Ok(QueryResult::Ranking {
                    benchmark: bench_required(doc, ctx)?,
                    entries: rows_from_json(doc, "entries", ctx)?,
                })
            }
            "delta" => {
                let ctx = "delta result";
                check_keys(
                    doc,
                    ctx,
                    &["result_version", "type", "bench", "base", "alternative", "delta"],
                )?;
                // `delta` is derived from the rows; validate its shape if
                // present but take the stored rows as the truth.
                if let Some(d) = doc.get("delta") {
                    metrics_from_json(d, "delta result.delta")?;
                }
                Ok(QueryResult::Delta {
                    benchmark: bench_required(doc, ctx)?,
                    base: row_from_json(
                        doc.get("base").ok_or("delta result: missing base")?,
                        "delta result.base",
                    )?,
                    alternative: row_from_json(
                        doc.get("alternative").ok_or("delta result: missing alternative")?,
                        "delta result.alternative",
                    )?,
                })
            }
            "sweep" => {
                let ctx = "sweep result";
                check_keys(doc, ctx, &["result_version", "type", "bench", "axis", "rows"])?;
                let name =
                    doc.get("axis").and_then(Json::as_str).ok_or("sweep result: missing axis")?;
                Ok(QueryResult::Sweep {
                    benchmark: bench_required(doc, ctx)?,
                    axis: Axis::by_name(name)
                        .ok_or_else(|| format!("sweep result: unknown axis `{name}`"))?,
                    rows: rows_from_json(doc, "rows", ctx)?,
                })
            }
            other => Err(format!("unknown result type `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::DesignSpace;

    fn p(i: u64) -> DesignPoint {
        DesignSpace::exploration().decode(i).unwrap()
    }

    fn sample_queries() -> Vec<Query> {
        vec![
            Query::point(Benchmark::Ammp, p(0)),
            Query::optimum(
                Some(Benchmark::Mcf),
                vec![
                    Constraint::at_most(Axis::Dl1Kb, 64.0),
                    Constraint::exactly(Axis::DepthFo4, 18.0),
                ],
                500,
            ),
            Query::optimum(None, vec![], 1),
            Query::suite_optimum(vec![1.0; 9], vec![Constraint::at_least(Axis::Width, 4.0)], 250),
            Query::pareto(Benchmark::Jbb, vec![Constraint::at_most(Axis::L2Kb, 1024.0)], 500, 40),
            Query::top_k(Benchmark::Mesa, vec![], 500, 10),
            Query::what_if(Benchmark::Twolf, p(7), p(1234)),
            Query::axis_sweep(Benchmark::Gcc, p(99), Axis::Dl1Kb),
        ]
    }

    #[test]
    fn queries_round_trip_byte_identically() {
        for q in sample_queries() {
            let text = q.to_json().to_string_pretty();
            let back = Query::parse(&text).expect("canonical query parses");
            assert_eq!(back, q);
            assert_eq!(back.to_json().to_string_pretty(), text, "byte identity for {q:?}");
        }
    }

    #[test]
    fn results_round_trip_byte_identically() {
        let row = |i: u64, bips: f64, watts: f64| PredictedPoint {
            point: p(i),
            predicted: Metrics { bips, watts },
        };
        let results = vec![
            QueryResult::Point { benchmark: Benchmark::Ammp, row: row(0, 1.25, 42.5) },
            QueryResult::Optima {
                entries: vec![
                    OptimumEntry {
                        benchmark: Some(Benchmark::Mcf),
                        point: p(3),
                        predicted: Some(Metrics { bips: 2.0, watts: 30.0 }),
                        score: 8.0 / 30.0,
                    },
                    OptimumEntry { benchmark: None, point: p(4), predicted: None, score: 1.5 },
                ],
            },
            QueryResult::Frontier {
                benchmark: Benchmark::Jbb,
                designs: vec![row(1, 1.0, 10.0), row(2, 2.0, 20.0)],
            },
            QueryResult::Ranking { benchmark: Benchmark::Mesa, entries: vec![row(5, 3.0, 25.0)] },
            QueryResult::Delta {
                benchmark: Benchmark::Twolf,
                base: row(7, 1.0, 50.0),
                alternative: row(8, 1.5, 55.5),
            },
            QueryResult::Sweep {
                benchmark: Benchmark::Gcc,
                axis: Axis::L2Kb,
                rows: vec![row(9, 0.5, 12.5)],
            },
        ];
        for r in results {
            let text = r.to_json().to_string_pretty();
            let back = QueryResult::parse(&text).expect("canonical result parses");
            assert_eq!(back, r);
            assert_eq!(back.to_json().to_string_pretty(), text, "byte identity for {r:?}");
        }
    }

    #[test]
    fn unknown_fields_are_rejected_at_every_level() {
        let q = sample_queries().remove(1);
        let Json::Obj(mut pairs) = q.to_json() else { panic!("queries serialize to objects") };
        pairs.push(("surprise".to_string(), Json::Int(1)));
        let err = Query::from_json(&Json::Obj(pairs)).unwrap_err();
        assert!(err.contains("unknown field `surprise`"), "{err}");

        let nested = r#"{"query_version": 1, "type": "point", "bench": "ammp",
            "point": {"idx": [0,0,0,0,0,0,0], "fo4": 9, "extra": true}}"#;
        assert!(Query::parse(nested).unwrap_err().contains("unknown field `extra`"));
    }

    #[test]
    fn malformed_documents_error_cleanly() {
        assert!(Query::parse("not json").is_err());
        assert!(Query::parse("{}").unwrap_err().contains("missing query_version"));
        assert!(Query::parse(r#"{"query_version": 99, "type": "point"}"#)
            .unwrap_err()
            .contains("unsupported query_version"));
        assert!(Query::parse(r#"{"query_version": 1, "type": "nope"}"#)
            .unwrap_err()
            .contains("unknown query type"));
        assert!(QueryResult::parse("{}").unwrap_err().contains("missing result_version"));
        let dup = r#"{"query_version": 1, "type": "point", "bench": "ammp", "bench": "mcf",
            "point": {"idx": [0,0,0,0,0,0,0], "fo4": 9}}"#;
        assert!(Query::parse(dup).unwrap_err().contains("duplicate field `bench`"));
        let bad_axis = r#"{"query_version": 1, "type": "constrained_optimum", "bench": null,
            "objective": "efficiency",
            "constraints": [{"axis": "l3_kb", "min": null, "max": 1.0}], "stride": 1}"#;
        assert!(Query::parse(bad_axis).unwrap_err().contains("unknown axis"));
    }

    #[test]
    fn lenient_integer_floats_canonicalize() {
        // A hand-written `"max": 64` (Int) parses, and re-serializes in
        // canonical float form.
        let text = r#"{"query_version": 1, "type": "constrained_optimum", "bench": "mcf",
            "objective": "efficiency",
            "constraints": [{"axis": "dl1_kb", "min": null, "max": 64}], "stride": 500}"#;
        let q = Query::parse(text).unwrap();
        assert!(q.to_json().to_string_compact().contains("\"max\":64.0"));
    }
}
