//! The query engine: one owner for the compiled suite, the memoized
//! full-space characterization, the constraint-pushdown grid walks, and
//! a byte-budgeted LRU of materialized results.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use udse_trace::Benchmark;

use crate::model::SuiteLanes;
use crate::oracle::Metrics;
use crate::pareto::ParetoFrontier;
use crate::space::{DesignPoint, DesignSpace};
use crate::studies::pareto::{sweep_designs, PredictedDesign};
use crate::studies::{
    record_sweep, strided_count, sweep_allocs_snapshot, CompiledSuite, StudyConfig, TrainedSuite,
};

use super::{Axis, Constraint, Objective, OptimumEntry, PredictedPoint, Query, QueryResult};

/// Default result-cache budget: generous for optimum/frontier/ranking
/// results (tens of bytes to a few KB each) while bounding a long-lived
/// serving process.
const DEFAULT_RESULT_BUDGET: usize = 64 * 1024 * 1024;

/// Per-axis inclusive level bounds — the pushed-down form of a
/// constraint list. Every axis's physical values increase strictly with
/// the level index, so a value interval maps to one level interval and
/// the walk filter is seven `u8` range checks per visited point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Mask {
    lo: [u8; 7],
    hi: [u8; 7],
}

impl Mask {
    /// Folds value constraints into level bounds for `space`.
    ///
    /// # Errors
    ///
    /// Fails when any axis's admissible level interval is empty (the
    /// constraints exclude every design).
    fn pushdown(space: &DesignSpace, constraints: &[Constraint]) -> Result<Mask, String> {
        let dims = space.dimensions();
        let mut lo = [0u8; 7];
        let mut hi = [0u8; 7];
        for (h, &d) in hi.iter_mut().zip(&dims) {
            *h = d - 1;
        }
        for c in constraints {
            let s = c.axis.slot();
            if let Some(min) = c.min {
                let tight = (0..dims[s]).find(|&l| c.axis.level_value(space, l) >= min);
                match tight {
                    Some(l) => lo[s] = lo[s].max(l),
                    None => {
                        return Err(format!(
                            "no {} level is >= {min} (largest is {})",
                            c.axis.name(),
                            c.axis.level_value(space, dims[s] - 1),
                        ))
                    }
                }
            }
            if let Some(max) = c.max {
                let tight = (0..dims[s]).rev().find(|&l| c.axis.level_value(space, l) <= max);
                match tight {
                    Some(l) => hi[s] = hi[s].min(l),
                    None => {
                        return Err(format!(
                            "no {} level is <= {max} (smallest is {})",
                            c.axis.name(),
                            c.axis.level_value(space, 0),
                        ))
                    }
                }
            }
            if lo[s] > hi[s] {
                return Err(format!("constraints on {} exclude every level", c.axis.name()));
            }
        }
        Ok(Mask { lo, hi })
    }

    fn allows(&self, p: &DesignPoint) -> bool {
        let idx =
            [p.depth_idx, p.width_idx, p.regs_idx, p.resv_idx, p.il1_idx, p.dl1_idx, p.l2_idx];
        idx.iter().zip(self.lo.iter().zip(&self.hi)).all(|(&i, (&lo, &hi))| i >= lo && i <= hi)
    }
}

struct CacheEntry {
    result: Arc<QueryResult>,
    bytes: usize,
    tick: u64,
}

/// Byte-budgeted LRU keyed by the query's canonical compact JSON.
/// Eviction scans for the least-recently-used entry — entry counts stay
/// small (the budget divided by at-least-row-sized results), so the
/// linear scan is cheaper than an intrusive list and keeps the map flat.
struct ResultCache {
    entries: HashMap<String, CacheEntry>,
    used: usize,
    budget: usize,
    clock: u64,
}

impl ResultCache {
    fn new(budget: usize) -> Self {
        ResultCache { entries: HashMap::new(), used: 0, budget, clock: 0 }
    }

    fn get(&mut self, key: &str) -> Option<Arc<QueryResult>> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|e| {
            e.tick = clock;
            Arc::clone(&e.result)
        })
    }

    fn insert(&mut self, key: String, result: Arc<QueryResult>) {
        let bytes = key.len() + result.approx_bytes();
        if bytes > self.budget {
            // Larger than the whole budget: serving it uncached beats
            // flushing everything else.
            return;
        }
        while self.used + bytes > self.budget {
            let Some(victim) =
                self.entries.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| k.clone())
            else {
                break;
            };
            let evicted = self.entries.remove(&victim).expect("victim key present");
            self.used -= evicted.bytes;
            udse_obs::metrics::counter("query.cache.evictions").add(1);
        }
        self.clock += 1;
        self.used += bytes;
        self.entries.insert(key, CacheEntry { result, bytes, tick: self.clock });
        udse_obs::metrics::gauge("query.cache.bytes").set(self.used as f64);
    }
}

/// Executes [`Query`] values against one trained suite.
///
/// The engine owns the suite compiled onto the exploration grid, the
/// stacked [`SuiteLanes`] the fused walks run on, the memoized
/// full-space characterization every Pareto/ranking query slices, and a
/// byte-budgeted LRU of materialized results keyed by the query's
/// canonical serialization. Execution records `query.executed`,
/// `query.cache.{hits,misses}`, and `query.designs_per_sec` into the
/// ambient metrics registry, alongside the same `sweep.*` metrics the
/// pre-engine study sweeps recorded.
///
/// Scanning queries (constrained optimum, Pareto slice, top-K) evaluate
/// the *compiled* models over chunk-parallel grid walks with the
/// last-maximal-element-wins tie-break applied inside chunks and across
/// the in-order fold, so answers are bitwise-identical to sequential
/// scans and independent of worker count. Point-shaped queries (point,
/// what-if, axis sweep) evaluate the *uncompiled* spline models — the
/// flavor the validation studies always used (compiled and uncompiled
/// predictions agree only to ~1e-12, so the distinction is load-bearing
/// for bitwise reproducibility).
pub struct Engine {
    suite: TrainedSuite,
    compiled: CompiledSuite,
    lanes: SuiteLanes,
    space: DesignSpace,
    stride: usize,
    sweep: Mutex<Option<Arc<Vec<Vec<PredictedDesign>>>>>,
    cache: Mutex<ResultCache>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine").field("stride", &self.stride).finish_non_exhaustive()
    }
}

impl Engine {
    /// Builds an engine over the exploration space, compiling the suite
    /// once. `config.eval_stride` becomes the stride the memoized
    /// characterization is materialized at.
    pub fn new(suite: TrainedSuite, config: &StudyConfig) -> Self {
        let space = DesignSpace::exploration();
        let compiled = suite.compile(&space);
        let lanes = compiled.lanes();
        Engine {
            suite,
            compiled,
            lanes,
            space,
            stride: config.eval_stride,
            sweep: Mutex::new(None),
            cache: Mutex::new(ResultCache::new(DEFAULT_RESULT_BUDGET)),
        }
    }

    /// Replaces the result-cache byte budget (0 disables caching).
    pub fn with_result_budget(self, bytes: usize) -> Self {
        Engine { cache: Mutex::new(ResultCache::new(bytes)), ..self }
    }

    /// The trained (uncompiled) suite.
    pub fn suite(&self) -> &TrainedSuite {
        &self.suite
    }

    /// The suite compiled onto the exploration grid.
    pub fn compiled(&self) -> &CompiledSuite {
        &self.compiled
    }

    /// The exploration space the engine scans.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The stride of the memoized characterization.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The memoized full-space characterization: every strided design's
    /// predicted metrics for all nine benchmarks, materialized from one
    /// fused grid walk on first use and shared thereafter. Identical to
    /// a sequential walk regardless of worker count.
    pub fn full_sweep(&self) -> Arc<Vec<Vec<PredictedDesign>>> {
        let mut slot = self.sweep.lock().expect("sweep memo lock");
        if let Some(designs) = slot.as_ref() {
            return Arc::clone(designs);
        }
        let designs = Arc::new(self.sweep_at(self.stride));
        *slot = Some(Arc::clone(&designs));
        designs
    }

    /// Runs the fused characterization walk at an explicit stride,
    /// recording the `sweep.*` metrics (throughput, allocations).
    fn sweep_at(&self, stride: usize) -> Vec<Vec<PredictedDesign>> {
        let _span = udse_obs::span::enter("sweep");
        let allocs0 = sweep_allocs_snapshot();
        let started = Instant::now();
        let designs = sweep_designs(&self.lanes, &self.space, stride);
        let swept: u64 = designs.iter().map(|d| d.len() as u64).sum();
        let rate = record_sweep(swept, started.elapsed().as_secs_f64(), allocs0);
        udse_obs::info!(
            "sweep",
            "characterized {} designs across {} benchmarks in one fused walk at {:.0} designs/sec",
            swept,
            designs.len(),
            rate
        );
        designs
    }

    /// The characterization at `stride`: the memo when it matches the
    /// engine stride, a fresh unmemoized walk otherwise.
    fn designs_at(&self, stride: usize) -> Arc<Vec<Vec<PredictedDesign>>> {
        if stride == self.stride {
            self.full_sweep()
        } else {
            Arc::new(self.sweep_at(stride))
        }
    }

    /// Executes a query, serving repeats from the result LRU. The cache
    /// key is the query's canonical serialization, so structurally equal
    /// queries always share an entry; cached results come back as the
    /// same `Arc`, bitwise-equal by construction.
    ///
    /// # Errors
    ///
    /// Fails on unsatisfiable constraints, a [`Objective::SuiteRelative`]
    /// reference vector of the wrong length or paired with a single
    /// benchmark, `k == 0` / `bins == 0`, or a point whose space the
    /// engine does not scan (never for points, which predict uncompiled).
    pub fn execute(&self, query: &Query) -> Result<Arc<QueryResult>, String> {
        let _span = udse_obs::span::enter("query");
        udse_obs::metrics::counter("query.executed").add(1);
        let key = query.to_json().to_string_compact();
        if let Some(hit) = self.cache.lock().expect("result cache lock").get(&key) {
            udse_obs::metrics::counter("query.cache.hits").add(1);
            return Ok(hit);
        }
        udse_obs::metrics::counter("query.cache.misses").add(1);
        let result = Arc::new(self.compute(query)?);
        self.cache.lock().expect("result cache lock").insert(key, Arc::clone(&result));
        Ok(result)
    }

    fn compute(&self, query: &Query) -> Result<QueryResult, String> {
        match query {
            Query::Point { benchmark, point } => Ok(QueryResult::Point {
                benchmark: *benchmark,
                row: self.predict_row(*benchmark, *point),
            }),
            Query::WhatIf { benchmark, base, alternative } => Ok(QueryResult::Delta {
                benchmark: *benchmark,
                base: self.predict_row(*benchmark, *base),
                alternative: self.predict_row(*benchmark, *alternative),
            }),
            Query::AxisSweep { benchmark, base, axis } => self.axis_sweep(*benchmark, *base, *axis),
            Query::ConstrainedOptimum { benchmark, objective, constraints, stride } => {
                self.constrained_optimum(*benchmark, objective, constraints, *stride)
            }
            Query::ParetoSlice { benchmark, constraints, stride, bins } => {
                self.pareto_slice(*benchmark, constraints, *stride, *bins)
            }
            Query::TopK { benchmark, constraints, stride, k } => {
                self.top_k(*benchmark, constraints, *stride, *k)
            }
        }
    }

    /// One uncompiled model evaluation — the exact arithmetic
    /// `PaperModels::predict_bips` / `predict_watts` perform.
    fn predict_row(&self, benchmark: Benchmark, point: DesignPoint) -> PredictedPoint {
        PredictedPoint { point, predicted: self.suite.models(benchmark).predict_metrics(&point) }
    }

    fn axis_sweep(
        &self,
        benchmark: Benchmark,
        base: DesignPoint,
        axis: Axis,
    ) -> Result<QueryResult, String> {
        // Sweep within the space the base point belongs to; the depth
        // value picks it (paper and exploration depth lists never agree
        // at the same index).
        let space = [DesignSpace::paper(), DesignSpace::exploration()]
            .into_iter()
            .find(|s| s.point(s.indices(&base)).is_some_and(|p| p.fo4() == base.fo4()))
            .ok_or("axis_sweep: base point fits no space")?;
        let mut idx = space.indices(&base);
        let levels = space.dimensions()[axis.slot()];
        let rows = (0..levels)
            .map(|level| {
                idx[axis.slot()] = level;
                let p = space.point(idx).expect("level within the axis dimension");
                self.predict_row(benchmark, p)
            })
            .collect();
        Ok(QueryResult::Sweep { benchmark, axis, rows })
    }

    fn constrained_optimum(
        &self,
        benchmark: Option<Benchmark>,
        objective: &Objective,
        constraints: &[Constraint],
        stride: usize,
    ) -> Result<QueryResult, String> {
        match (benchmark, objective) {
            (Some(b), Objective::Efficiency) => {
                // Project the fused all-benchmarks walk, so nine
                // per-benchmark requests under the same constraints cost
                // one walk plus eight cache hits.
                let all = self.execute(&Query::ConstrainedOptimum {
                    benchmark: None,
                    objective: Objective::Efficiency,
                    constraints: constraints.to_vec(),
                    stride,
                })?;
                let entries = all.optima().expect("efficiency optimum yields optima");
                Ok(QueryResult::Optima { entries: vec![entries[b.id() as usize].clone()] })
            }
            (None, Objective::Efficiency) => {
                let mask = Mask::pushdown(&self.space, constraints)?;
                self.efficiency_optima(&mask, stride)
            }
            (None, Objective::SuiteRelative(refs)) => {
                if refs.len() != self.lanes.pairs() {
                    return Err(format!(
                        "suite_relative needs {} references, got {}",
                        self.lanes.pairs(),
                        refs.len()
                    ));
                }
                let mask = Mask::pushdown(&self.space, constraints)?;
                self.suite_relative_optimum(&mask, refs, stride)
            }
            (Some(_), Objective::SuiteRelative(_)) => {
                Err("suite_relative aggregates the whole suite; bench must be null".to_string())
            }
        }
    }

    /// The fused per-benchmark argmax walk (formerly
    /// `studies::predicted_efficiency_optima`), with the constraint mask
    /// gating candidate updates. Ties break toward the point visited
    /// *last* in the sequential walk — the element `Iterator::max_by`
    /// would return — enforced inside each chunk and across the in-order
    /// chunk fold, so winners are independent of chunk boundaries.
    fn efficiency_optima(&self, mask: &Mask, stride: usize) -> Result<QueryResult, String> {
        let space = &self.space;
        let lanes = &self.lanes;
        let total = strided_count(space, stride);
        let pairs = lanes.pairs();
        let allocs0 = sweep_allocs_snapshot();
        let started = Instant::now();
        let chunk_bests = udse_obs::pool::map_chunks(total, |range| {
            let _chunk = udse_obs::span::enter("chunk");
            let mut best: Vec<Option<(DesignPoint, Metrics, f64)>> = vec![None; pairs];
            let mut walker = lanes.walker(space, stride);
            walker.walk(range, |p, metrics| {
                if !mask.allows(&p) {
                    return;
                }
                for (b, m) in best.iter_mut().zip(metrics) {
                    let eff = m.bips_cubed_per_watt();
                    // `>=` replaces: the last maximal element wins, as in
                    // a sequential `max_by` over the same walk.
                    if b.as_ref().is_none_or(|cur| eff.total_cmp(&cur.2) != Ordering::Less) {
                        *b = Some((p, *m, eff));
                    }
                }
            });
            best
        });
        let rate = record_sweep(total * pairs as u64, started.elapsed().as_secs_f64(), allocs0);
        if rate > 0.0 {
            udse_obs::metrics::gauge("query.designs_per_sec").set(rate);
        }
        let mut best: Vec<Option<(DesignPoint, Metrics, f64)>> = vec![None; pairs];
        for chunk in chunk_bests {
            for (cur, next) in best.iter_mut().zip(chunk) {
                let Some(next) = next else { continue };
                // Chunks arrive in range order; `>=` keeps the later
                // chunk on ties.
                if cur.as_ref().is_none_or(|c| next.2.total_cmp(&c.2) != Ordering::Less) {
                    *cur = Some(next);
                }
            }
        }
        let entries = Benchmark::ALL
            .iter()
            .zip(best)
            .map(|(&b, win)| {
                win.map(|(point, m, eff)| OptimumEntry {
                    benchmark: Some(b),
                    point,
                    predicted: Some(m),
                    score: eff,
                })
                .ok_or("constraints exclude every design in the strided walk".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(QueryResult::Optima { entries })
    }

    /// The suite-aggregate argmax walk: one winner maximizing the mean
    /// over benchmarks of `bips^3/w / reference` — the depth study's
    /// bound objective, arithmetic-for-arithmetic.
    fn suite_relative_optimum(
        &self,
        mask: &Mask,
        refs: &[f64],
        stride: usize,
    ) -> Result<QueryResult, String> {
        let space = &self.space;
        let lanes = &self.lanes;
        let total = strided_count(space, stride);
        let n = refs.len() as f64;
        let allocs0 = sweep_allocs_snapshot();
        let started = Instant::now();
        let chunk_bests = udse_obs::pool::map_chunks(total, |range| {
            let _chunk = udse_obs::span::enter("chunk");
            let mut best: Option<(DesignPoint, f64)> = None;
            let mut walker = lanes.walker(space, stride);
            walker.walk(range, |p, metrics| {
                if !mask.allows(&p) {
                    return;
                }
                let score = metrics
                    .iter()
                    .zip(refs)
                    .map(|(m, &r)| m.bips_cubed_per_watt() / r)
                    .sum::<f64>()
                    / n;
                if best.as_ref().is_none_or(|cur| score.total_cmp(&cur.1) != Ordering::Less) {
                    best = Some((p, score));
                }
            });
            best
        });
        let rate = record_sweep(total, started.elapsed().as_secs_f64(), allocs0);
        if rate > 0.0 {
            udse_obs::metrics::gauge("query.designs_per_sec").set(rate);
        }
        let mut best: Option<(DesignPoint, f64)> = None;
        for next in chunk_bests.into_iter().flatten() {
            if best.as_ref().is_none_or(|cur| next.1.total_cmp(&cur.1) != Ordering::Less) {
                best = Some(next);
            }
        }
        let (point, score) = best.ok_or("constraints exclude every design in the strided walk")?;
        Ok(QueryResult::Optima {
            entries: vec![OptimumEntry { benchmark: None, point, predicted: None, score }],
        })
    }

    fn pareto_slice(
        &self,
        benchmark: Benchmark,
        constraints: &[Constraint],
        stride: usize,
        bins: usize,
    ) -> Result<QueryResult, String> {
        if bins == 0 {
            return Err("pareto_slice needs at least one delay bin".to_string());
        }
        let mask = Mask::pushdown(&self.space, constraints)?;
        let sweep = self.designs_at(stride);
        let designs = &sweep[benchmark.id() as usize];
        let admitted: Vec<&PredictedDesign> =
            designs.iter().filter(|d| mask.allows(&d.point)).collect();
        if admitted.is_empty() {
            return Err("constraints exclude every design in the strided walk".to_string());
        }
        let pts: Vec<(f64, f64)> =
            admitted.iter().map(|d| (d.predicted.delay_seconds(), d.predicted.watts)).collect();
        let frontier = ParetoFrontier::from_points(&pts, bins);
        let rows = frontier
            .indices()
            .iter()
            .map(|&i| PredictedPoint { point: admitted[i].point, predicted: admitted[i].predicted })
            .collect();
        Ok(QueryResult::Frontier { benchmark, designs: rows })
    }

    fn top_k(
        &self,
        benchmark: Benchmark,
        constraints: &[Constraint],
        stride: usize,
        k: usize,
    ) -> Result<QueryResult, String> {
        if k == 0 {
            return Err("top_k needs k >= 1".to_string());
        }
        let mask = Mask::pushdown(&self.space, constraints)?;
        let sweep = self.designs_at(stride);
        let designs = &sweep[benchmark.id() as usize];
        let admitted: Vec<&PredictedDesign> =
            designs.iter().filter(|d| mask.allows(&d.point)).collect();
        if admitted.is_empty() {
            return Err("constraints exclude every design in the strided walk".to_string());
        }
        let mut order: Vec<usize> = (0..admitted.len()).collect();
        // Stable sort: equal efficiencies keep walk order.
        order.sort_by(|&a, &b| {
            admitted[b]
                .predicted
                .bips_cubed_per_watt()
                .total_cmp(&admitted[a].predicted.bips_cubed_per_watt())
        });
        let entries = order
            .into_iter()
            .take(k)
            .map(|i| PredictedPoint { point: admitted[i].point, predicted: admitted[i].predicted })
            .collect();
        Ok(QueryResult::Ranking { benchmark, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::studies::tests::TinyOracle;

    fn engine() -> Engine {
        let config = StudyConfig::quick();
        let suite = TrainedSuite::train(&TinyOracle, &config).unwrap();
        Engine::new(suite, &config)
    }

    #[test]
    fn point_query_matches_uncompiled_models_bitwise() {
        let e = engine();
        let p = DesignSpace::paper().decode(123_456).unwrap();
        let r = e.execute(&Query::point(Benchmark::Mcf, p)).unwrap();
        let m = r.point_metrics().unwrap();
        let direct = e.suite().models(Benchmark::Mcf).predict_metrics(&p);
        assert_eq!(m.bips.to_bits(), direct.bips.to_bits());
        assert_eq!(m.watts.to_bits(), direct.watts.to_bits());
    }

    #[test]
    fn unconstrained_optima_match_sequential_max_by() {
        let e = engine();
        let r = e.execute(&Query::optimum(None, vec![], e.stride())).unwrap();
        let entries = r.optima().unwrap();
        assert_eq!(entries.len(), 9);
        let sweep = e.full_sweep();
        for (b, entry) in Benchmark::ALL.iter().zip(entries) {
            assert_eq!(entry.benchmark, Some(*b));
            let reference = sweep[b.id() as usize]
                .iter()
                .max_by(|a, b| {
                    a.predicted.bips_cubed_per_watt().total_cmp(&b.predicted.bips_cubed_per_watt())
                })
                .unwrap();
            assert_eq!(entry.point, reference.point, "argmax for {b:?}");
            assert_eq!(entry.score.to_bits(), reference.predicted.bips_cubed_per_watt().to_bits());
        }
    }

    #[test]
    fn constrained_optimum_respects_pushdown_and_matches_filtered_scan() {
        let e = engine();
        let constraints =
            vec![Constraint::at_most(Axis::Dl1Kb, 64.0), Constraint::exactly(Axis::DepthFo4, 18.0)];
        let r = e.execute(&Query::optimum(Some(Benchmark::Jbb), constraints.clone(), e.stride()));
        let r = r.unwrap();
        let entry = &r.optima().unwrap()[0];
        assert!(entry.point.dl1_kb() <= 64);
        assert_eq!(entry.point.fo4(), 18);
        let sweep = e.full_sweep();
        let reference = sweep[Benchmark::Jbb.id() as usize]
            .iter()
            .filter(|d| d.point.dl1_kb() <= 64 && d.point.fo4() == 18)
            .max_by(|a, b| {
                a.predicted.bips_cubed_per_watt().total_cmp(&b.predicted.bips_cubed_per_watt())
            })
            .unwrap();
        assert_eq!(entry.point, reference.point);
        assert_eq!(entry.predicted.unwrap().bips.to_bits(), reference.predicted.bips.to_bits());
    }

    #[test]
    fn suite_relative_optimum_matches_bucketed_max() {
        let e = engine();
        let refs: Vec<f64> = (1..=9).map(|i| i as f64 * 0.5).collect();
        let r = e
            .execute(&Query::suite_optimum(
                refs.clone(),
                vec![Constraint::exactly(Axis::DepthFo4, 21.0)],
                e.stride(),
            ))
            .unwrap();
        let entry = &r.optima().unwrap()[0];
        assert_eq!(entry.benchmark, None);
        assert!(entry.predicted.is_none());
        assert_eq!(entry.point.fo4(), 21);
        // Reference: walk-order scan over the materialized sweep with the
        // same last-maximal-wins rule.
        let sweep = e.full_sweep();
        let len = sweep[0].len();
        let mut best: Option<(DesignPoint, f64)> = None;
        for i in 0..len {
            let p = sweep[0][i].point;
            if p.fo4() != 21 {
                continue;
            }
            let score = sweep
                .iter()
                .zip(&refs)
                .map(|(d, &r)| d[i].predicted.bips_cubed_per_watt() / r)
                .sum::<f64>()
                / 9.0;
            if best.as_ref().is_none_or(|cur| score.total_cmp(&cur.1) != Ordering::Less) {
                best = Some((p, score));
            }
        }
        let (point, score) = best.unwrap();
        assert_eq!(entry.point, point);
        assert_eq!(entry.score.to_bits(), score.to_bits());
    }

    #[test]
    fn pareto_slice_matches_direct_frontier() {
        let e = engine();
        let r = e.execute(&Query::pareto(Benchmark::Ammp, vec![], e.stride(), 40)).unwrap();
        let rows = r.frontier().unwrap();
        assert!(!rows.is_empty());
        // Monotone skyline by construction.
        for w in rows.windows(2) {
            assert!(w[0].predicted.delay_seconds() < w[1].predicted.delay_seconds());
            assert!(w[0].predicted.watts > w[1].predicted.watts);
        }
        let sweep = e.full_sweep();
        let designs = &sweep[Benchmark::Ammp.id() as usize];
        let pts: Vec<(f64, f64)> =
            designs.iter().map(|d| (d.predicted.delay_seconds(), d.predicted.watts)).collect();
        let frontier = ParetoFrontier::from_points(&pts, 40);
        assert_eq!(rows.len(), frontier.indices().len());
        for (row, &i) in rows.iter().zip(frontier.indices()) {
            assert_eq!(row.point, designs[i].point);
        }
    }

    #[test]
    fn top_k_is_sorted_and_bounded() {
        let e = engine();
        let r = e
            .execute(&Query::top_k(
                Benchmark::Mesa,
                vec![Constraint::at_least(Axis::Width, 4.0)],
                e.stride(),
                10,
            ))
            .unwrap();
        let rows = r.ranking().unwrap();
        assert_eq!(rows.len(), 10);
        for w in rows.windows(2) {
            assert!(w[0].predicted.bips_cubed_per_watt() >= w[1].predicted.bips_cubed_per_watt());
        }
        for row in rows {
            assert!(row.point.decode_width() >= 4);
        }
    }

    #[test]
    fn what_if_and_axis_sweep_use_uncompiled_models() {
        let e = engine();
        let space = DesignSpace::exploration();
        let a = space.decode(0).unwrap();
        let b = space.decode(77_777).unwrap();
        let delta = e.execute(&Query::what_if(Benchmark::Gcc, a, b)).unwrap();
        let (base, alt) = delta.delta().unwrap();
        let models = e.suite().models(Benchmark::Gcc);
        assert_eq!(base.predicted.bips.to_bits(), models.predict_metrics(&a).bips.to_bits());
        assert_eq!(alt.predicted.watts.to_bits(), models.predict_metrics(&b).watts.to_bits());

        let sweep = e.execute(&Query::axis_sweep(Benchmark::Gcc, a, Axis::L2Kb)).unwrap();
        let rows = sweep.sweep_rows().unwrap();
        assert_eq!(rows.len(), 5, "five L2 sizes");
        let l2s: Vec<u32> = rows.iter().map(|r| r.point.l2_kb()).collect();
        assert_eq!(l2s, vec![256, 512, 1024, 2048, 4096]);
        for r in rows {
            // Only the swept axis varies.
            assert_eq!(r.point.fo4(), a.fo4());
            assert_eq!(r.point.dl1_kb(), a.dl1_kb());
        }
    }

    #[test]
    fn cache_serves_repeats_as_the_same_arc() {
        let e = engine();
        let q = Query::optimum(None, vec![], e.stride());
        let hits0 = udse_obs::metrics::counter("query.cache.hits").get();
        let first = e.execute(&q).unwrap();
        let second = e.execute(&q).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "warm result is the cached Arc");
        assert!(udse_obs::metrics::counter("query.cache.hits").get() > hits0);
        // Per-benchmark projections of the same walk hit the fused entry.
        let one = e.execute(&Query::optimum(Some(Benchmark::Twolf), vec![], e.stride())).unwrap();
        assert_eq!(one.optima().unwrap()[0].point, first.optima().unwrap()[8].point);
    }

    #[test]
    fn zero_budget_disables_caching_without_changing_answers() {
        let config = StudyConfig::quick();
        let suite = TrainedSuite::train(&TinyOracle, &config).unwrap();
        let cold = Engine::new(suite.clone(), &config).with_result_budget(0);
        let warm = Engine::new(suite, &config);
        let q = Query::optimum(None, vec![], config.eval_stride);
        let a = cold.execute(&q).unwrap();
        let b = cold.execute(&q).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "budget 0 never caches");
        let c = warm.execute(&q).unwrap();
        assert_eq!(
            a.to_json().to_string_pretty(),
            c.to_json().to_string_pretty(),
            "cold and warm engines agree byte-for-byte"
        );
        assert_eq!(a.to_json().to_string_pretty(), b.to_json().to_string_pretty());
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let mut cache = ResultCache::new(400);
        let r = Arc::new(QueryResult::Optima { entries: vec![] });
        // Each entry costs key.len() + 64 overhead.
        cache.insert("a".repeat(100), Arc::clone(&r));
        cache.insert("b".repeat(100), Arc::clone(&r));
        assert!(cache.get(&"a".repeat(100)).is_some(), "touch `a` so `b` is LRU");
        cache.insert("c".repeat(100), Arc::clone(&r));
        assert!(cache.get(&"b".repeat(100)).is_none(), "`b` evicted");
        assert!(cache.get(&"a".repeat(100)).is_some());
        assert!(cache.get(&"c".repeat(100)).is_some());
        // An entry larger than the budget is passed through, not stored.
        cache.insert("d".repeat(1000), r);
        assert!(cache.get(&"d".repeat(1000)).is_none());
    }

    #[test]
    fn unsatisfiable_constraints_and_bad_shapes_error() {
        let e = engine();
        let err = e
            .execute(&Query::optimum(None, vec![Constraint::at_most(Axis::Dl1Kb, 1.0)], 1))
            .unwrap_err();
        assert!(err.contains("no dl1_kb level"), "{err}");
        let err = e
            .execute(&Query::optimum(
                None,
                vec![
                    Constraint::at_least(Axis::L2Kb, 2048.0),
                    Constraint::at_most(Axis::L2Kb, 512.0),
                ],
                1,
            ))
            .unwrap_err();
        assert!(err.contains("exclude every level"), "{err}");
        let err = e.execute(&Query::suite_optimum(vec![1.0; 3], vec![], 1)).unwrap_err();
        assert!(err.contains("9 references"), "{err}");
        let err = e
            .execute(&Query::ConstrainedOptimum {
                benchmark: Some(Benchmark::Ammp),
                objective: Objective::SuiteRelative(vec![1.0; 9]),
                constraints: vec![],
                stride: 1,
            })
            .unwrap_err();
        assert!(err.contains("bench must be null"), "{err}");
        assert!(e.execute(&Query::top_k(Benchmark::Ammp, vec![], 500, 0)).is_err());
        assert!(e.execute(&Query::pareto(Benchmark::Ammp, vec![], 500, 0)).is_err());
    }

    #[test]
    fn pushdown_maps_values_to_level_bounds() {
        let space = DesignSpace::exploration();
        let mask = Mask::pushdown(
            &space,
            &[
                Constraint::at_most(Axis::Dl1Kb, 64.0),
                Constraint::at_least(Axis::Il1Kb, 32.0),
                Constraint::exactly(Axis::DepthFo4, 18.0),
            ],
        )
        .unwrap();
        assert_eq!(mask.lo[0], 2, "depth 18 is level 2 of 12..30");
        assert_eq!(mask.hi[0], 2);
        assert_eq!(mask.hi[5], 3, "DL1 64KB is level 3 of 8..128");
        assert_eq!(mask.lo[4], 1, "IL1 32KB is level 1 of 16..256");
        // Inclusive bounds: a point exactly at the cut passes.
        let mut idx = [2u8, 0, 0, 0, 1, 3, 0];
        assert!(mask.allows(&space.point(idx).unwrap()));
        idx[5] = 4;
        assert!(!mask.allows(&space.point(idx).unwrap()));
    }
}
