//! The unified query layer beneath the study stack.
//!
//! Every study and figure driver used to re-implement its own walk over
//! the same compiled model suite. This module factors that seam into a
//! first-class boundary:
//!
//! - [`Query`] — a closed vocabulary of design-space questions (point
//!   prediction, constrained optimum, Pareto slice, top-K ranking,
//!   what-if delta, 1-D axis sweep) with a canonical, versioned JSON
//!   serialization (see [`json`]) that doubles as the wire format for
//!   the planned `udse-serve` daemon.
//! - [`Engine`] — owns the [`crate::studies::CompiledSuite`], the
//!   memoized full-space characterization, a predicate-pushdown
//!   constraint evaluator over the fused grid walker, and a
//!   byte-budgeted LRU of materialized [`QueryResult`]s.
//!
//! The engine's answers are bitwise-identical to the per-study sweeps it
//! replaced: scanning queries run the exact same chunk-parallel
//! [`udse_obs::pool::map_chunks`] walk with the same
//! last-maximal-element-wins tie-break, and point queries evaluate the
//! exact (uncompiled) spline models the validation studies always used.
//!
//! # Examples
//!
//! ```no_run
//! use udse_core::oracle::SimOracle;
//! use udse_core::query::{Axis, Constraint, Engine, Query};
//! use udse_core::studies::{StudyConfig, TrainedSuite};
//!
//! let config = StudyConfig::quick();
//! let suite = TrainedSuite::train(&SimOracle::new(), &config).unwrap();
//! let engine = Engine::new(suite, &config);
//! // "best bips^3/w with <= 64KB DL1 at depth 18"
//! let q = Query::optimum(
//!     Some(udse_trace::Benchmark::Mcf),
//!     vec![Constraint::at_most(Axis::Dl1Kb, 64.0), Constraint::exactly(Axis::DepthFo4, 18.0)],
//!     config.eval_stride,
//! );
//! let result = engine.execute(&q).unwrap();
//! println!("{}", result.to_json().to_string_pretty());
//! ```

mod engine;
mod json;

pub use engine::Engine;
pub use json::QUERY_SCHEMA_VERSION;

use udse_trace::Benchmark;

use crate::oracle::Metrics;
use crate::space::{DesignPoint, DesignSpace, DL1_VALUES, IL1_VALUES, L2_VALUES, WIDTH_VALUES};

/// One axis of the Table 1 design space, named by the physical quantity
/// constraints are written against (cache sizes in KB, depth in FO4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Pipeline depth in FO4 per stage.
    DepthFo4,
    /// Decode width in instructions per cycle.
    Width,
    /// General-purpose physical registers.
    Gpr,
    /// Fixed-point reservation stations.
    ResvFx,
    /// I-L1 cache size in KB.
    Il1Kb,
    /// D-L1 cache size in KB.
    Dl1Kb,
    /// L2 cache size in KB.
    L2Kb,
}

impl Axis {
    /// All seven axes in design-point index order
    /// (`depth, width, regs, resv, il1, dl1, l2`).
    pub const ALL: [Axis; 7] = [
        Axis::DepthFo4,
        Axis::Width,
        Axis::Gpr,
        Axis::ResvFx,
        Axis::Il1Kb,
        Axis::Dl1Kb,
        Axis::L2Kb,
    ];

    /// The wire-format name of the axis.
    pub fn name(self) -> &'static str {
        match self {
            Axis::DepthFo4 => "depth_fo4",
            Axis::Width => "width",
            Axis::Gpr => "gpr",
            Axis::ResvFx => "resv_fx",
            Axis::Il1Kb => "il1_kb",
            Axis::Dl1Kb => "dl1_kb",
            Axis::L2Kb => "l2_kb",
        }
    }

    /// Looks an axis up by its wire-format name.
    pub fn by_name(name: &str) -> Option<Axis> {
        Axis::ALL.into_iter().find(|a| a.name() == name)
    }

    /// The axis position in the seven-element design-point index tuple.
    pub fn slot(self) -> usize {
        match self {
            Axis::DepthFo4 => 0,
            Axis::Width => 1,
            Axis::Gpr => 2,
            Axis::ResvFx => 3,
            Axis::Il1Kb => 4,
            Axis::Dl1Kb => 5,
            Axis::L2Kb => 6,
        }
    }

    /// The axis's physical value at one design point.
    pub fn value(self, p: &DesignPoint) -> f64 {
        match self {
            Axis::DepthFo4 => p.fo4() as f64,
            Axis::Width => p.decode_width() as f64,
            Axis::Gpr => p.gpr() as f64,
            Axis::ResvFx => p.resv_fx() as f64,
            Axis::Il1Kb => p.il1_kb() as f64,
            Axis::Dl1Kb => p.dl1_kb() as f64,
            Axis::L2Kb => p.l2_kb() as f64,
        }
    }

    /// The axis's physical value at grid level `level` of `space`. Every
    /// axis's values are strictly increasing in the level index, which is
    /// what lets value constraints push down to index bounds.
    pub fn level_value(self, space: &DesignSpace, level: u8) -> f64 {
        match self {
            Axis::DepthFo4 => space.depths()[level as usize] as f64,
            Axis::Width => WIDTH_VALUES[level as usize].0 as f64,
            Axis::Gpr => (40 + 10 * level as u32) as f64,
            Axis::ResvFx => (10 + 2 * level as u32) as f64,
            Axis::Il1Kb => IL1_VALUES[level as usize] as f64,
            Axis::Dl1Kb => DL1_VALUES[level as usize] as f64,
            Axis::L2Kb => L2_VALUES[level as usize] as f64,
        }
    }
}

/// An inclusive bound on one axis's physical value. A missing bound is
/// unconstrained on that side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraint {
    /// The constrained axis.
    pub axis: Axis,
    /// Inclusive lower bound on the physical value.
    pub min: Option<f64>,
    /// Inclusive upper bound on the physical value.
    pub max: Option<f64>,
}

impl Constraint {
    /// `axis <= value`.
    pub fn at_most(axis: Axis, value: f64) -> Self {
        Constraint { axis, min: None, max: Some(value) }
    }

    /// `axis >= value`.
    pub fn at_least(axis: Axis, value: f64) -> Self {
        Constraint { axis, min: Some(value), max: None }
    }

    /// `axis == value`.
    pub fn exactly(axis: Axis, value: f64) -> Self {
        Constraint { axis, min: Some(value), max: Some(value) }
    }
}

/// What a constrained-optimum query maximizes.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// Per-benchmark `bips^3/w` efficiency — one optimum per requested
    /// benchmark.
    Efficiency,
    /// Suite-average relative efficiency: the mean over benchmarks of
    /// `bips^3/w` divided by the supplied per-benchmark reference (in
    /// [`Benchmark::ALL`] order). This is the depth study's bound
    /// objective; it aggregates the suite, so it yields one optimum.
    SuiteRelative(Vec<f64>),
}

/// A design-space question the [`Engine`] can answer. Serializes to the
/// canonical versioned JSON wire format (see [`json`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Predicted `(bips, watts)` at one design point.
    Point {
        /// The benchmark whose models answer.
        benchmark: Benchmark,
        /// The design point (paper or exploration space).
        point: DesignPoint,
    },
    /// The design maximizing the objective over the strided exploration
    /// walk, subject to axis constraints.
    ConstrainedOptimum {
        /// `Some(b)`: that benchmark's optimum. `None` with
        /// [`Objective::Efficiency`]: all nine per-benchmark optima from
        /// one fused walk. [`Objective::SuiteRelative`] requires `None`.
        benchmark: Option<Benchmark>,
        /// The maximized objective.
        objective: Objective,
        /// Axis constraints, pushed down to index bounds before the walk.
        constraints: Vec<Constraint>,
        /// Evaluation stride (1 = exhaustive; see
        /// [`crate::studies::strided_points`]).
        stride: usize,
    },
    /// The binned Pareto frontier in `(delay, power)` over the
    /// constrained design set.
    ParetoSlice {
        /// The benchmark characterized.
        benchmark: Benchmark,
        /// Axis constraints limiting the candidate set.
        constraints: Vec<Constraint>,
        /// Evaluation stride.
        stride: usize,
        /// Delay discretization bins (paper §4.2).
        bins: usize,
    },
    /// The `k` most efficient designs in the constrained set, best first.
    TopK {
        /// The benchmark ranked.
        benchmark: Benchmark,
        /// Axis constraints limiting the candidate set.
        constraints: Vec<Constraint>,
        /// Evaluation stride.
        stride: usize,
        /// Number of designs to return.
        k: usize,
    },
    /// Predicted metrics of two designs side by side, with their delta.
    WhatIf {
        /// The benchmark evaluated.
        benchmark: Benchmark,
        /// The reference design.
        base: DesignPoint,
        /// The contemplated alternative.
        alternative: DesignPoint,
    },
    /// Predictions along every level of one axis, the other six axes held
    /// at the base point.
    AxisSweep {
        /// The benchmark evaluated.
        benchmark: Benchmark,
        /// The design point supplying the fixed axes.
        base: DesignPoint,
        /// The swept axis.
        axis: Axis,
    },
}

impl Query {
    /// Point-prediction query.
    pub fn point(benchmark: Benchmark, point: DesignPoint) -> Self {
        Query::Point { benchmark, point }
    }

    /// Constrained `bips^3/w` optimum (`benchmark = None` answers all
    /// nine from one fused walk).
    pub fn optimum(
        benchmark: Option<Benchmark>,
        constraints: Vec<Constraint>,
        stride: usize,
    ) -> Self {
        Query::ConstrainedOptimum {
            benchmark,
            objective: Objective::Efficiency,
            constraints,
            stride,
        }
    }

    /// Constrained suite-average relative-efficiency optimum (the depth
    /// study's bound objective; `refs` in [`Benchmark::ALL`] order).
    pub fn suite_optimum(refs: Vec<f64>, constraints: Vec<Constraint>, stride: usize) -> Self {
        Query::ConstrainedOptimum {
            benchmark: None,
            objective: Objective::SuiteRelative(refs),
            constraints,
            stride,
        }
    }

    /// Pareto-slice query.
    pub fn pareto(
        benchmark: Benchmark,
        constraints: Vec<Constraint>,
        stride: usize,
        bins: usize,
    ) -> Self {
        Query::ParetoSlice { benchmark, constraints, stride, bins }
    }

    /// Top-K ranking query.
    pub fn top_k(
        benchmark: Benchmark,
        constraints: Vec<Constraint>,
        stride: usize,
        k: usize,
    ) -> Self {
        Query::TopK { benchmark, constraints, stride, k }
    }

    /// What-if delta query.
    pub fn what_if(benchmark: Benchmark, base: DesignPoint, alternative: DesignPoint) -> Self {
        Query::WhatIf { benchmark, base, alternative }
    }

    /// Axis-sweep query.
    pub fn axis_sweep(benchmark: Benchmark, base: DesignPoint, axis: Axis) -> Self {
        Query::AxisSweep { benchmark, base, axis }
    }
}

/// One design with its predicted metrics — the row type query results
/// are built from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedPoint {
    /// The design point.
    pub point: DesignPoint,
    /// Predicted `(bips, watts)`.
    pub predicted: Metrics,
}

/// One constrained-optimum winner.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimumEntry {
    /// The benchmark this optimum belongs to, or `None` for the
    /// suite-aggregate objective.
    pub benchmark: Option<Benchmark>,
    /// The winning design.
    pub point: DesignPoint,
    /// Predicted metrics at the winner (absent for aggregate objectives,
    /// which score across benchmarks).
    pub predicted: Option<Metrics>,
    /// The objective value at the winner.
    pub score: f64,
}

/// The materialized answer to a [`Query`], with the same canonical
/// versioned JSON serialization discipline as the query itself.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Answer to [`Query::Point`].
    Point {
        /// The benchmark evaluated.
        benchmark: Benchmark,
        /// The point and its prediction.
        row: PredictedPoint,
    },
    /// Answer to [`Query::ConstrainedOptimum`].
    Optima {
        /// One winner per requested benchmark (or one aggregate winner).
        entries: Vec<OptimumEntry>,
    },
    /// Answer to [`Query::ParetoSlice`]: frontier designs by increasing
    /// predicted delay.
    Frontier {
        /// The benchmark characterized.
        benchmark: Benchmark,
        /// The non-dominated designs.
        designs: Vec<PredictedPoint>,
    },
    /// Answer to [`Query::TopK`]: best first, walk order among ties.
    Ranking {
        /// The benchmark ranked.
        benchmark: Benchmark,
        /// The top designs.
        entries: Vec<PredictedPoint>,
    },
    /// Answer to [`Query::WhatIf`].
    Delta {
        /// The benchmark evaluated.
        benchmark: Benchmark,
        /// The reference design's prediction.
        base: PredictedPoint,
        /// The alternative design's prediction.
        alternative: PredictedPoint,
    },
    /// Answer to [`Query::AxisSweep`]: one row per axis level, in level
    /// order.
    Sweep {
        /// The benchmark evaluated.
        benchmark: Benchmark,
        /// The swept axis.
        axis: Axis,
        /// Predictions per level.
        rows: Vec<PredictedPoint>,
    },
}

impl QueryResult {
    /// The predicted metrics of a [`QueryResult::Point`] answer.
    pub fn point_metrics(&self) -> Option<Metrics> {
        match self {
            QueryResult::Point { row, .. } => Some(row.predicted),
            _ => None,
        }
    }

    /// The winners of a [`QueryResult::Optima`] answer.
    pub fn optima(&self) -> Option<&[OptimumEntry]> {
        match self {
            QueryResult::Optima { entries } => Some(entries),
            _ => None,
        }
    }

    /// The rows of a [`QueryResult::Frontier`] answer.
    pub fn frontier(&self) -> Option<&[PredictedPoint]> {
        match self {
            QueryResult::Frontier { designs, .. } => Some(designs),
            _ => None,
        }
    }

    /// The rows of a [`QueryResult::Ranking`] answer.
    pub fn ranking(&self) -> Option<&[PredictedPoint]> {
        match self {
            QueryResult::Ranking { entries, .. } => Some(entries),
            _ => None,
        }
    }

    /// The `(base, alternative)` rows of a [`QueryResult::Delta`] answer.
    pub fn delta(&self) -> Option<(PredictedPoint, PredictedPoint)> {
        match self {
            QueryResult::Delta { base, alternative, .. } => Some((*base, *alternative)),
            _ => None,
        }
    }

    /// The rows of a [`QueryResult::Sweep`] answer.
    pub fn sweep_rows(&self) -> Option<&[PredictedPoint]> {
        match self {
            QueryResult::Sweep { rows, .. } => Some(rows),
            _ => None,
        }
    }

    /// Approximate in-memory footprint, used by the engine's
    /// byte-budgeted result cache.
    pub fn approx_bytes(&self) -> usize {
        const OVERHEAD: usize = 64;
        let rows = |v: &[PredictedPoint]| std::mem::size_of_val(v);
        OVERHEAD
            + match self {
                QueryResult::Point { .. } => std::mem::size_of::<PredictedPoint>(),
                QueryResult::Optima { entries } => {
                    entries.len() * std::mem::size_of::<OptimumEntry>()
                }
                QueryResult::Frontier { designs, .. } => rows(designs),
                QueryResult::Ranking { entries, .. } => rows(entries),
                QueryResult::Delta { .. } => 2 * std::mem::size_of::<PredictedPoint>(),
                QueryResult::Sweep { rows: r, .. } => rows(r),
            }
    }
}
