//! Pipeline depth analysis (paper §5, Figures 5–7).
//!
//! Contrasts two methodologies:
//!
//! - **Original analysis**: sweep depth on the Table 3 baseline with all
//!   other parameters fixed (how prior depth studies were run).
//! - **Enhanced analysis**: let all other parameters vary — the boxplots
//!   of efficiency over all 37,500 designs at each depth that only a
//!   regression model makes affordable.
//!
//! All efficiencies are reported relative to the *original `bips³/w`
//! optimum*: for each benchmark the best baseline-sweep efficiency, with
//! suite results averaged over the per-benchmark ratios.

use std::collections::HashMap;

use udse_stats::{quantile, Boxplot, Histogram};
use udse_trace::Benchmark;

use crate::baseline::baseline_at_depth;
use crate::oracle::Oracle;
use crate::query::{Axis, Constraint, Engine, Query};
use crate::space::{DesignPoint, DesignSpace};

/// The Figure 5 artifact.
#[derive(Debug, Clone)]
pub struct DepthStudy {
    /// The depths analyzed (12–30 FO4).
    pub depths: Vec<u32>,
    /// Baseline design at each depth (the original analysis points).
    pub original_points: Vec<DesignPoint>,
    /// Suite-average relative efficiency of the original analysis at each
    /// depth (the line plot of Fig 5a).
    pub original_relative: Vec<f64>,
    /// Distribution of suite-average relative efficiency over all designs
    /// at each depth (the boxplots of Fig 5a).
    pub enhanced_boxplots: Vec<Boxplot>,
    /// The most efficient ("bound") design found at each depth.
    pub bound_points: Vec<DesignPoint>,
    /// Bound efficiency at each depth relative to the best bound across
    /// depths (the numbers above Fig 5a's boxplots).
    pub bound_relative: Vec<f64>,
    /// Fraction of designs at each depth predicted more efficient than
    /// the original optimum (the boxplot-line intersections of §5.1).
    pub fraction_above_original: Vec<f64>,
    /// D-L1 size distribution among the designs in the 95th percentile of
    /// each depth's efficiency distribution (Fig 5b).
    pub dcache_top_percentile: Vec<Histogram>,
}

impl DepthStudy {
    /// Runs the §5.1 analysis against the query engine: the efficiency
    /// distributions come from the engine's memoized full-space sweep and
    /// the per-depth bound architectures from depth-constrained
    /// suite-relative optimum queries.
    pub fn run(engine: &Engine) -> Self {
        let _span = udse_obs::span::enter("depth_study");
        let space = DesignSpace::exploration();
        let depths: Vec<u32> = space.depths().to_vec();
        let original_points: Vec<DesignPoint> =
            depths.iter().map(|&d| baseline_at_depth(d)).collect();

        // Per-benchmark reference: best predicted baseline efficiency,
        // from the compiled models (the flavor the fused sweep uses).
        let compiled = engine.compiled();
        let refs: Vec<f64> = Benchmark::ALL
            .iter()
            .map(|&b| {
                let m = compiled.models(b);
                original_points
                    .iter()
                    .map(|p| m.predict_efficiency(p))
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();
        let rel = |p: &DesignPoint| -> f64 {
            Benchmark::ALL
                .iter()
                .zip(&refs)
                .map(|(&b, &r)| compiled.models(b).predict_efficiency(p) / r)
                .sum::<f64>()
                / 9.0
        };

        let original_relative: Vec<f64> = original_points.iter().map(&rel).collect();

        let mut enhanced_boxplots = Vec::with_capacity(depths.len());
        let mut bound_points = Vec::with_capacity(depths.len());
        let mut bound_raw = Vec::with_capacity(depths.len());
        let mut fraction_above_original = Vec::with_capacity(depths.len());
        let mut dcache_top_percentile = Vec::with_capacity(depths.len());
        let original_optimum = original_relative.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));

        // Bucket the engine's memoized sweep by depth. The sweep
        // materializes in walk order, so every bucket's contents match
        // the old single-pass chunk-merged walk exactly; the suite ratio
        // per design is the same stacked-lane expression the engine's
        // suite-relative argmax evaluates.
        let sweep = engine.full_sweep();
        let visited = sweep[0].len();
        let mut effs_by_depth: Vec<Vec<f64>> = vec![Vec::new(); depths.len()];
        let mut pts_by_depth: Vec<Vec<DesignPoint>> = vec![Vec::new(); depths.len()];
        for i in 0..visited {
            let p = sweep[0][i].point;
            let rel_i = sweep
                .iter()
                .zip(&refs)
                .map(|(d, &r)| d[i].predicted.bips_cubed_per_watt() / r)
                .sum::<f64>()
                / 9.0;
            let di = p.depth_idx as usize;
            effs_by_depth[di].push(rel_i);
            pts_by_depth[di].push(p);
        }

        for (di, &depth) in depths.iter().enumerate() {
            let effs = &effs_by_depth[di];
            let pts = &pts_by_depth[di];
            assert!(!effs.is_empty(), "stride too large: no designs at depth index {di}");
            enhanced_boxplots.push(Boxplot::from_samples(effs));
            // The bound architecture at this depth: a depth-constrained
            // suite-relative optimum query. The engine's walk applies the
            // same last-maximal-wins tie-break over the same walk order,
            // so point and score match the in-bucket argmax bitwise.
            let bound = engine
                .execute(&Query::suite_optimum(
                    refs.clone(),
                    vec![Constraint::exactly(Axis::DepthFo4, depth as f64)],
                    engine.stride(),
                ))
                .expect("per-depth bound query cannot fail");
            let entry = bound.optima().expect("optimum query yields optima")[0].clone();
            bound_points.push(entry.point);
            bound_raw.push(entry.score);
            let above = effs.iter().filter(|&&e| e > original_optimum).count();
            fraction_above_original.push(above as f64 / effs.len() as f64);
            // Fig 5b: D-L1 sizes among the 95th-percentile designs.
            let p95 = quantile(effs, 0.95);
            let hist: Histogram = pts
                .iter()
                .zip(effs)
                .filter(|(_, &e)| e >= p95)
                .map(|(p, _)| p.dl1_kb() as u64)
                .collect();
            dcache_top_percentile.push(hist);
        }

        let best_bound = bound_raw.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let bound_relative = bound_raw.iter().map(|&v| v / best_bound).collect();

        DepthStudy {
            depths,
            original_points,
            original_relative,
            enhanced_boxplots,
            bound_points,
            bound_relative,
            fraction_above_original,
            dcache_top_percentile,
        }
    }

    /// The depth (FO4) with the best original-analysis efficiency.
    pub fn optimal_original_depth(&self) -> u32 {
        let (i, _) = self
            .original_relative
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty depth list");
        self.depths[i]
    }

    /// The depth (FO4) whose bound architecture is most efficient.
    pub fn optimal_bound_depth(&self) -> u32 {
        let (i, _) = self
            .bound_relative
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty depth list");
        self.depths[i]
    }
}

/// The Figures 6 and 7 artifact: predicted vs simulated curves for both
/// analyses, suite-averaged, relative to each source's own original
/// optimum.
#[derive(Debug, Clone)]
pub struct DepthValidation {
    /// Depths analyzed.
    pub depths: Vec<u32>,
    /// Predicted relative efficiency, original analysis (from the study).
    pub original_predicted: Vec<f64>,
    /// Simulated relative efficiency, original analysis.
    pub original_simulated: Vec<f64>,
    /// Predicted relative efficiency of the bound architectures.
    pub enhanced_predicted: Vec<f64>,
    /// Simulated relative efficiency of the bound architectures.
    pub enhanced_simulated: Vec<f64>,
    /// Suite-average predicted bips, original points (Fig 7a).
    pub original_predicted_bips: Vec<f64>,
    /// Suite-average simulated bips, original points.
    pub original_simulated_bips: Vec<f64>,
    /// Suite-average predicted bips, bound points.
    pub enhanced_predicted_bips: Vec<f64>,
    /// Suite-average simulated bips, bound points.
    pub enhanced_simulated_bips: Vec<f64>,
    /// Suite-average predicted watts, original points (Fig 7b).
    pub original_predicted_watts: Vec<f64>,
    /// Suite-average simulated watts, original points.
    pub original_simulated_watts: Vec<f64>,
    /// Suite-average predicted watts, bound points.
    pub enhanced_predicted_watts: Vec<f64>,
    /// Suite-average simulated watts, bound points.
    pub enhanced_simulated_watts: Vec<f64>,
}

impl DepthValidation {
    /// Simulates the original and bound designs at every depth and
    /// assembles the comparison curves. All simulations run as one
    /// parallel [`Oracle::evaluate_many`] batch up front; the curves are
    /// assembled from the resulting lookup table, with every model
    /// prediction served by a [`Query::Point`] execution.
    pub fn run<O: Oracle + ?Sized>(oracle: &O, engine: &Engine, study: &DepthStudy) -> Self {
        let _span = udse_obs::span::enter("depth_validation");
        // Distinct designs this validation needs: the baseline sweep plus
        // the per-depth bound architectures.
        let mut wanted: Vec<DesignPoint> = study.original_points.clone();
        for p in &study.bound_points {
            if !wanted.contains(p) {
                wanted.push(*p);
            }
        }
        let plan = crate::plan::EvalPlan::cross_suite("depth.validation", &wanted);
        let simulated: HashMap<(Benchmark, DesignPoint), crate::oracle::Metrics> =
            plan.jobs().iter().copied().zip(oracle.evaluate_plan(&plan)).collect();
        let sim = |b: Benchmark, p: &DesignPoint| simulated[&(b, *p)];
        // Point queries use the uncompiled models — bitwise-identical to
        // `suite.models(b).predict_metrics(p)`.
        let predict = |b: Benchmark, p: &DesignPoint| {
            engine
                .execute(&Query::point(b, *p))
                .expect("point queries cannot fail")
                .point_metrics()
                .expect("point query yields metrics")
        };

        let suite_metrics = |points: &[DesignPoint], simulate: bool| {
            // Returns per-depth (eff_rel, bips_avg, watts_avg) using either
            // the oracle or the models.
            let per_bench: Vec<Vec<crate::oracle::Metrics>> = Benchmark::ALL
                .iter()
                .map(|&b| {
                    points
                        .iter()
                        .map(|p| if simulate { sim(b, p) } else { predict(b, p) })
                        .collect()
                })
                .collect();
            (0..points.len())
                .map(|i| {
                    let bips = per_bench.iter().map(|v| v[i].bips).sum::<f64>() / 9.0;
                    let watts = per_bench.iter().map(|v| v[i].watts).sum::<f64>() / 9.0;
                    (bips, watts)
                })
                .collect::<Vec<(f64, f64)>>()
        };
        // Relative efficiency per source: per-benchmark refs from that
        // source's own baseline sweep maxima.
        let rel_curve = |points: &[DesignPoint], originals: &[DesignPoint], simulate: bool| {
            let per_bench_eff = |p: &DesignPoint, b: Benchmark| {
                if simulate {
                    sim(b, p).bips_cubed_per_watt()
                } else {
                    predict(b, p).bips_cubed_per_watt()
                }
            };
            let refs: Vec<f64> = Benchmark::ALL
                .iter()
                .map(|&b| {
                    originals.iter().map(|p| per_bench_eff(p, b)).fold(f64::NEG_INFINITY, f64::max)
                })
                .collect();
            points
                .iter()
                .map(|p| {
                    Benchmark::ALL
                        .iter()
                        .zip(&refs)
                        .map(|(&b, &r)| per_bench_eff(p, b) / r)
                        .sum::<f64>()
                        / 9.0
                })
                .collect::<Vec<f64>>()
        };

        let orig = &study.original_points;
        let bound = &study.bound_points;
        let (orig_pred_bw, orig_sim_bw) = (suite_metrics(orig, false), suite_metrics(orig, true));
        let (bnd_pred_bw, bnd_sim_bw) = (suite_metrics(bound, false), suite_metrics(bound, true));

        let val = DepthValidation {
            depths: study.depths.clone(),
            original_predicted: rel_curve(orig, orig, false),
            original_simulated: rel_curve(orig, orig, true),
            enhanced_predicted: rel_curve(bound, orig, false),
            enhanced_simulated: rel_curve(bound, orig, true),
            original_predicted_bips: orig_pred_bw.iter().map(|x| x.0).collect(),
            original_simulated_bips: orig_sim_bw.iter().map(|x| x.0).collect(),
            enhanced_predicted_bips: bnd_pred_bw.iter().map(|x| x.0).collect(),
            enhanced_simulated_bips: bnd_sim_bw.iter().map(|x| x.0).collect(),
            original_predicted_watts: orig_pred_bw.iter().map(|x| x.1).collect(),
            original_simulated_watts: orig_sim_bw.iter().map(|x| x.1).collect(),
            enhanced_predicted_watts: bnd_pred_bw.iter().map(|x| x.1).collect(),
            enhanced_simulated_watts: bnd_sim_bw.iter().map(|x| x.1).collect(),
        };
        val.record_quality();
        val
    }

    /// Records the prediction-vs-simulation error of every Fig 6/Fig 7
    /// curve pair as `depth.*` [`udse_obs::QualityRecord`]s — the same
    /// collector validation feeds, so `udse-inspect diff` gates depth
    /// methodology drift too.
    fn record_quality(&self) {
        let curves: [(&str, &[f64], &[f64]); 6] = [
            ("depth.original.eff", &self.original_predicted, &self.original_simulated),
            ("depth.enhanced.eff", &self.enhanced_predicted, &self.enhanced_simulated),
            ("depth.original.bips", &self.original_predicted_bips, &self.original_simulated_bips),
            ("depth.enhanced.bips", &self.enhanced_predicted_bips, &self.enhanced_simulated_bips),
            (
                "depth.original.watts",
                &self.original_predicted_watts,
                &self.original_simulated_watts,
            ),
            (
                "depth.enhanced.watts",
                &self.enhanced_predicted_watts,
                &self.enhanced_simulated_watts,
            ),
        ];
        for (key, predicted, simulated) in curves {
            let signed: Vec<f64> =
                simulated.iter().zip(predicted).map(|(s, p)| (s - p) / p).collect();
            udse_obs::quality::record(udse_obs::QualityRecord::from_signed_errors(key, &signed));
        }
    }

    /// Depth with the best simulated original-analysis efficiency.
    pub fn simulated_optimal_depth(&self) -> u32 {
        let (i, _) = self
            .original_simulated
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty");
        self.depths[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::studies::tests::TinyOracle;
    use crate::studies::{StudyConfig, TrainedSuite};

    fn setup() -> Engine {
        let config = StudyConfig::quick();
        let suite = TrainedSuite::train(&TinyOracle, &config).unwrap();
        Engine::new(suite, &config)
    }

    #[test]
    fn study_produces_one_entry_per_depth() {
        let engine = setup();
        let study = DepthStudy::run(&engine);
        assert_eq!(study.depths, vec![12, 15, 18, 21, 24, 27, 30]);
        assert_eq!(study.enhanced_boxplots.len(), 7);
        assert_eq!(study.bound_points.len(), 7);
        assert_eq!(study.dcache_top_percentile.len(), 7);
        for (d, p) in study.depths.iter().zip(&study.original_points) {
            assert_eq!(p.fo4(), *d);
        }
    }

    #[test]
    fn bounds_dominate_originals() {
        let engine = setup();
        let study = DepthStudy::run(&engine);
        // The best design at a depth is at least as good as the baseline
        // at that depth.
        for i in 0..study.depths.len() {
            assert!(study.enhanced_boxplots[i].max >= study.original_relative[i] - 0.05);
        }
        // Relative bounds peak at exactly 1.
        let max_bound = study.bound_relative.iter().cloned().fold(f64::MIN, f64::max);
        assert!((max_bound - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fractions_are_probabilities() {
        let engine = setup();
        let study = DepthStudy::run(&engine);
        for f in &study.fraction_above_original {
            assert!((0.0..=1.0).contains(f));
        }
    }

    #[test]
    fn validation_curves_align_with_study() {
        let engine = setup();
        let study = DepthStudy::run(&engine);
        let val = DepthValidation::run(&TinyOracle, &engine, &study);
        assert_eq!(val.depths, study.depths);
        // Predicted curves in the validation must match the study's own
        // predictions (same models, same points).
        for (a, b) in val.original_predicted.iter().zip(&study.original_relative) {
            assert!((a - b).abs() < 1e-9);
        }
        // TinyOracle is smooth, so simulated and predicted agree closely.
        for (p, s) in val.original_predicted.iter().zip(&val.original_simulated) {
            assert!((p - s).abs() < 0.1, "pred {p} vs sim {s}");
        }
        let _ = val.simulated_optimal_depth();
    }

    #[test]
    fn depth_validation_records_quality_telemetry() {
        let engine = setup();
        let study = DepthStudy::run(&engine);
        let _val = DepthValidation::run(&TinyOracle, &engine, &study);
        let quality = udse_obs::quality::global().snapshot();
        for key in [
            "depth.original.eff",
            "depth.enhanced.eff",
            "depth.original.bips",
            "depth.enhanced.bips",
            "depth.original.watts",
            "depth.enhanced.watts",
        ] {
            let rec = quality.iter().find(|r| r.key == key).expect("depth quality record");
            assert_eq!(rec.n as usize, study.depths.len());
            assert!(rec.p50 >= 0.0);
        }
    }

    #[test]
    fn optimal_depths_are_in_range() {
        let engine = setup();
        let study = DepthStudy::run(&engine);
        assert!(study.depths.contains(&study.optimal_original_depth()));
        assert!(study.depths.contains(&study.optimal_bound_depth()));
    }
}
