//! Pareto frontier analysis (paper §4, Figures 2–4, Table 2).

use std::collections::HashMap;

use udse_stats::ErrorSummary;
use udse_trace::Benchmark;

use crate::model::SuiteLanes;
use crate::oracle::{Metrics, Oracle};
use crate::plan::EvalPlan;
use crate::query::{Engine, Query};
use crate::space::{DesignPoint, DesignSpace};
use crate::studies::{strided_count, StudyConfig};

/// One design with its regression-predicted delay and power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedDesign {
    /// The design point.
    pub point: DesignPoint,
    /// Predicted metrics.
    pub predicted: Metrics,
}

/// The Figure 2 artifact: the exhaustively predicted design space for one
/// benchmark, with per-(depth, width) cluster summaries.
#[derive(Debug, Clone)]
pub struct Characterization {
    /// The benchmark characterized.
    pub benchmark: Benchmark,
    /// Every evaluated design with predicted delay/power.
    pub designs: Vec<PredictedDesign>,
    /// Summary per (depth, width) cluster: FO4, width, delay range,
    /// power range, count.
    pub clusters: Vec<ClusterSummary>,
}

/// Delay/power envelope of one depth-width cluster of the space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSummary {
    /// Pipeline depth (FO4 per stage).
    pub fo4: u32,
    /// Decode width.
    pub width: u32,
    /// Minimum predicted delay in the cluster.
    pub delay_min: f64,
    /// Maximum predicted delay in the cluster.
    pub delay_max: f64,
    /// Minimum predicted power in the cluster.
    pub power_min: f64,
    /// Maximum predicted power in the cluster.
    pub power_max: f64,
    /// Designs in the cluster.
    pub count: usize,
}

/// Slices one benchmark out of the engine's memoized full-space
/// characterization — the paper's §4.1 "complete characterization".
///
/// The underlying fused walk runs once per engine (see
/// [`Engine::full_sweep`]) and fans out across the work pool in
/// contiguous chunks; chunk results concatenate in range order, so
/// `designs` is identical to a sequential walk regardless of worker
/// count.
pub fn characterize(engine: &Engine, benchmark: Benchmark) -> Characterization {
    let sweep = engine.full_sweep();
    let designs = sweep[benchmark.id() as usize].clone();
    let clusters = build_clusters(&designs);
    Characterization { benchmark, designs, clusters }
}

/// Characterizes the space for *all nine benchmarks* from the engine's
/// one fused grid walk. Per benchmark, `designs` is bitwise-identical to
/// a separate single-model sweep — only the walk overhead is amortized
/// (the `compiled_predict_sweep` criterion group measures the speedup).
pub fn characterize_all(engine: &Engine) -> Vec<Characterization> {
    Benchmark::ALL.iter().map(|&b| characterize(engine, b)).collect()
}

/// The shared fused-sweep inner loop: walks the strided space once and
/// materializes every visited point's predicted metrics for every stacked
/// pair, chunk-parallel through [`udse_obs::pool::map_chunks`]. Chunk
/// results concatenate in range order, so each pair's `Vec` is identical
/// to a sequential walk regardless of worker count.
pub(crate) fn sweep_designs(
    lanes: &SuiteLanes,
    space: &DesignSpace,
    stride: usize,
) -> Vec<Vec<PredictedDesign>> {
    let total = strided_count(space, stride);
    let pairs = lanes.pairs();
    let chunks = udse_obs::pool::map_chunks(total, |range| {
        let _chunk = udse_obs::span::enter("chunk");
        let chunk_len = (range.end - range.start) as usize;
        let mut per_pair: Vec<Vec<PredictedDesign>> =
            (0..pairs).map(|_| Vec::with_capacity(chunk_len)).collect();
        let mut walker = lanes.walker(space, stride);
        walker.walk(range, |point, metrics| {
            for (out, m) in per_pair.iter_mut().zip(metrics) {
                out.push(PredictedDesign { point, predicted: *m });
            }
        });
        per_pair
    });
    // Concatenate each pair's chunk slices in range order.
    let mut designs: Vec<Vec<PredictedDesign>> =
        (0..pairs).map(|_| Vec::with_capacity(total as usize)).collect();
    for chunk in chunks {
        for (out, part) in designs.iter_mut().zip(chunk) {
            out.extend(part);
        }
    }
    designs
}

/// Cluster summaries keyed by (depth, width): one hash lookup per design
/// instead of a linear scan over the cluster list, sorted at the end.
fn build_clusters(designs: &[PredictedDesign]) -> Vec<ClusterSummary> {
    let mut by_key: HashMap<(u32, u32), ClusterSummary> = HashMap::new();
    for d in designs {
        let fo4 = d.point.fo4();
        let width = d.point.decode_width();
        let delay = d.predicted.delay_seconds();
        let power = d.predicted.watts;
        by_key
            .entry((fo4, width))
            .and_modify(|c| {
                c.delay_min = c.delay_min.min(delay);
                c.delay_max = c.delay_max.max(delay);
                c.power_min = c.power_min.min(power);
                c.power_max = c.power_max.max(power);
                c.count += 1;
            })
            .or_insert(ClusterSummary {
                fo4,
                width,
                delay_min: delay,
                delay_max: delay,
                power_min: power,
                power_max: power,
                count: 1,
            });
    }
    let mut clusters: Vec<ClusterSummary> = by_key.into_values().collect();
    clusters.sort_by_key(|c| (c.fo4, c.width));
    clusters
}

/// The Figure 3 artifact: the regression-predicted pareto frontier, with
/// simulated ground truth for each frontier design.
#[derive(Debug, Clone)]
pub struct FrontierStudy {
    /// The benchmark analyzed.
    pub benchmark: Benchmark,
    /// Frontier designs ordered by increasing predicted delay.
    pub designs: Vec<DesignPoint>,
    /// Model-predicted metrics per frontier design.
    pub predicted: Vec<Metrics>,
    /// Simulated metrics per frontier design.
    pub simulated: Vec<Metrics>,
}

impl FrontierStudy {
    /// Asks the engine for the predicted Pareto slice and simulates every
    /// frontier design (the paper's Fig 3 overlay).
    pub fn run<O: Oracle + ?Sized>(
        oracle: &O,
        engine: &Engine,
        benchmark: Benchmark,
        config: &StudyConfig,
    ) -> Self {
        let _span = udse_obs::span::enter("frontier");
        let slice = engine
            .execute(&Query::pareto(benchmark, vec![], config.eval_stride, config.delay_bins))
            .expect("unconstrained pareto slice cannot fail");
        let rows = slice.frontier().expect("pareto query yields a frontier");
        let designs: Vec<DesignPoint> = rows.iter().map(|r| r.point).collect();
        let predicted: Vec<Metrics> = rows.iter().map(|r| r.predicted).collect();
        // Frontier sims are independent — run them as one parallel batch.
        let plan = EvalPlan::from_jobs(
            "pareto.frontier",
            designs.iter().map(|p| (benchmark, *p)).collect(),
        );
        let simulated = oracle.evaluate_plan(&plan);
        FrontierStudy { benchmark, designs, predicted, simulated }
    }

    /// The Figure 4 artifact: error distributions of the frontier
    /// predictions, `(performance, power)`.
    ///
    /// # Panics
    ///
    /// Panics if the frontier is empty (cannot happen for frontiers built
    /// by [`FrontierStudy::run`]).
    pub fn errors(&self) -> (ErrorSummary, ErrorSummary) {
        let obs_b: Vec<f64> = self.simulated.iter().map(|m| m.bips).collect();
        let pred_b: Vec<f64> = self.predicted.iter().map(|m| m.bips).collect();
        let obs_w: Vec<f64> = self.simulated.iter().map(|m| m.watts).collect();
        let pred_w: Vec<f64> = self.predicted.iter().map(|m| m.watts).collect();
        (ErrorSummary::from_pairs(&obs_b, &pred_b), ErrorSummary::from_pairs(&obs_w, &pred_w))
    }
}

/// The Table 2 artifact: the `bips^3/w`-maximizing design for one
/// benchmark, with prediction errors against simulation.
#[derive(Debug, Clone, Copy)]
pub struct EfficiencyOptimum {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// The predicted-optimal design.
    pub point: DesignPoint,
    /// Model-predicted metrics at the optimum.
    pub predicted: Metrics,
    /// Simulated metrics at the optimum.
    pub simulated: Metrics,
}

impl EfficiencyOptimum {
    /// Signed relative delay error `(obs - pred) / pred` (Table 2 signs).
    pub fn delay_error(&self) -> f64 {
        let pred = self.predicted.delay_seconds();
        (self.simulated.delay_seconds() - pred) / pred
    }

    /// Signed relative power error.
    pub fn power_error(&self) -> f64 {
        (self.simulated.watts - self.predicted.watts) / self.predicted.watts
    }
}

/// Finds the predicted `bips^3/w` optimum over the exploration space and
/// validates it by simulation (one row of Table 2). The engine's argmax
/// sweep is compiled and chunk-parallel with a boundary-independent
/// tie-break, so the chosen design matches a sequential `max_by` exactly;
/// nine per-benchmark requests cost one fused walk plus eight cache hits.
pub fn efficiency_optimum<O: Oracle + ?Sized>(
    oracle: &O,
    engine: &Engine,
    benchmark: Benchmark,
    config: &StudyConfig,
) -> EfficiencyOptimum {
    let _span = udse_obs::span::enter("optimum");
    let result = engine
        .execute(&Query::optimum(Some(benchmark), vec![], config.eval_stride))
        .expect("unconstrained efficiency optimum cannot fail");
    let entry = result.optima().expect("optimum query yields optima")[0].clone();
    let predicted = entry.predicted.expect("efficiency optimum carries predicted metrics");
    let simulated = oracle.evaluate(benchmark, &entry.point);
    EfficiencyOptimum { benchmark, point: entry.point, predicted, simulated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::studies::tests::TinyOracle;
    use crate::studies::TrainedSuite;

    fn setup() -> (Engine, StudyConfig) {
        let config = StudyConfig::quick();
        let suite = TrainedSuite::train(&TinyOracle, &config).unwrap();
        (Engine::new(suite, &config), config)
    }

    #[test]
    fn characterization_covers_all_depth_width_clusters() {
        let (engine, _config) = setup();
        let ch = characterize(&engine, Benchmark::Ammp);
        // 7 depths x 3 widths = 21 clusters.
        assert_eq!(ch.clusters.len(), 21);
        let total: usize = ch.clusters.iter().map(|c| c.count).sum();
        assert_eq!(total, ch.designs.len());
        for c in &ch.clusters {
            assert!(c.delay_min <= c.delay_max);
            assert!(c.power_min <= c.power_max);
        }
    }

    #[test]
    fn engine_characterization_matches_separate_sweeps_bitwise() {
        let (engine, config) = setup();
        let space = DesignSpace::exploration();
        let fused = characterize_all(&engine);
        assert_eq!(fused.len(), 9);
        for (b, ch) in Benchmark::ALL.iter().zip(&fused) {
            assert_eq!(ch.benchmark, *b);
            // Reference: a fresh single-model compiled sweep of the same
            // strided space, outside the engine.
            let compiled = engine.suite().models(*b).compile(&space);
            let mut per_pair = sweep_designs(&compiled.lanes(), &space, config.eval_stride);
            let separate = per_pair.pop().expect("one pair");
            assert_eq!(ch.designs.len(), separate.len());
            for (f, s) in ch.designs.iter().zip(&separate) {
                assert_eq!(f.point, s.point);
                assert_eq!(f.predicted.bips.to_bits(), s.predicted.bips.to_bits());
                assert_eq!(f.predicted.watts.to_bits(), s.predicted.watts.to_bits());
            }
            assert_eq!(ch.clusters, build_clusters(&separate));
        }
    }

    #[test]
    fn frontier_predictions_are_non_dominated() {
        let (engine, config) = setup();
        let fs = FrontierStudy::run(&TinyOracle, &engine, Benchmark::Mcf, &config);
        assert!(!fs.designs.is_empty());
        // Monotone skyline.
        for w in fs.predicted.windows(2) {
            assert!(w[0].delay_seconds() < w[1].delay_seconds());
            assert!(w[0].watts > w[1].watts);
        }
        let (perf_err, power_err) = fs.errors();
        // Smooth oracle: frontier errors should be small.
        assert!(perf_err.median() < 0.1);
        assert!(power_err.median() < 0.1);
    }

    #[test]
    fn efficiency_optimum_is_at_least_as_good_as_random_points() {
        let (engine, config) = setup();
        let space = DesignSpace::exploration();
        let models = engine.suite().models(Benchmark::Gzip);
        let opt = efficiency_optimum(&TinyOracle, &engine, Benchmark::Gzip, &config);
        // The optimum is the argmax over the strided evaluation set, so it
        // must beat every point of that same set.
        for p in crate::studies::strided_points(&space, config.eval_stride).take(200) {
            let eff = models.predict_efficiency(&p);
            assert!(opt.predicted.bips_cubed_per_watt() >= eff - 1e-12);
        }
        // Errors are finite and defined.
        assert!(opt.delay_error().is_finite());
        assert!(opt.power_error().is_finite());
    }
}
