//! Multiprocessor heterogeneity analysis (paper §6, Table 4, Figures
//! 8–9).
//!
//! Clusters the nine per-benchmark `bips³/w`-optimal architectures with
//! K-means in the normalized design-parameter space; centroids (snapped
//! back onto the design grid) are the *compromise architectures* of a
//! K-core heterogeneous multiprocessor, and the efficiency of each
//! benchmark on its compromise core — relative to the POWER4-like
//! baseline — quantifies the benefit of K degrees of heterogeneity.

use std::collections::HashMap;

use udse_cluster::{KMeans, MinMaxScaler};
use udse_trace::Benchmark;

use crate::baseline::baseline_point;
use crate::oracle::{Metrics, Oracle};
use crate::query::{Engine, Query};
use crate::space::{DesignPoint, DesignSpace};
use crate::studies::TrainedSuite;

/// The nine per-benchmark predicted-optimal architectures (the paper's
/// "benchmark architectures", Table 2's design columns).
#[derive(Debug, Clone)]
pub struct BenchmarkArchitectures {
    /// `(benchmark, predicted bips³/w-optimal design)` pairs in
    /// [`Benchmark::ALL`] order.
    pub optima: Vec<(Benchmark, DesignPoint)>,
}

impl BenchmarkArchitectures {
    /// Finds each benchmark's predicted `bips³/w` optimum over the
    /// exploration space via one unconstrained-optimum query. All nine
    /// argmaxes come out of *one* fused, chunk-parallel grid walk over
    /// the stacked suite lanes with a boundary-independent per-benchmark
    /// tie-break, so the nine optima match sequential `max_by` scans
    /// exactly; repeat calls are LRU cache hits.
    pub fn find(engine: &Engine) -> Self {
        let _span = udse_obs::span::enter("optima");
        let result = engine
            .execute(&Query::optimum(None, vec![], engine.stride()))
            .expect("unconstrained suite optima cannot fail");
        let optima = result
            .optima()
            .expect("optimum query yields optima")
            .iter()
            .map(|e| (e.benchmark.expect("per-benchmark entry"), e.point))
            .collect();
        BenchmarkArchitectures { optima }
    }

    /// The design for one benchmark.
    pub fn for_benchmark(&self, b: Benchmark) -> DesignPoint {
        self.optima[b.id() as usize].1
    }
}

/// One compromise core: the snapped centroid architecture and the
/// benchmarks mapped to it.
#[derive(Debug, Clone)]
pub struct CompromiseCluster {
    /// The compromise architecture (centroid snapped to the design grid).
    pub architecture: DesignPoint,
    /// Benchmarks assigned to this core.
    pub members: Vec<Benchmark>,
    /// Mean predicted delay of members running on this core (seconds).
    pub avg_delay: f64,
    /// Mean predicted power of members running on this core (watts).
    pub avg_power: f64,
}

/// Clusters the benchmark architectures into `k` compromise cores
/// (paper §6.1; Table 4 is `k = 4`).
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of benchmarks.
pub fn compromise_clusters(
    suite: &TrainedSuite,
    optima: &BenchmarkArchitectures,
    k: usize,
    seed: u64,
) -> Vec<CompromiseCluster> {
    assert!(k >= 1 && k <= optima.optima.len(), "k must be in 1..=9");
    let space = DesignSpace::exploration();
    let vectors: Vec<Vec<f64>> = optima.optima.iter().map(|(_, p)| p.cluster_vector()).collect();
    let scaler = MinMaxScaler::fit(&vectors);
    let normalized = scaler.transform_all(&vectors);
    let clustering = KMeans::new(k).with_restarts(16).run(&normalized, seed);
    (0..k)
        .map(|c| {
            let raw_centroid = scaler.inverse(&clustering.centroids()[c]);
            let architecture = space.nearest(&raw_centroid);
            let members: Vec<Benchmark> =
                clustering.members(c).into_iter().map(|i| optima.optima[i].0).collect();
            let metrics: Vec<Metrics> =
                members.iter().map(|&b| suite.models(b).predict_metrics(&architecture)).collect();
            let n = metrics.len().max(1) as f64;
            CompromiseCluster {
                architecture,
                members,
                avg_delay: metrics.iter().map(Metrics::delay_seconds).sum::<f64>() / n,
                avg_power: metrics.iter().map(|m| m.watts).sum::<f64>() / n,
            }
        })
        .collect()
}

/// The Figure 9 artifact: per-benchmark efficiency gains over the
/// baseline as heterogeneity (cluster count) grows.
#[derive(Debug, Clone)]
pub struct HeterogeneityGains {
    /// Cluster counts: 0 (baseline), 1 (homogeneous compromise), ..., 9
    /// (one core per benchmark).
    pub k_values: Vec<usize>,
    /// `gains[k_index][bench_id]`: efficiency on the assigned core
    /// relative to efficiency on the baseline core.
    pub gains: Vec<Vec<f64>>,
}

impl HeterogeneityGains {
    /// Average gain across the suite at each K.
    pub fn averages(&self) -> Vec<f64> {
        self.gains.iter().map(|g| g.iter().sum::<f64>() / g.len() as f64).collect()
    }

    /// The theoretical upper bound: the average gain at K = 9 (every
    /// benchmark on its own optimal core).
    pub fn upper_bound(&self) -> f64 {
        *self.averages().last().expect("K list non-empty")
    }
}

/// Computes gains using a metric source: either model predictions
/// (Fig 9a) or simulation (Fig 9b).
fn gains_with<F>(
    optima: &BenchmarkArchitectures,
    suite: &TrainedSuite,
    seed: u64,
    mut efficiency: F,
) -> HeterogeneityGains
where
    F: FnMut(Benchmark, &DesignPoint) -> f64,
{
    let base = baseline_point();
    let base_eff: Vec<f64> = Benchmark::ALL.iter().map(|&b| efficiency(b, &base)).collect();
    let mut k_values = vec![0usize];
    let mut gains = vec![vec![1.0; 9]];
    for k in 1..=9 {
        let clusters = compromise_clusters(suite, optima, k, seed);
        let mut row = vec![0.0; 9];
        for cluster in &clusters {
            for &b in &cluster.members {
                row[b.id() as usize] =
                    efficiency(b, &cluster.architecture) / base_eff[b.id() as usize];
            }
        }
        k_values.push(k);
        gains.push(row);
    }
    HeterogeneityGains { k_values, gains }
}

/// Predicted gains (Fig 9a): every efficiency from the regression models.
pub fn predicted_gains(
    suite: &TrainedSuite,
    optima: &BenchmarkArchitectures,
    seed: u64,
) -> HeterogeneityGains {
    gains_with(optima, suite, seed, |b, p| suite.models(b).predict_efficiency(p))
}

/// Simulated gains (Fig 9b): every efficiency from the oracle.
///
/// The clusterings themselves are model-driven and cheap, so they run
/// first to enumerate every `(benchmark, architecture)` pair Fig 9b
/// needs; those simulate as one parallel [`Oracle::evaluate_many`] batch
/// and the gain table replays from the lookup.
pub fn simulated_gains<O: Oracle + ?Sized>(
    oracle: &O,
    suite: &TrainedSuite,
    optima: &BenchmarkArchitectures,
    seed: u64,
) -> HeterogeneityGains {
    let base = baseline_point();
    let mut jobs: Vec<(Benchmark, DesignPoint)> =
        Benchmark::ALL.iter().map(|&b| (b, base)).collect();
    for k in 1..=9 {
        for cluster in compromise_clusters(suite, optima, k, seed) {
            for &b in &cluster.members {
                let job = (b, cluster.architecture);
                if !jobs.contains(&job) {
                    jobs.push(job);
                }
            }
        }
    }
    let plan = crate::plan::EvalPlan::from_jobs("heterogeneity.gains", jobs);
    let simulated: HashMap<(Benchmark, DesignPoint), Metrics> =
        plan.jobs().iter().copied().zip(oracle.evaluate_plan(&plan)).collect();
    gains_with(optima, suite, seed, |b, p| simulated[&(b, *p)].bips_cubed_per_watt())
}

/// Simulates every member benchmark on its compromise core and records
/// the model-vs-simulation error (the paper's Table 4 compromise-error
/// discussion) as `heterogeneity.compromise.bips` / `.watts`
/// [`udse_obs::QualityRecord`]s — the same collector validation feeds.
/// Returns the suite-mean absolute relative `(bips, watts)` errors.
pub fn compromise_errors<O: Oracle + ?Sized>(
    oracle: &O,
    suite: &TrainedSuite,
    clusters: &[CompromiseCluster],
) -> (f64, f64) {
    let jobs: Vec<(Benchmark, DesignPoint)> =
        clusters.iter().flat_map(|c| c.members.iter().map(|&b| (b, c.architecture))).collect();
    let plan = crate::plan::EvalPlan::from_jobs("heterogeneity.compromise", jobs);
    let simulated = oracle.evaluate_plan(&plan);
    let mut bips_signed = Vec::with_capacity(plan.len());
    let mut watts_signed = Vec::with_capacity(plan.len());
    for ((b, arch), sim) in plan.jobs().iter().zip(&simulated) {
        let pred = suite.models(*b).predict_metrics(arch);
        bips_signed.push((sim.bips - pred.bips) / pred.bips);
        watts_signed.push((sim.watts - pred.watts) / pred.watts);
    }
    udse_obs::quality::record(udse_obs::QualityRecord::from_signed_errors(
        "heterogeneity.compromise.bips",
        &bips_signed,
    ));
    udse_obs::quality::record(udse_obs::QualityRecord::from_signed_errors(
        "heterogeneity.compromise.watts",
        &watts_signed,
    ));
    let mean_abs = |v: &[f64]| v.iter().map(|e| e.abs()).sum::<f64>() / v.len().max(1) as f64;
    (mean_abs(&bips_signed), mean_abs(&watts_signed))
}

/// The Figure 8 artifact: delay/power of each benchmark on its own
/// optimal core, plus each K=4 compromise core's per-member points.
#[derive(Debug, Clone)]
pub struct ScatterData {
    /// `(benchmark, predicted metrics on its own optimum)`.
    pub optima_points: Vec<(Benchmark, Metrics)>,
    /// Per compromise cluster: `(architecture, per-member (benchmark,
    /// predicted metrics))`.
    pub compromise_points: Vec<(DesignPoint, Vec<(Benchmark, Metrics)>)>,
}

/// Builds the Figure 8 scatter data for a given K.
pub fn scatter_data(
    suite: &TrainedSuite,
    optima: &BenchmarkArchitectures,
    k: usize,
    seed: u64,
) -> ScatterData {
    let optima_points =
        optima.optima.iter().map(|&(b, p)| (b, suite.models(b).predict_metrics(&p))).collect();
    let compromise_points = compromise_clusters(suite, optima, k, seed)
        .into_iter()
        .map(|c| {
            let pts = c
                .members
                .iter()
                .map(|&b| (b, suite.models(b).predict_metrics(&c.architecture)))
                .collect();
            (c.architecture, pts)
        })
        .collect();
    ScatterData { optima_points, compromise_points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::studies::tests::TinyOracle;
    use crate::studies::StudyConfig;

    fn setup() -> (TrainedSuite, BenchmarkArchitectures, StudyConfig) {
        let config = StudyConfig::quick();
        let suite = TrainedSuite::train(&TinyOracle, &config).unwrap();
        let engine = Engine::new(suite.clone(), &config);
        let optima = BenchmarkArchitectures::find(&engine);
        (suite, optima, config)
    }

    #[test]
    fn nine_optima_found() {
        let (_suite, optima, _) = setup();
        assert_eq!(optima.optima.len(), 9);
        for (i, (b, _)) in optima.optima.iter().enumerate() {
            assert_eq!(b.id() as usize, i);
        }
        let _ = optima.for_benchmark(Benchmark::Mcf);
    }

    #[test]
    fn clusters_partition_the_suite() {
        let (suite, optima, _) = setup();
        for k in [1usize, 4, 9] {
            let clusters = compromise_clusters(&suite, &optima, k, 7);
            assert_eq!(clusters.len(), k);
            let mut all: Vec<Benchmark> = clusters.iter().flat_map(|c| c.members.clone()).collect();
            all.sort();
            all.dedup();
            assert_eq!(all.len(), 9, "every benchmark appears exactly once");
        }
    }

    #[test]
    fn k9_assigns_each_benchmark_an_optimal_architecture() {
        // With K = 9 every cluster's centroid coincides with its members'
        // (possibly shared) optimum: benchmarks with identical optima may
        // legitimately land in one cluster, but each member's assigned
        // architecture must equal its own optimum.
        let (suite, optima, _) = setup();
        let clusters = compromise_clusters(&suite, &optima, 9, 7);
        for c in &clusters {
            for &b in &c.members {
                assert_eq!(c.architecture, optima.for_benchmark(b));
            }
        }
    }

    #[test]
    fn gains_baseline_is_one_and_k9_is_upper_bound() {
        let (suite, optima, _) = setup();
        let g = predicted_gains(&suite, &optima, 3);
        assert_eq!(g.k_values, (0..=9).collect::<Vec<_>>());
        assert!(g.gains[0].iter().all(|&x| (x - 1.0).abs() < 1e-12));
        let avgs = g.averages();
        // K=9 is the theoretical maximum of the *averages* among cluster
        // counts (each benchmark on its own optimum).
        let max_avg = avgs.iter().cloned().fold(f64::MIN, f64::max);
        assert!((g.upper_bound() - max_avg).abs() < 1e-9 || g.upper_bound() >= max_avg - 1e-6);
        // Every benchmark at K=9 does at least as well as at baseline.
        assert!(g.gains[9].iter().all(|&x| x >= 1.0 - 1e-9));
    }

    #[test]
    fn simulated_gains_close_to_predicted_for_smooth_oracle() {
        let (suite, optima, _) = setup();
        let gp = predicted_gains(&suite, &optima, 3);
        let gs = simulated_gains(&TinyOracle, &suite, &optima, 3);
        let (ap, as_) = (gp.averages(), gs.averages());
        for (p, s) in ap.iter().zip(&as_) {
            assert!((p - s).abs() / s < 0.25, "pred {p} vs sim {s}");
        }
    }

    #[test]
    fn compromise_errors_record_quality_telemetry() {
        let (suite, optima, _) = setup();
        let clusters = compromise_clusters(&suite, &optima, 4, 7);
        let (bips_err, watts_err) = compromise_errors(&TinyOracle, &suite, &clusters);
        // TinyOracle is smooth, so the compromise predictions are close.
        assert!(bips_err < 0.1, "bips compromise error {bips_err}");
        assert!(watts_err < 0.1, "watts compromise error {watts_err}");
        let quality = udse_obs::quality::global().snapshot();
        for key in ["heterogeneity.compromise.bips", "heterogeneity.compromise.watts"] {
            let rec = quality.iter().find(|r| r.key == key).expect("compromise quality record");
            assert_eq!(rec.n, 9, "one error per benchmark on its compromise core");
        }
    }

    #[test]
    fn scatter_data_shapes() {
        let (suite, optima, _) = setup();
        let sd = scatter_data(&suite, &optima, 4, 7);
        assert_eq!(sd.optima_points.len(), 9);
        assert_eq!(sd.compromise_points.len(), 4);
        let member_total: usize = sd.compromise_points.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(member_total, 9);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn k_zero_panics() {
        let (suite, optima, _) = setup();
        let _ = compromise_clusters(&suite, &optima, 0, 1);
    }
}
