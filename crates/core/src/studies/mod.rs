//! The paper's design space studies: model validation (Fig 1), pareto
//! frontier analysis (§4), pipeline depth analysis (§5), and
//! multiprocessor heterogeneity analysis (§6).

pub mod depth;
pub mod heterogeneity;
pub mod pareto;
pub mod validation;

use udse_regress::RegressError;
use udse_trace::Benchmark;

use crate::model::{CompiledPaperModels, PaperModels, SuiteLanes};
use crate::oracle::Oracle;
use crate::plan::EvalPlan;
use crate::space::{DesignPoint, DesignSpace};

/// Shared knobs for the study drivers.
///
/// The paper's settings are `train_samples = 1000`,
/// `validation_samples = 100`, `eval_stride = 1` (exhaustive), and
/// `delay_bins = 100`; tests shrink all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyConfig {
    /// Number of UAR training samples drawn from the sampling space.
    pub train_samples: usize,
    /// Number of UAR validation samples.
    pub validation_samples: usize,
    /// Stride for "exhaustive" evaluation of the exploration space; 1
    /// evaluates all 262,500 points, k > 1 evaluates every k-th point.
    pub eval_stride: usize,
    /// Delay bins for pareto frontier discretization (§4.2).
    pub delay_bins: usize,
    /// RNG seed for sampling.
    pub seed: u64,
}

impl StudyConfig {
    /// The paper's full-scale settings.
    pub fn paper() -> Self {
        StudyConfig {
            train_samples: 1_000,
            validation_samples: 100,
            eval_stride: 1,
            delay_bins: 100,
            seed: 2007,
        }
    }

    /// Reduced settings for fast tests and examples.
    pub fn quick() -> Self {
        StudyConfig {
            train_samples: 200,
            validation_samples: 25,
            eval_stride: 500,
            delay_bins: 40,
            seed: 2007,
        }
    }
}

/// The nine per-benchmark model pairs trained on one shared UAR sample
/// of the full design space — the artifact every study consumes.
///
/// # Examples
///
/// ```no_run
/// use udse_core::oracle::SimOracle;
/// use udse_core::studies::{StudyConfig, TrainedSuite};
///
/// let oracle = SimOracle::new();
/// let suite = TrainedSuite::train(&oracle, &StudyConfig::paper()).unwrap();
/// println!("perf R^2 (ammp): {:.3}",
///     suite.models(udse_trace::Benchmark::Ammp).performance_model().r_squared());
/// ```
#[derive(Debug, Clone)]
pub struct TrainedSuite {
    models: Vec<PaperModels>,
    samples: Vec<DesignPoint>,
}

impl TrainedSuite {
    /// Samples the design space once and trains all nine benchmark model
    /// pairs against the oracle. The `9 × train_samples` simulations run
    /// as one [`Oracle::evaluate_plan`] batch (see
    /// [`TrainedSuite::training_plan`]) and the nine per-benchmark fits
    /// run through the work pool, so both phases parallelize; the
    /// trained coefficients are identical to a sequential run.
    ///
    /// # Errors
    ///
    /// Propagates the first fitting failure (in [`Benchmark::ALL`] order).
    pub fn train<O: Oracle + ?Sized>(
        oracle: &O,
        config: &StudyConfig,
    ) -> Result<Self, RegressError> {
        let _span = udse_obs::span::enter("train");
        let plan = Self::training_plan(config);
        let samples: Vec<DesignPoint> =
            plan.jobs()[..config.train_samples].iter().map(|&(_, p)| p).collect();
        let observations = {
            let _sim = udse_obs::span::enter("simulate");
            // Throughput over the whole simulate phase — preflight,
            // stream resolution, and the streamed runs together — so the
            // `--min-gauge sim.instructions_per_sec` CI floor watches
            // the decomposed oracle end to end, the way
            // `sweep.designs_per_sec` watches the compiled predictor.
            let insts_before = udse_obs::metrics::counter("sim.instructions").get();
            let started = std::time::Instant::now();
            let obs = oracle.evaluate_plan(&plan);
            let insts = udse_obs::metrics::counter("sim.instructions").get() - insts_before;
            let secs = started.elapsed().as_secs_f64();
            if insts > 0 && secs > 0.0 {
                udse_obs::metrics::gauge("sim.instructions_per_sec").set(insts as f64 / secs);
            }
            obs
        };
        let models = {
            let _fit = udse_obs::span::enter("fit");
            let per_benchmark: Vec<(Benchmark, &[crate::oracle::Metrics])> = Benchmark::ALL
                .iter()
                .zip(observations.chunks(samples.len()))
                .map(|(&b, obs)| (b, obs))
                .collect();
            udse_obs::pool::map(&per_benchmark, |&(b, obs)| {
                udse_obs::debug!("train", "fitting {b:?} on {} samples", samples.len());
                PaperModels::train_from_observations(b, &samples, obs)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?
        };
        Ok(TrainedSuite { models, samples })
    }

    /// The training-phase evaluation plan for a configuration: the
    /// benchmarks-major cross product of [`Benchmark::ALL`] with the UAR
    /// training sample, labeled `train`. [`TrainedSuite::train`] runs
    /// exactly this plan, so `repro plan` can emit it for out-of-process
    /// workers and the results splice back in bitwise-identically.
    pub fn training_plan(config: &StudyConfig) -> EvalPlan {
        let samples = DesignSpace::paper().sample_uar(config.train_samples, config.seed);
        EvalPlan::cross_suite("train", &samples)
    }

    /// The models for one benchmark.
    pub fn models(&self, benchmark: Benchmark) -> &PaperModels {
        &self.models[benchmark.id() as usize]
    }

    /// All nine model pairs in [`Benchmark::ALL`] order.
    pub fn all_models(&self) -> &[PaperModels] {
        &self.models
    }

    /// The shared training sample.
    pub fn training_samples(&self) -> &[DesignPoint] {
        &self.samples
    }

    /// Lowers all nine model pairs onto `space`'s predictor grid (see
    /// [`PaperModels::compile`]). The study sweeps compile once and then
    /// predict allocation-free across the whole space.
    pub fn compile(&self, space: &DesignSpace) -> CompiledSuite {
        CompiledSuite { models: self.models.iter().map(|m| m.compile(space)).collect() }
    }
}

/// A [`TrainedSuite`] lowered onto one design space's grid: nine
/// [`CompiledPaperModels`] in [`Benchmark::ALL`] order.
#[derive(Debug, Clone)]
pub struct CompiledSuite {
    models: Vec<CompiledPaperModels>,
}

impl CompiledSuite {
    /// The compiled models for one benchmark.
    pub fn models(&self, benchmark: Benchmark) -> &CompiledPaperModels {
        &self.models[benchmark.id() as usize]
    }

    /// All nine compiled model pairs in [`Benchmark::ALL`] order.
    pub fn all_models(&self) -> &[CompiledPaperModels] {
        &self.models
    }

    /// Stacks all nine pairs into one model-major [`SuiteLanes`] plan, so
    /// a fused sweep feeds 18 output lanes from one grid-index read.
    pub fn lanes(&self) -> SuiteLanes {
        SuiteLanes::stack(&self.models)
    }
}

/// Iterates ~`len / stride` points of the space, spread across *all*
/// parameter dimensions.
///
/// A naive `step_by(stride)` would alias the index radix: e.g. any stride
/// divisible by 5 visits only a single L2 size (L2 is the innermost index
/// digit). Instead the subset walks `index = k * G mod len` for a fixed
/// multiplier `G` coprime to every possible space size, which visits
/// distinct indices with low discrepancy in every dimension. `stride = 1`
/// degenerates to exhaustive iteration in natural order.
pub fn strided_points(
    space: &DesignSpace,
    stride: usize,
) -> impl Iterator<Item = DesignPoint> + '_ {
    (0..strided_count(space, stride)).map(move |k| strided_point(space, stride, k))
}

/// Number of points [`strided_points`] visits: `ceil(len / stride)`.
pub fn strided_count(space: &DesignSpace, stride: usize) -> u64 {
    space.len().div_ceil(stride.max(1) as u64)
}

/// The `k`-th point of the strided walk — random access into the same
/// sequence [`strided_points`] iterates, so chunked parallel sweeps over
/// `0..strided_count` concatenate to the exact sequential visit order.
pub fn strided_point(space: &DesignSpace, stride: usize, k: u64) -> DesignPoint {
    // Prime, larger than any space, and not a factor of 2, 3, 5, or 7 —
    // coprime to 375,000 = 2^3*3*5^6 and 262,500 = 2^2*3*5^5*7.
    const G: u64 = 1_000_003;
    let idx = if stride.max(1) == 1 { k } else { (k.wrapping_mul(G)) % space.len() };
    space.decode(idx).expect("index in range")
}

/// Process-wide allocation count before a sweep starts, or `None` when
/// no counting allocator is installed — pair with [`record_sweep`]'s
/// `allocs_before` argument.
pub(crate) fn sweep_allocs_snapshot() -> Option<u64> {
    udse_obs::alloc::counting().then(|| udse_obs::alloc::stats().allocs)
}

/// Records the sweep throughput metrics: bumps the `sweep.designs`
/// counter by `designs`, sets the `sweep.designs_per_sec` gauge, and —
/// given a [`sweep_allocs_snapshot`] taken before the sweep — sets the
/// `sweep.allocs_per_design` gauge so the CI diff gate
/// (`--tol-resource sweep.allocs_per_design:…`) can hold the compiled
/// sweep to (near) zero heap allocations per design. The allocation
/// delta is process-wide, so concurrent non-sweep work inflates it;
/// per-chunk pool bookkeeping amortizes to ~0 over a real grid walk.
/// Returns the rate (0 when `elapsed_seconds` is not positive).
pub(crate) fn record_sweep(designs: u64, elapsed_seconds: f64, allocs_before: Option<u64>) -> f64 {
    udse_obs::metrics::counter("sweep.designs").add(designs);
    if let Some(before) = allocs_before {
        if designs > 0 {
            let delta = udse_obs::alloc::stats().allocs.saturating_sub(before);
            udse_obs::metrics::gauge("sweep.allocs_per_design").set(delta as f64 / designs as f64);
        }
    }
    let rate = if elapsed_seconds > 0.0 { designs as f64 / elapsed_seconds } else { 0.0 };
    if rate > 0.0 {
        udse_obs::metrics::gauge("sweep.designs_per_sec").set(rate);
    }
    rate
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::oracle::Metrics;

    pub(crate) struct TinyOracle;

    impl Oracle for TinyOracle {
        fn evaluate(&self, b: Benchmark, p: &DesignPoint) -> Metrics {
            // Smooth, benchmark-dependent surface, cheap to evaluate.
            let v = p.predictors();
            let k = 1.0 + b.id() as f64 * 0.2;
            let bips = k * (6.0 / v[0]) * (1.0 + 0.15 * v[1].ln()) + 0.02 * v[6];
            let watts = 4.0 + k + 40.0 / v[0] + 1.2 * v[1] + 0.5 * v[6] + 0.01 * v[2];
            Metrics { bips, watts }
        }
    }

    #[test]
    fn suite_trains_all_nine() {
        let suite = TrainedSuite::train(&TinyOracle, &StudyConfig::quick()).unwrap();
        assert_eq!(suite.all_models().len(), 9);
        assert_eq!(suite.training_samples().len(), StudyConfig::quick().train_samples);
        for b in Benchmark::ALL {
            assert_eq!(suite.models(b).benchmark(), b);
        }
    }

    #[test]
    fn strided_iteration_counts() {
        let space = DesignSpace::exploration();
        let n = strided_points(&space, 500).count();
        assert_eq!(n, 525); // ceil(262500 / 500)
    }

    #[test]
    fn strided_subset_covers_every_dimension_level() {
        // Regression test: a naive step_by(stride) with stride divisible
        // by 5 would visit only one L2 size. The coprime walk must cover
        // every level of every group.
        let space = DesignSpace::exploration();
        for stride in [200usize, 500, 1000] {
            let pts: Vec<DesignPoint> = strided_points(&space, stride).collect();
            for extract in [
                |p: &DesignPoint| p.l2_idx,
                |p: &DesignPoint| p.dl1_idx,
                |p: &DesignPoint| p.il1_idx,
                |p: &DesignPoint| p.width_idx,
            ] {
                let mut levels: Vec<u8> = pts.iter().map(extract).collect();
                levels.sort_unstable();
                levels.dedup();
                assert!(levels.len() >= 3, "stride {stride} aliases a dimension");
            }
            let mut depths: Vec<u32> = pts.iter().map(|p| p.fo4()).collect();
            depths.sort_unstable();
            depths.dedup();
            assert_eq!(depths.len(), 7, "stride {stride} misses depths");
        }
    }

    #[test]
    fn strided_subset_has_distinct_indices() {
        let space = DesignSpace::exploration();
        let mut idx: Vec<u64> =
            strided_points(&space, 97).map(|p| space.encode(&p).unwrap()).collect();
        let n = idx.len();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), n, "coprime walk must not repeat indices");
    }

    #[test]
    fn config_presets() {
        assert_eq!(StudyConfig::paper().train_samples, 1_000);
        assert!(StudyConfig::quick().eval_stride > 1);
    }
}
