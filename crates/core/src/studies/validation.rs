//! Model validation on random designs (paper §3.4, Figure 1).
//!
//! Draws validation designs uniformly at random, simulates them, and
//! summarizes the `|obs - pred| / pred` error distributions per benchmark
//! for both the performance and the power model.

use udse_stats::{median, ErrorSummary};
use udse_trace::Benchmark;

use crate::oracle::Oracle;
use crate::plan::EvalPlan;
use crate::query::{Engine, Query};
use crate::space::DesignSpace;
use crate::studies::StudyConfig;

/// Per-benchmark validation errors for one model kind.
#[derive(Debug, Clone)]
pub struct BenchmarkValidation {
    /// The benchmark validated.
    pub benchmark: Benchmark,
    /// Performance-model error distribution.
    pub performance: ErrorSummary,
    /// Power-model error distribution.
    pub power: ErrorSummary,
}

/// The Figure 1 artifact: error distributions per benchmark plus overall
/// medians.
#[derive(Debug, Clone)]
pub struct ValidationStudy {
    /// One entry per benchmark in [`Benchmark::ALL`] order.
    pub per_benchmark: Vec<BenchmarkValidation>,
    /// Median of all performance errors pooled across benchmarks.
    pub overall_performance_median: f64,
    /// Median of all power errors pooled across benchmarks.
    pub overall_power_median: f64,
}

impl ValidationStudy {
    /// Runs the validation: `config.validation_samples` UAR designs from
    /// the *sampling* space, simulated for every benchmark and compared
    /// against the trained models.
    pub fn run<O: Oracle + ?Sized>(oracle: &O, engine: &Engine, config: &StudyConfig) -> Self {
        let _span = udse_obs::span::enter("validation");
        // Offset seed so validation never reuses training designs.
        let points =
            DesignSpace::paper().sample_uar(config.validation_samples, config.seed ^ 0xA11D);
        Self::run_on_points(oracle, engine, &points)
    }

    /// Runs the validation on an explicit point set. Predictions come
    /// from [`Query::Point`] executions, which use the uncompiled models
    /// — bitwise-identical to calling `predict_bips`/`predict_watts`
    /// directly.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn run_on_points<O: Oracle + ?Sized>(
        oracle: &O,
        engine: &Engine,
        points: &[crate::space::DesignPoint],
    ) -> Self {
        assert!(!points.is_empty(), "validation needs at least one point");
        // One parallel batch for the full benchmarks x points cross
        // product; results index as [bi * points.len() + pi].
        let plan = EvalPlan::cross_suite("validation", points);
        let simulated = oracle.evaluate_plan(&plan);
        let mut per_benchmark = Vec::with_capacity(9);
        let mut all_perf_signed = Vec::new();
        let mut all_power_signed = Vec::new();
        for (bi, &b) in Benchmark::ALL.iter().enumerate() {
            let models = engine.suite().models(b);
            let mut obs_bips = Vec::with_capacity(points.len());
            let mut pred_bips = Vec::with_capacity(points.len());
            let mut obs_watts = Vec::with_capacity(points.len());
            let mut pred_watts = Vec::with_capacity(points.len());
            for (pi, p) in points.iter().enumerate() {
                let m = simulated[bi * points.len() + pi];
                let pred = engine
                    .execute(&Query::point(b, *p))
                    .expect("point queries cannot fail")
                    .point_metrics()
                    .expect("point query yields metrics");
                obs_bips.push(m.bips);
                pred_bips.push(pred.bips);
                obs_watts.push(m.watts);
                pred_watts.push(pred.watts);
            }
            let performance = ErrorSummary::from_pairs(&obs_bips, &pred_bips);
            let power = ErrorSummary::from_pairs(&obs_watts, &pred_watts);
            let perf_signed: Vec<f64> =
                obs_bips.iter().zip(&pred_bips).map(|(o, p)| (o - p) / p).collect();
            let power_signed: Vec<f64> =
                obs_watts.iter().zip(&pred_watts).map(|(o, p)| (o - p) / p).collect();
            // Per-benchmark model-quality telemetry, persisted in the
            // run manifest and gated by `udse-inspect diff`.
            udse_obs::quality::record(
                udse_obs::QualityRecord::from_signed_errors(
                    &format!("validation.{}.bips", b.name()),
                    &perf_signed,
                )
                .with_r_squared(models.performance_model().r_squared()),
            );
            udse_obs::quality::record(
                udse_obs::QualityRecord::from_signed_errors(
                    &format!("validation.{}.watts", b.name()),
                    &power_signed,
                )
                .with_r_squared(models.power_model().r_squared()),
            );
            all_perf_signed.extend(perf_signed);
            all_power_signed.extend(power_signed);
            per_benchmark.push(BenchmarkValidation { benchmark: b, performance, power });
        }
        udse_obs::quality::record(udse_obs::QualityRecord::from_signed_errors(
            "validation.pooled.bips",
            &all_perf_signed,
        ));
        udse_obs::quality::record(udse_obs::QualityRecord::from_signed_errors(
            "validation.pooled.watts",
            &all_power_signed,
        ));
        let all_perf: Vec<f64> = all_perf_signed.iter().map(|e| e.abs()).collect();
        let all_power: Vec<f64> = all_power_signed.iter().map(|e| e.abs()).collect();
        ValidationStudy {
            per_benchmark,
            overall_performance_median: median(&all_perf),
            overall_power_median: median(&all_power),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::studies::tests::TinyOracle;
    use crate::studies::TrainedSuite;

    #[test]
    fn validation_on_smooth_oracle_is_accurate() {
        let config = StudyConfig::quick();
        let suite = TrainedSuite::train(&TinyOracle, &config).unwrap();
        let engine = Engine::new(suite, &config);
        let study = ValidationStudy::run(&TinyOracle, &engine, &config);
        assert_eq!(study.per_benchmark.len(), 9);
        // The fake surface is smooth, so spline models should nail it.
        assert!(
            study.overall_performance_median < 0.05,
            "median perf error {}",
            study.overall_performance_median
        );
        assert!(study.overall_power_median < 0.05);
        for bv in &study.per_benchmark {
            assert!(bv.performance.boxplot.n > 0);
            assert!(bv.power.median() >= 0.0);
        }
        // The run left quality telemetry behind for every benchmark plus
        // the pooled distributions, with R² attached to model records.
        let quality = udse_obs::quality::global().snapshot();
        for bv in &study.per_benchmark {
            for response in ["bips", "watts"] {
                let key = format!("validation.{}.{}", bv.benchmark.name(), response);
                let rec = quality.iter().find(|r| r.key == key).expect("per-benchmark record");
                assert_eq!(rec.n as usize, config.validation_samples);
                assert!(rec.r_squared.is_finite(), "model records carry R²");
            }
        }
        let pooled =
            quality.iter().find(|r| r.key == "validation.pooled.bips").expect("pooled record");
        assert!(
            (pooled.p50 - study.overall_performance_median).abs() < 1e-12,
            "pooled p50 {} vs study median {}",
            pooled.p50,
            study.overall_performance_median
        );
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_points_panics() {
        let config = StudyConfig::quick();
        let suite = TrainedSuite::train(&TinyOracle, &config).unwrap();
        let engine = Engine::new(suite, &config);
        let _ = ValidationStudy::run_on_points(&TinyOracle, &engine, &[]);
    }
}
