//! The paper-standard performance and power regression models (§3).

use std::ops::Range;

use udse_regress::{
    CompiledModel, Dataset, FittedModel, ModelSpec, RegressError, ResponseTransform, TermSpec,
};
use udse_trace::Benchmark;

use crate::oracle::{Metrics, Oracle};
use crate::space::{
    DesignPoint, DesignSpace, DL1_VALUES, IL1_VALUES, L2_VALUES, REGS_LEVELS, RESV_LEVELS,
    WIDTH_VALUES,
};

/// Predictor column indices produced by [`DesignPoint::predictors`].
mod var {
    pub const DEPTH: usize = 0;
    pub const WIDTH: usize = 1;
    pub const GPR: usize = 2;
    pub const RESV: usize = 3;
    pub const IL1: usize = 4;
    pub const DL1: usize = 5;
    pub const L2: usize = 6;
}

/// Builds the paper's §3.3 term set: restricted cubic splines with 4
/// knots on the predictors most correlated with the response (pipeline
/// depth, register file size) and 3 knots on the weaker ones (width,
/// reservation stations, cache sizes), plus the §3.2 domain-knowledge
/// interactions (depth x cache levels, width x registers, adjacent cache
/// levels).
pub fn paper_terms() -> Vec<TermSpec> {
    vec![
        TermSpec::Spline { var: var::DEPTH, knots: 4 },
        TermSpec::Spline { var: var::WIDTH, knots: 3 },
        TermSpec::Spline { var: var::GPR, knots: 4 },
        TermSpec::Spline { var: var::RESV, knots: 3 },
        TermSpec::Spline { var: var::IL1, knots: 3 },
        TermSpec::Spline { var: var::DL1, knots: 3 },
        TermSpec::Spline { var: var::L2, knots: 3 },
        TermSpec::Interaction(var::DEPTH, var::L2),
        TermSpec::Interaction(var::DEPTH, var::DL1),
        TermSpec::Interaction(var::WIDTH, var::GPR),
        TermSpec::Interaction(var::WIDTH, var::RESV),
        TermSpec::Interaction(var::IL1, var::L2),
        TermSpec::Interaction(var::DL1, var::L2),
    ]
}

/// The paper's performance model specification: `sqrt(bips)` response
/// over the spline + interaction terms.
pub fn performance_spec() -> ModelSpec {
    ModelSpec::new(ResponseTransform::Sqrt).with_terms(paper_terms())
}

/// The paper's power model specification: `log(watts)` response over the
/// same terms.
pub fn power_spec() -> ModelSpec {
    ModelSpec::new(ResponseTransform::Log).with_terms(paper_terms())
}

/// A per-benchmark pair of fitted models predicting performance (bips)
/// and power (watts) for any design point.
///
/// # Examples
///
/// ```no_run
/// use udse_core::model::PaperModels;
/// use udse_core::oracle::SimOracle;
/// use udse_core::space::DesignSpace;
/// use udse_trace::Benchmark;
///
/// let oracle = SimOracle::with_trace_len(20_000);
/// let samples = DesignSpace::paper().sample_uar(300, 1);
/// let models = PaperModels::train(&oracle, Benchmark::Ammp, &samples).unwrap();
/// let p = DesignSpace::exploration().decode(0).unwrap();
/// let eff = models.predict_efficiency(&p);
/// assert!(eff > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PaperModels {
    benchmark: Benchmark,
    performance: FittedModel,
    power: FittedModel,
}

impl PaperModels {
    /// Trains the performance and power models for one benchmark from a
    /// set of sampled designs, simulating each via the oracle (batched
    /// through [`Oracle::evaluate_many`], so simulations parallelize).
    ///
    /// # Errors
    ///
    /// Propagates fitting errors (rank deficiency, too few samples).
    pub fn train<O: Oracle + ?Sized>(
        oracle: &O,
        benchmark: Benchmark,
        samples: &[DesignPoint],
    ) -> Result<Self, RegressError> {
        let jobs: Vec<(Benchmark, DesignPoint)> = samples.iter().map(|p| (benchmark, *p)).collect();
        let responses = oracle.evaluate_many(&jobs);
        Self::train_from_observations(benchmark, samples, &responses)
    }

    /// Trains from pre-simulated observations (used when the same sample
    /// set feeds many model variants, e.g. the ablation benches).
    ///
    /// # Errors
    ///
    /// Propagates fitting errors.
    pub fn train_from_observations(
        benchmark: Benchmark,
        samples: &[DesignPoint],
        observations: &[Metrics],
    ) -> Result<Self, RegressError> {
        let data = design_dataset(samples)?;
        let bips: Vec<f64> = observations.iter().map(|m| m.bips).collect();
        let watts: Vec<f64> = observations.iter().map(|m| m.watts).collect();
        let performance = performance_spec().fit(&data, &bips)?;
        let power = power_spec().fit(&data, &watts)?;
        Ok(PaperModels { benchmark, performance, power })
    }

    /// The benchmark these models describe.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// Predicted performance in bips.
    pub fn predict_bips(&self, point: &DesignPoint) -> f64 {
        self.performance
            .predict_row(&point.predictors())
            .expect("predictor vector matches training width")
    }

    /// Predicted power in watts.
    pub fn predict_watts(&self, point: &DesignPoint) -> f64 {
        self.power
            .predict_row(&point.predictors())
            .expect("predictor vector matches training width")
    }

    /// Predicted `(bips, watts)` pair.
    pub fn predict_metrics(&self, point: &DesignPoint) -> Metrics {
        Metrics { bips: self.predict_bips(point), watts: self.predict_watts(point) }
    }

    /// Predicted delay in seconds per billion instructions.
    pub fn predict_delay(&self, point: &DesignPoint) -> f64 {
        self.predict_metrics(point).delay_seconds()
    }

    /// Predicted `bips^3 / w` efficiency.
    pub fn predict_efficiency(&self, point: &DesignPoint) -> f64 {
        self.predict_metrics(point).bips_cubed_per_watt()
    }

    /// The underlying performance model.
    pub fn performance_model(&self) -> &FittedModel {
        &self.performance
    }

    /// The underlying power model.
    pub fn power_model(&self) -> &FittedModel {
        &self.power
    }

    /// Lowers both models onto `space`'s discrete predictor grid for
    /// allocation-free exhaustive sweeps (see [`CompiledPaperModels`]).
    pub fn compile(&self, space: &DesignSpace) -> CompiledPaperModels {
        let levels = space_levels(space);
        CompiledPaperModels {
            benchmark: self.benchmark,
            performance: self
                .performance
                .compile(&levels)
                .expect("paper model compiles on its own predictor grid"),
            power: self
                .power
                .compile(&levels)
                .expect("paper model compiles on its own predictor grid"),
            depths: space.depths(),
        }
    }
}

/// The per-variable predictor levels of a design space, in
/// [`DesignPoint::predictors`] column order and computed with the *same
/// expressions* (integer arithmetic, then `as f64`, then `log2` for the
/// caches), so compiled-grid lookups by exact equality always hit.
fn space_levels(space: &DesignSpace) -> Vec<Vec<f64>> {
    vec![
        space.depths().iter().map(|&d| d as f64).collect(),
        WIDTH_VALUES.iter().map(|w| w.0 as f64).collect(),
        (0..REGS_LEVELS).map(|i| (40 + 10 * i as u32) as f64).collect(),
        (0..RESV_LEVELS).map(|i| (10 + 2 * i as u32) as f64).collect(),
        IL1_VALUES.iter().map(|&v| (v as f64).log2()).collect(),
        DL1_VALUES.iter().map(|&v| (v as f64).log2()).collect(),
        L2_VALUES.iter().map(|&v| (v as f64).log2()).collect(),
    ]
}

/// [`PaperModels`] lowered onto one design space's predictor grid
/// ([`FittedModel::compile`]): per-level spline partial sums replace knot
/// evaluation, so a prediction is seven table reads, six interaction
/// products, and a back-transform — no allocation. Used by the study
/// sweeps, which visit up to the full 262,500-point exploration space.
///
/// Predictions agree with the naive [`PaperModels`] path to ≤1e-12
/// relative error (proven exhaustively in the equivalence tests); they
/// are *not* guaranteed bitwise-equal, because the compiled form regroups
/// the floating-point accumulation.
#[derive(Debug, Clone)]
pub struct CompiledPaperModels {
    benchmark: Benchmark,
    performance: CompiledModel,
    power: CompiledModel,
    depths: &'static [u32],
}

impl CompiledPaperModels {
    /// The benchmark these models describe.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// Grid indices for `point`, in predictor column order. The point
    /// must come from the space this model was compiled for.
    ///
    /// Exposed so multi-model sweeps (all nine benchmarks over one grid
    /// walk) can compute the indices once per point and reuse them via
    /// [`CompiledPaperModels::predict_metrics_at`]; the same `idx` feeds
    /// every model compiled on the same space, and the resulting
    /// predictions are bitwise-identical to per-model
    /// [`CompiledPaperModels::predict_metrics`] calls.
    pub fn grid_indices(&self, point: &DesignPoint) -> [usize; 7] {
        self.indices(point)
    }

    fn indices(&self, point: &DesignPoint) -> [usize; 7] {
        debug_assert_eq!(
            self.depths.get(point.depth_idx as usize),
            Some(&point.fo4()),
            "design point comes from a different depth list than the compiled grid"
        );
        [
            point.depth_idx as usize,
            point.width_idx as usize,
            point.regs_idx as usize,
            point.resv_idx as usize,
            point.il1_idx as usize,
            point.dl1_idx as usize,
            point.l2_idx as usize,
        ]
    }

    /// Predicted performance in bips.
    pub fn predict_bips(&self, point: &DesignPoint) -> f64 {
        self.performance.predict_indices(&self.indices(point))
    }

    /// Predicted power in watts.
    pub fn predict_watts(&self, point: &DesignPoint) -> f64 {
        self.power.predict_indices(&self.indices(point))
    }

    /// Predicted `(bips, watts)` pair.
    pub fn predict_metrics(&self, point: &DesignPoint) -> Metrics {
        let idx = self.indices(point);
        Metrics {
            bips: self.performance.predict_indices(&idx),
            watts: self.power.predict_indices(&idx),
        }
    }

    /// Predicted `(bips, watts)` at precomputed grid indices (see
    /// [`CompiledPaperModels::grid_indices`]). Identical to
    /// [`CompiledPaperModels::predict_metrics`] on the point the indices
    /// came from.
    pub fn predict_metrics_at(&self, idx: &[usize; 7]) -> Metrics {
        Metrics {
            bips: self.performance.predict_indices(idx),
            watts: self.power.predict_indices(idx),
        }
    }

    /// Predicted delay in seconds per billion instructions.
    pub fn predict_delay(&self, point: &DesignPoint) -> f64 {
        self.predict_metrics(point).delay_seconds()
    }

    /// Predicted `bips^3 / w` efficiency.
    pub fn predict_efficiency(&self, point: &DesignPoint) -> f64 {
        self.predict_metrics(point).bips_cubed_per_watt()
    }

    /// The compiled performance model.
    pub fn performance_model(&self) -> &CompiledModel {
        &self.performance
    }

    /// The compiled power model.
    pub fn power_model(&self) -> &CompiledModel {
        &self.power
    }

    /// Stacks this pair into a single-pair [`SuiteLanes`] — the sweep
    /// kernel shape the study walks run on, here feeding two output
    /// lanes (bips, watts) per grid read.
    pub fn lanes(&self) -> SuiteLanes {
        SuiteLanes::stack(std::slice::from_ref(self))
    }
}

/// Accumulator capacity of the stacked kernels: room for the full
/// nine-benchmark suite (18 lanes) with headroom, small enough that the
/// per-point accumulators stay a couple of cache lines on the stack.
const MAX_LANES: usize = 32;

/// One or more [`CompiledPaperModels`] re-laid out *model-major*: for
/// every grid level there is one contiguous group of `2 × pairs` partial
/// sums — performance lanes first, then power lanes — so a single grid
/// index read feeds every stacked model at once. This is the
/// structure-of-arrays engine behind the fused study sweeps: the fused
/// nine-benchmark walk reads one level group per axis (18 adjacent
/// `f64`s) instead of paging through nine separate model tables.
///
/// Per lane, the accumulation order is identical to
/// [`CompiledModel::predict_indices`] — intercept, per-axis partial sums
/// in predictor order, interaction products in model order, response
/// back-transform — so stacked predictions are *bitwise-identical* to
/// per-model calls, which keeps fused sweeps interchangeable with
/// separate ones and `--jobs`/`--shards` runs deterministic.
#[derive(Debug, Clone)]
pub struct SuiteLanes {
    /// Stacked (performance, power) model pairs.
    pairs: usize,
    /// Output lanes: `2 * pairs`.
    lanes: usize,
    /// Depth list of the compiled grid (for space validation).
    depths: &'static [u32],
    /// Per-axis level-group offsets into `levels` (and, scaled by
    /// `lanes`, into `partial`).
    offsets: [usize; 8],
    /// The shared grid levels, flattened axis-major.
    levels: Vec<f64>,
    /// Per-lane intercepts.
    intercepts: Vec<f64>,
    /// Per-level lane groups: `partial[(offsets[v] + i) * lanes + m]` is
    /// lane `m`'s single-variable partial sum at axis `v`, level `i`.
    partial: Vec<f64>,
    /// Shared interaction variable pairs, in model order.
    inter_vars: Vec<(usize, usize)>,
    /// Interaction coefficients, lane groups in `inter_vars` order.
    inter_betas: Vec<f64>,
    /// Per-lane response transforms.
    transforms: Vec<ResponseTransform>,
}

impl SuiteLanes {
    /// Stacks compiled model pairs (1–9, e.g. a whole suite in
    /// [`Benchmark::ALL`] order) into one model-major lane plan. All
    /// pairs must be compiled on the same space.
    ///
    /// # Panics
    ///
    /// Panics when `models` is empty, exceeds the lane capacity, or the
    /// models disagree on grid levels or interaction structure.
    pub fn stack(models: &[CompiledPaperModels]) -> SuiteLanes {
        assert!(!models.is_empty(), "stack at least one model pair");
        let pairs = models.len();
        let lanes = 2 * pairs;
        assert!(lanes <= MAX_LANES, "at most {} model pairs per stack", MAX_LANES / 2);
        let first = models[0].performance_model();
        assert_eq!(first.width(), 7, "paper models have seven predictors");
        let mut offsets = [0usize; 8];
        for v in 0..7 {
            offsets[v + 1] = offsets[v] + first.levels(v).len();
        }
        let mut levels = Vec::with_capacity(offsets[7]);
        for v in 0..7 {
            levels.extend_from_slice(first.levels(v));
        }
        let inter_vars: Vec<(usize, usize)> =
            first.interactions().map(|(a, b, _)| (a, b)).collect();
        // Lane order: performance models 0..pairs, then power models.
        let columns: Vec<&CompiledModel> = models
            .iter()
            .map(CompiledPaperModels::performance_model)
            .chain(models.iter().map(CompiledPaperModels::power_model))
            .collect();
        for cm in &columns {
            assert_eq!(cm.width(), 7, "paper models have seven predictors");
            for v in 0..7 {
                assert_eq!(
                    cm.levels(v),
                    &levels[offsets[v]..offsets[v + 1]],
                    "stacked models must share one compiled grid (axis {v})"
                );
            }
            let ab: Vec<(usize, usize)> = cm.interactions().map(|(a, b, _)| (a, b)).collect();
            assert_eq!(ab, inter_vars, "stacked models must share the interaction structure");
        }
        let mut partial = vec![0.0; offsets[7] * lanes];
        let mut inter_betas = vec![0.0; inter_vars.len() * lanes];
        for (lane, cm) in columns.iter().enumerate() {
            for v in 0..7 {
                for (i, &p) in cm.partial_sums(v).iter().enumerate() {
                    partial[(offsets[v] + i) * lanes + lane] = p;
                }
            }
            for (t, (_, _, beta)) in cm.interactions().enumerate() {
                inter_betas[t * lanes + lane] = beta;
            }
        }
        SuiteLanes {
            pairs,
            lanes,
            depths: models[0].depths,
            offsets,
            levels,
            intercepts: columns.iter().map(|cm| cm.intercept()).collect(),
            partial,
            inter_vars,
            inter_betas,
            transforms: columns.iter().map(|cm| cm.transform()).collect(),
        }
    }

    /// Number of stacked (performance, power) model pairs.
    pub fn pairs(&self) -> usize {
        self.pairs
    }

    /// Runs every lane up to the interaction terms: accumulators seed
    /// with the intercepts, then each axis adds its contiguous level
    /// group, then each interaction adds its coefficient-lane product.
    #[inline]
    fn accumulate(&self, idx: &[usize; 7], acc: &mut [f64; MAX_LANES]) {
        let lanes = self.lanes;
        acc[..lanes].copy_from_slice(&self.intercepts);
        for (v, &i) in idx.iter().enumerate() {
            assert!(
                i < self.offsets[v + 1] - self.offsets[v],
                "level index {i} out of range on axis {v}"
            );
            let grp = &self.partial[(self.offsets[v] + i) * lanes..][..lanes];
            for (a, &p) in acc[..lanes].iter_mut().zip(grp) {
                *a += p;
            }
        }
        for (betas, &(av, bv)) in self.inter_betas.chunks_exact(lanes).zip(&self.inter_vars) {
            let xa = self.levels[self.offsets[av] + idx[av]];
            let xb = self.levels[self.offsets[bv] + idx[bv]];
            for (a, &b) in acc[..lanes].iter_mut().zip(betas) {
                *a += b * xa * xb;
            }
        }
    }

    /// Back-transforms the accumulator lanes into per-pair [`Metrics`].
    #[inline]
    fn finish(&self, acc: &[f64; MAX_LANES], out: &mut [Metrics]) {
        assert_eq!(out.len(), self.pairs, "one Metrics slot per stacked pair");
        for (m, o) in out.iter_mut().enumerate() {
            o.bips = self.transforms[m].invert(acc[m]);
            o.watts = self.transforms[self.pairs + m].invert(acc[self.pairs + m]);
        }
    }

    /// Predicts every stacked pair at one set of grid indices (see
    /// [`CompiledPaperModels::grid_indices`]): `out[m]` receives pair
    /// `m`'s metrics, bitwise-identical to
    /// [`CompiledPaperModels::predict_metrics_at`] on that pair.
    /// Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != pairs` or an index is out of range.
    pub fn predict_metrics_into(&self, idx: &[usize; 7], out: &mut [Metrics]) {
        let mut acc = [0.0f64; MAX_LANES];
        self.accumulate(idx, &mut acc);
        self.finish(&acc, out);
    }

    /// Batch kernel: predicts every stacked pair for each 7-index row of
    /// `idx_rows` (row-major), writing point-major into `out`
    /// (`out[r * pairs + m]` is row `r`, pair `m`). One grid-index read
    /// feeds all `2 × pairs` output lanes. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when the buffer lengths disagree
    /// (`out.len() * 7 != idx_rows.len() * pairs`) or an index is out of
    /// range.
    pub fn predict_metrics_batch(&self, idx_rows: &[usize], out: &mut [Metrics]) {
        assert_eq!(idx_rows.len() % 7, 0, "idx_rows must be 7-index rows");
        assert_eq!(
            out.len(),
            (idx_rows.len() / 7) * self.pairs,
            "out must hold {} Metrics per index row",
            self.pairs
        );
        let mut acc = [0.0f64; MAX_LANES];
        for (row, outs) in idx_rows.chunks_exact(7).zip(out.chunks_mut(self.pairs)) {
            let idx: &[usize; 7] = row.try_into().expect("chunks_exact yields 7-index rows");
            self.accumulate(idx, &mut acc);
            self.finish(&acc, outs);
        }
    }

    /// A reusable walker over `space` for these lanes: all scratch
    /// buffers are allocated here, so [`GridWalker::walk`] itself is
    /// allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when `space`'s grid does not match the compiled levels.
    pub fn walker(&self, space: &DesignSpace, stride: usize) -> GridWalker<'_> {
        assert_eq!(space.depths(), self.depths, "walker space must match the compiled grid");
        let dims = space.dimensions();
        for (v, &d) in dims.iter().enumerate() {
            assert_eq!(
                self.offsets[v + 1] - self.offsets[v],
                d as usize,
                "axis {v} level count differs from the compiled grid"
            );
        }
        GridWalker {
            lanes: self,
            space: space.clone(),
            stride: stride.max(1),
            dims,
            prefix: vec![0.0; 7 * self.lanes],
            metrics: vec![Metrics { bips: 0.0, watts: 0.0 }; self.pairs],
        }
    }
}

/// The shared inner loop of every exhaustive study sweep: enumerates a
/// contiguous range of the (possibly strided) design walk and hands each
/// visited [`DesignPoint`] plus its per-pair [`Metrics`] to a visitor.
///
/// For `stride == 1` the walk is a lexicographic odometer over the grid
/// axes carrying *incremental prefix sums*: `prefix[v]` holds the lane
/// accumulators through axis `v` (`intercept + partial₀ + … + partialᵥ`),
/// and an increment on axis `v` recomputes only `prefix[v..7]`. Since the
/// innermost axis moves on 4 of 5 steps, a point costs ~one lane add plus
/// the interaction products instead of seven scattered table reads and a
/// full index decode. Each prefix is a pure function of the point's own
/// indices and the accumulation order matches
/// [`CompiledModel::predict_indices`] exactly (left-to-right, one sum per
/// axis), so every visited value is bitwise-identical to a per-point
/// call — chunk boundaries cannot change results, which preserves the
/// `--jobs`/`--shards` determinism contract.
///
/// For `stride > 1` the walk visits [`crate::studies::strided_point`]
/// positions and runs the stacked per-point kernel; same bitwise
/// guarantee, no prefix reuse (consecutive strided points share no index
/// prefix).
///
/// After construction ([`SuiteLanes::walker`]), walking is
/// allocation-free.
#[derive(Debug)]
pub struct GridWalker<'a> {
    lanes: &'a SuiteLanes,
    space: DesignSpace,
    stride: usize,
    dims: [u8; 7],
    /// `prefix[v * lanes..][..lanes]`: accumulators through axis `v`.
    prefix: Vec<f64>,
    /// Per-pair metrics scratch handed to the visitor.
    metrics: Vec<Metrics>,
}

impl GridWalker<'_> {
    /// Visits positions `range` of the walk in order, calling
    /// `visit(point, metrics)` per design; `metrics[m]` is stacked pair
    /// `m`'s prediction. Ranges partition: walking `a..b` then `b..c`
    /// visits exactly the points of `a..c`, with identical values.
    ///
    /// # Panics
    ///
    /// Panics when `range.end` exceeds the strided walk length
    /// ([`crate::studies::strided_count`]).
    pub fn walk(&mut self, range: Range<u64>, mut visit: impl FnMut(DesignPoint, &[Metrics])) {
        assert!(
            range.end <= crate::studies::strided_count(&self.space, self.stride),
            "walk range exceeds the strided space"
        );
        if range.start >= range.end {
            return;
        }
        if self.stride == 1 {
            self.walk_natural(range, &mut visit);
        } else {
            self.walk_strided(range, &mut visit);
        }
    }

    /// Recomputes the prefix lanes for axes `from..7` at the current
    /// odometer indices.
    fn reprime(&mut self, from: usize, idx: &[usize; 7]) {
        let lanes = self.lanes.lanes;
        for v in from..7 {
            let grp = &self.lanes.partial[(self.lanes.offsets[v] + idx[v]) * lanes..][..lanes];
            if v == 0 {
                for ((d, &ic), &p) in
                    self.prefix[..lanes].iter_mut().zip(&self.lanes.intercepts).zip(grp)
                {
                    *d = ic + p;
                }
            } else {
                let (prev, cur) = self.prefix.split_at_mut(v * lanes);
                let prev = &prev[(v - 1) * lanes..];
                for ((d, &pr), &p) in cur[..lanes].iter_mut().zip(prev).zip(grp) {
                    *d = pr + p;
                }
            }
        }
    }

    fn walk_natural(&mut self, range: Range<u64>, visit: &mut impl FnMut(DesignPoint, &[Metrics])) {
        let lanes = self.lanes.lanes;
        let pairs = self.lanes.pairs;
        // Decode the first flat index into the odometer once; after that
        // every step is an increment.
        let mut idx = [0usize; 7];
        let mut rem = range.start;
        for v in (0..7).rev() {
            let d = self.dims[v] as u64;
            idx[v] = (rem % d) as usize;
            rem /= d;
        }
        self.reprime(0, &idx);
        let mut acc = [0.0f64; MAX_LANES];
        for _ in range {
            acc[..lanes].copy_from_slice(&self.prefix[6 * lanes..]);
            for (betas, &(av, bv)) in
                self.lanes.inter_betas.chunks_exact(lanes).zip(&self.lanes.inter_vars)
            {
                let xa = self.lanes.levels[self.lanes.offsets[av] + idx[av]];
                let xb = self.lanes.levels[self.lanes.offsets[bv] + idx[bv]];
                for (a, &b) in acc[..lanes].iter_mut().zip(betas) {
                    *a += b * xa * xb;
                }
            }
            for (m, o) in self.metrics.iter_mut().enumerate() {
                o.bips = self.lanes.transforms[m].invert(acc[m]);
                o.watts = self.lanes.transforms[pairs + m].invert(acc[pairs + m]);
            }
            let point = self
                .space
                .point([
                    idx[0] as u8,
                    idx[1] as u8,
                    idx[2] as u8,
                    idx[3] as u8,
                    idx[4] as u8,
                    idx[5] as u8,
                    idx[6] as u8,
                ])
                .expect("walker odometer stays in range");
            visit(point, &self.metrics);
            // Lexicographic increment; reprime from the lowest changed
            // axis. A full wrap only happens past the last grid point,
            // where the range is necessarily exhausted.
            for v in (0..7).rev() {
                idx[v] += 1;
                if idx[v] < self.dims[v] as usize {
                    self.reprime(v, &idx);
                    break;
                }
                idx[v] = 0;
            }
        }
    }

    fn walk_strided(&mut self, range: Range<u64>, visit: &mut impl FnMut(DesignPoint, &[Metrics])) {
        let lanes = self.lanes;
        for k in range {
            let point = crate::studies::strided_point(&self.space, self.stride, k);
            let idx = [
                point.depth_idx as usize,
                point.width_idx as usize,
                point.regs_idx as usize,
                point.resv_idx as usize,
                point.il1_idx as usize,
                point.dl1_idx as usize,
                point.l2_idx as usize,
            ];
            lanes.predict_metrics_into(&idx, &mut self.metrics);
            visit(point, &self.metrics);
        }
    }
}

/// Expands design points into the regression dataset.
///
/// # Errors
///
/// Returns [`RegressError::MalformedDataset`] when `samples` is empty.
pub fn design_dataset(samples: &[DesignPoint]) -> Result<Dataset, RegressError> {
    Dataset::new(
        DesignPoint::predictor_names(),
        samples.iter().map(DesignPoint::predictors).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimOracle;
    use crate::space::DesignSpace;
    use udse_stats::median_abs_rel_error;

    /// A fast fake oracle with a known smooth response surface.
    struct FakeOracle;

    impl Oracle for FakeOracle {
        fn evaluate(&self, _b: Benchmark, p: &DesignPoint) -> Metrics {
            let v = p.predictors();
            let bips = (8.0 / v[0]) * (1.0 + 0.2 * v[1].ln()) * (1.0 + 0.002 * v[2]) + 0.05 * v[6];
            let watts = (1.5 + 30.0 / v[0] + 0.8 * v[1] + 0.4 * v[6]).exp().ln() * 6.0 + 4.0;
            Metrics { bips, watts }
        }
    }

    #[test]
    fn models_fit_smooth_surface_accurately() {
        let space = DesignSpace::paper();
        let samples = space.sample_uar(400, 5);
        let models = PaperModels::train(&FakeOracle, Benchmark::Gzip, &samples).unwrap();
        let validation = space.sample_uar(50, 99);
        let (mut obs_b, mut pred_b) = (Vec::new(), Vec::new());
        for p in &validation {
            obs_b.push(FakeOracle.evaluate(Benchmark::Gzip, p).bips);
            pred_b.push(models.predict_bips(p));
        }
        let err = median_abs_rel_error(&obs_b, &pred_b);
        assert!(err < 0.05, "median error {err} too high for smooth surface");
    }

    #[test]
    fn train_on_simulator_produces_reasonable_models() {
        let space = DesignSpace::paper();
        let oracle = SimOracle::with_trace_len(4_000);
        let samples = space.sample_uar(120, 11);
        let models = PaperModels::train(&oracle, Benchmark::Gzip, &samples).unwrap();
        assert!(models.performance_model().r_squared() > 0.7);
        assert!(models.power_model().r_squared() > 0.8);
        let p = space.decode(1000).unwrap();
        assert!(models.predict_bips(&p) > 0.0);
        assert!(models.predict_watts(&p) > 0.0);
        assert_eq!(models.benchmark(), Benchmark::Gzip);
    }

    #[test]
    fn compiled_models_match_naive_predictions() {
        let space = DesignSpace::exploration();
        let samples = DesignSpace::paper().sample_uar(300, 7);
        let models = PaperModels::train(&FakeOracle, Benchmark::Gzip, &samples).unwrap();
        let compiled = models.compile(&space);
        assert_eq!(compiled.benchmark(), Benchmark::Gzip);
        for k in [0u64, 1, 999, 123_456, 262_499] {
            let p = space.decode(k).unwrap();
            let naive = models.predict_metrics(&p);
            let fast = compiled.predict_metrics(&p);
            assert!((fast.bips - naive.bips).abs() <= 1e-12 * naive.bips.abs());
            assert!((fast.watts - naive.watts).abs() <= 1e-12 * naive.watts.abs());
            // The compiled row path (exact-equality lookup) agrees too.
            let row = p.predictors();
            assert_eq!(compiled.performance_model().predict_row(&row).unwrap(), fast.bips);
        }
    }

    /// Two distinct model pairs on the exploration grid.
    fn two_compiled() -> (DesignSpace, Vec<CompiledPaperModels>) {
        let space = DesignSpace::exploration();
        let compiled: Vec<CompiledPaperModels> = [7u64, 21]
            .iter()
            .map(|&seed| {
                let samples = DesignSpace::paper().sample_uar(300, seed);
                PaperModels::train(&FakeOracle, Benchmark::Gzip, &samples).unwrap().compile(&space)
            })
            .collect();
        (space, compiled)
    }

    #[test]
    fn stacked_lanes_match_per_model_predictions_bitwise() {
        let (space, compiled) = two_compiled();
        let lanes = SuiteLanes::stack(&compiled);
        assert_eq!(lanes.pairs(), 2);
        let mut out = vec![Metrics { bips: 0.0, watts: 0.0 }; 2];
        for k in [0u64, 1, 999, 123_456, 262_499] {
            let p = space.decode(k).unwrap();
            let idx = compiled[0].grid_indices(&p);
            lanes.predict_metrics_into(&idx, &mut out);
            for (got, cm) in out.iter().zip(&compiled) {
                let want = cm.predict_metrics_at(&idx);
                assert_eq!(got.bips.to_bits(), want.bips.to_bits());
                assert_eq!(got.watts.to_bits(), want.watts.to_bits());
            }
        }
    }

    #[test]
    fn stacked_batch_kernel_matches_scalar_path() {
        let (space, compiled) = two_compiled();
        let lanes = SuiteLanes::stack(&compiled);
        let points: Vec<DesignPoint> = space.sample_uar(37, 3);
        let idx_rows: Vec<usize> =
            points.iter().flat_map(|p| compiled[0].grid_indices(p)).collect();
        let mut out = vec![Metrics { bips: 0.0, watts: 0.0 }; points.len() * 2];
        lanes.predict_metrics_batch(&idx_rows, &mut out);
        for (p, outs) in points.iter().zip(out.chunks(2)) {
            for (got, cm) in outs.iter().zip(&compiled) {
                let want = cm.predict_metrics(p);
                assert_eq!(got.bips.to_bits(), want.bips.to_bits());
                assert_eq!(got.watts.to_bits(), want.watts.to_bits());
            }
        }
    }

    #[test]
    fn grid_walker_matches_per_point_predictions_bitwise() {
        let (space, compiled) = two_compiled();
        let lanes = SuiteLanes::stack(&compiled);
        let mut walker = lanes.walker(&space, 1);
        // Ranges crossing several axis rollovers, including the very end
        // of the space (full odometer wrap).
        for range in [0u64..150, 12_340..12_640, 262_400..262_500] {
            let mut k = range.start;
            walker.walk(range.clone(), |point, metrics| {
                assert_eq!(point, space.decode(k).unwrap(), "walk order must be natural order");
                for (got, cm) in metrics.iter().zip(&compiled) {
                    let want = cm.predict_metrics(&point);
                    assert_eq!(got.bips.to_bits(), want.bips.to_bits());
                    assert_eq!(got.watts.to_bits(), want.watts.to_bits());
                }
                k += 1;
            });
            assert_eq!(k, range.end, "walk must visit every range position");
        }
    }

    #[test]
    fn grid_walker_ranges_partition() {
        // Chunked walks concatenate to the whole walk — the property the
        // pool-parallel sweeps rely on.
        let (space, compiled) = two_compiled();
        let lanes = SuiteLanes::stack(&compiled);
        let whole: Vec<(DesignPoint, f64)> = {
            let mut walker = lanes.walker(&space, 1);
            let mut v = Vec::new();
            walker.walk(1000..1400, |p, m| v.push((p, m[1].bips)));
            v
        };
        let mut pieces = Vec::new();
        let mut walker = lanes.walker(&space, 1);
        for r in [1000u64..1111, 1111..1112, 1112..1400] {
            walker.walk(r, |p, m| pieces.push((p, m[1].bips)));
        }
        assert_eq!(whole.len(), pieces.len());
        for (a, b) in whole.iter().zip(&pieces) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn strided_walker_matches_strided_points() {
        let (space, compiled) = two_compiled();
        let lanes = compiled[1].lanes();
        assert_eq!(lanes.pairs(), 1);
        let stride = 500;
        let total = crate::studies::strided_count(&space, stride);
        let mut walker = lanes.walker(&space, stride);
        let mut k = 0u64;
        walker.walk(0..total, |point, metrics| {
            let want_p = crate::studies::strided_point(&space, stride, k);
            assert_eq!(point, want_p);
            let want = compiled[1].predict_metrics(&point);
            assert_eq!(metrics[0].bips.to_bits(), want.bips.to_bits());
            assert_eq!(metrics[0].watts.to_bits(), want.watts.to_bits());
            k += 1;
        });
        assert_eq!(k, total);
    }

    #[test]
    #[should_panic(expected = "share one compiled grid")]
    fn stacking_rejects_mismatched_grids() {
        let samples = DesignSpace::paper().sample_uar(300, 7);
        let models = PaperModels::train(&FakeOracle, Benchmark::Gzip, &samples).unwrap();
        let a = models.compile(&DesignSpace::exploration());
        let b = models.compile(&DesignSpace::paper());
        let _ = SuiteLanes::stack(&[a, b]);
    }

    #[test]
    fn spec_shapes() {
        assert_eq!(paper_terms().len(), 13);
        assert_eq!(performance_spec().transform(), ResponseTransform::Sqrt);
        assert_eq!(power_spec().transform(), ResponseTransform::Log);
    }

    #[test]
    fn empty_samples_rejected() {
        assert!(design_dataset(&[]).is_err());
    }
}
