//! The paper-standard performance and power regression models (§3).

use udse_regress::{
    CompiledModel, Dataset, FittedModel, ModelSpec, RegressError, ResponseTransform, TermSpec,
};
use udse_trace::Benchmark;

use crate::oracle::{Metrics, Oracle};
use crate::space::{
    DesignPoint, DesignSpace, DL1_VALUES, IL1_VALUES, L2_VALUES, REGS_LEVELS, RESV_LEVELS,
    WIDTH_VALUES,
};

/// Predictor column indices produced by [`DesignPoint::predictors`].
mod var {
    pub const DEPTH: usize = 0;
    pub const WIDTH: usize = 1;
    pub const GPR: usize = 2;
    pub const RESV: usize = 3;
    pub const IL1: usize = 4;
    pub const DL1: usize = 5;
    pub const L2: usize = 6;
}

/// Builds the paper's §3.3 term set: restricted cubic splines with 4
/// knots on the predictors most correlated with the response (pipeline
/// depth, register file size) and 3 knots on the weaker ones (width,
/// reservation stations, cache sizes), plus the §3.2 domain-knowledge
/// interactions (depth x cache levels, width x registers, adjacent cache
/// levels).
pub fn paper_terms() -> Vec<TermSpec> {
    vec![
        TermSpec::Spline { var: var::DEPTH, knots: 4 },
        TermSpec::Spline { var: var::WIDTH, knots: 3 },
        TermSpec::Spline { var: var::GPR, knots: 4 },
        TermSpec::Spline { var: var::RESV, knots: 3 },
        TermSpec::Spline { var: var::IL1, knots: 3 },
        TermSpec::Spline { var: var::DL1, knots: 3 },
        TermSpec::Spline { var: var::L2, knots: 3 },
        TermSpec::Interaction(var::DEPTH, var::L2),
        TermSpec::Interaction(var::DEPTH, var::DL1),
        TermSpec::Interaction(var::WIDTH, var::GPR),
        TermSpec::Interaction(var::WIDTH, var::RESV),
        TermSpec::Interaction(var::IL1, var::L2),
        TermSpec::Interaction(var::DL1, var::L2),
    ]
}

/// The paper's performance model specification: `sqrt(bips)` response
/// over the spline + interaction terms.
pub fn performance_spec() -> ModelSpec {
    ModelSpec::new(ResponseTransform::Sqrt).with_terms(paper_terms())
}

/// The paper's power model specification: `log(watts)` response over the
/// same terms.
pub fn power_spec() -> ModelSpec {
    ModelSpec::new(ResponseTransform::Log).with_terms(paper_terms())
}

/// A per-benchmark pair of fitted models predicting performance (bips)
/// and power (watts) for any design point.
///
/// # Examples
///
/// ```no_run
/// use udse_core::model::PaperModels;
/// use udse_core::oracle::SimOracle;
/// use udse_core::space::DesignSpace;
/// use udse_trace::Benchmark;
///
/// let oracle = SimOracle::with_trace_len(20_000);
/// let samples = DesignSpace::paper().sample_uar(300, 1);
/// let models = PaperModels::train(&oracle, Benchmark::Ammp, &samples).unwrap();
/// let p = DesignSpace::exploration().decode(0).unwrap();
/// let eff = models.predict_efficiency(&p);
/// assert!(eff > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PaperModels {
    benchmark: Benchmark,
    performance: FittedModel,
    power: FittedModel,
}

impl PaperModels {
    /// Trains the performance and power models for one benchmark from a
    /// set of sampled designs, simulating each via the oracle (batched
    /// through [`Oracle::evaluate_many`], so simulations parallelize).
    ///
    /// # Errors
    ///
    /// Propagates fitting errors (rank deficiency, too few samples).
    pub fn train<O: Oracle + ?Sized>(
        oracle: &O,
        benchmark: Benchmark,
        samples: &[DesignPoint],
    ) -> Result<Self, RegressError> {
        let jobs: Vec<(Benchmark, DesignPoint)> = samples.iter().map(|p| (benchmark, *p)).collect();
        let responses = oracle.evaluate_many(&jobs);
        Self::train_from_observations(benchmark, samples, &responses)
    }

    /// Trains from pre-simulated observations (used when the same sample
    /// set feeds many model variants, e.g. the ablation benches).
    ///
    /// # Errors
    ///
    /// Propagates fitting errors.
    pub fn train_from_observations(
        benchmark: Benchmark,
        samples: &[DesignPoint],
        observations: &[Metrics],
    ) -> Result<Self, RegressError> {
        let data = design_dataset(samples)?;
        let bips: Vec<f64> = observations.iter().map(|m| m.bips).collect();
        let watts: Vec<f64> = observations.iter().map(|m| m.watts).collect();
        let performance = performance_spec().fit(&data, &bips)?;
        let power = power_spec().fit(&data, &watts)?;
        Ok(PaperModels { benchmark, performance, power })
    }

    /// The benchmark these models describe.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// Predicted performance in bips.
    pub fn predict_bips(&self, point: &DesignPoint) -> f64 {
        self.performance
            .predict_row(&point.predictors())
            .expect("predictor vector matches training width")
    }

    /// Predicted power in watts.
    pub fn predict_watts(&self, point: &DesignPoint) -> f64 {
        self.power
            .predict_row(&point.predictors())
            .expect("predictor vector matches training width")
    }

    /// Predicted `(bips, watts)` pair.
    pub fn predict_metrics(&self, point: &DesignPoint) -> Metrics {
        Metrics { bips: self.predict_bips(point), watts: self.predict_watts(point) }
    }

    /// Predicted delay in seconds per billion instructions.
    pub fn predict_delay(&self, point: &DesignPoint) -> f64 {
        self.predict_metrics(point).delay_seconds()
    }

    /// Predicted `bips^3 / w` efficiency.
    pub fn predict_efficiency(&self, point: &DesignPoint) -> f64 {
        self.predict_metrics(point).bips_cubed_per_watt()
    }

    /// The underlying performance model.
    pub fn performance_model(&self) -> &FittedModel {
        &self.performance
    }

    /// The underlying power model.
    pub fn power_model(&self) -> &FittedModel {
        &self.power
    }

    /// Lowers both models onto `space`'s discrete predictor grid for
    /// allocation-free exhaustive sweeps (see [`CompiledPaperModels`]).
    pub fn compile(&self, space: &DesignSpace) -> CompiledPaperModels {
        let levels = space_levels(space);
        CompiledPaperModels {
            benchmark: self.benchmark,
            performance: self
                .performance
                .compile(&levels)
                .expect("paper model compiles on its own predictor grid"),
            power: self
                .power
                .compile(&levels)
                .expect("paper model compiles on its own predictor grid"),
            depths: space.depths(),
        }
    }
}

/// The per-variable predictor levels of a design space, in
/// [`DesignPoint::predictors`] column order and computed with the *same
/// expressions* (integer arithmetic, then `as f64`, then `log2` for the
/// caches), so compiled-grid lookups by exact equality always hit.
fn space_levels(space: &DesignSpace) -> Vec<Vec<f64>> {
    vec![
        space.depths().iter().map(|&d| d as f64).collect(),
        WIDTH_VALUES.iter().map(|w| w.0 as f64).collect(),
        (0..REGS_LEVELS).map(|i| (40 + 10 * i as u32) as f64).collect(),
        (0..RESV_LEVELS).map(|i| (10 + 2 * i as u32) as f64).collect(),
        IL1_VALUES.iter().map(|&v| (v as f64).log2()).collect(),
        DL1_VALUES.iter().map(|&v| (v as f64).log2()).collect(),
        L2_VALUES.iter().map(|&v| (v as f64).log2()).collect(),
    ]
}

/// [`PaperModels`] lowered onto one design space's predictor grid
/// ([`FittedModel::compile`]): per-level spline partial sums replace knot
/// evaluation, so a prediction is seven table reads, six interaction
/// products, and a back-transform — no allocation. Used by the study
/// sweeps, which visit up to the full 262,500-point exploration space.
///
/// Predictions agree with the naive [`PaperModels`] path to ≤1e-12
/// relative error (proven exhaustively in the equivalence tests); they
/// are *not* guaranteed bitwise-equal, because the compiled form regroups
/// the floating-point accumulation.
#[derive(Debug, Clone)]
pub struct CompiledPaperModels {
    benchmark: Benchmark,
    performance: CompiledModel,
    power: CompiledModel,
    depths: &'static [u32],
}

impl CompiledPaperModels {
    /// The benchmark these models describe.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// Grid indices for `point`, in predictor column order. The point
    /// must come from the space this model was compiled for.
    ///
    /// Exposed so multi-model sweeps (all nine benchmarks over one grid
    /// walk) can compute the indices once per point and reuse them via
    /// [`CompiledPaperModels::predict_metrics_at`]; the same `idx` feeds
    /// every model compiled on the same space, and the resulting
    /// predictions are bitwise-identical to per-model
    /// [`CompiledPaperModels::predict_metrics`] calls.
    pub fn grid_indices(&self, point: &DesignPoint) -> [usize; 7] {
        self.indices(point)
    }

    fn indices(&self, point: &DesignPoint) -> [usize; 7] {
        debug_assert_eq!(
            self.depths.get(point.depth_idx as usize),
            Some(&point.fo4()),
            "design point comes from a different depth list than the compiled grid"
        );
        [
            point.depth_idx as usize,
            point.width_idx as usize,
            point.regs_idx as usize,
            point.resv_idx as usize,
            point.il1_idx as usize,
            point.dl1_idx as usize,
            point.l2_idx as usize,
        ]
    }

    /// Predicted performance in bips.
    pub fn predict_bips(&self, point: &DesignPoint) -> f64 {
        self.performance.predict_indices(&self.indices(point))
    }

    /// Predicted power in watts.
    pub fn predict_watts(&self, point: &DesignPoint) -> f64 {
        self.power.predict_indices(&self.indices(point))
    }

    /// Predicted `(bips, watts)` pair.
    pub fn predict_metrics(&self, point: &DesignPoint) -> Metrics {
        let idx = self.indices(point);
        Metrics {
            bips: self.performance.predict_indices(&idx),
            watts: self.power.predict_indices(&idx),
        }
    }

    /// Predicted `(bips, watts)` at precomputed grid indices (see
    /// [`CompiledPaperModels::grid_indices`]). Identical to
    /// [`CompiledPaperModels::predict_metrics`] on the point the indices
    /// came from.
    pub fn predict_metrics_at(&self, idx: &[usize; 7]) -> Metrics {
        Metrics {
            bips: self.performance.predict_indices(idx),
            watts: self.power.predict_indices(idx),
        }
    }

    /// Predicted delay in seconds per billion instructions.
    pub fn predict_delay(&self, point: &DesignPoint) -> f64 {
        self.predict_metrics(point).delay_seconds()
    }

    /// Predicted `bips^3 / w` efficiency.
    pub fn predict_efficiency(&self, point: &DesignPoint) -> f64 {
        self.predict_metrics(point).bips_cubed_per_watt()
    }

    /// The compiled performance model.
    pub fn performance_model(&self) -> &CompiledModel {
        &self.performance
    }

    /// The compiled power model.
    pub fn power_model(&self) -> &CompiledModel {
        &self.power
    }
}

/// Expands design points into the regression dataset.
///
/// # Errors
///
/// Returns [`RegressError::MalformedDataset`] when `samples` is empty.
pub fn design_dataset(samples: &[DesignPoint]) -> Result<Dataset, RegressError> {
    Dataset::new(
        DesignPoint::predictor_names(),
        samples.iter().map(DesignPoint::predictors).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::SimOracle;
    use crate::space::DesignSpace;
    use udse_stats::median_abs_rel_error;

    /// A fast fake oracle with a known smooth response surface.
    struct FakeOracle;

    impl Oracle for FakeOracle {
        fn evaluate(&self, _b: Benchmark, p: &DesignPoint) -> Metrics {
            let v = p.predictors();
            let bips = (8.0 / v[0]) * (1.0 + 0.2 * v[1].ln()) * (1.0 + 0.002 * v[2]) + 0.05 * v[6];
            let watts = (1.5 + 30.0 / v[0] + 0.8 * v[1] + 0.4 * v[6]).exp().ln() * 6.0 + 4.0;
            Metrics { bips, watts }
        }
    }

    #[test]
    fn models_fit_smooth_surface_accurately() {
        let space = DesignSpace::paper();
        let samples = space.sample_uar(400, 5);
        let models = PaperModels::train(&FakeOracle, Benchmark::Gzip, &samples).unwrap();
        let validation = space.sample_uar(50, 99);
        let (mut obs_b, mut pred_b) = (Vec::new(), Vec::new());
        for p in &validation {
            obs_b.push(FakeOracle.evaluate(Benchmark::Gzip, p).bips);
            pred_b.push(models.predict_bips(p));
        }
        let err = median_abs_rel_error(&obs_b, &pred_b);
        assert!(err < 0.05, "median error {err} too high for smooth surface");
    }

    #[test]
    fn train_on_simulator_produces_reasonable_models() {
        let space = DesignSpace::paper();
        let oracle = SimOracle::with_trace_len(4_000);
        let samples = space.sample_uar(120, 11);
        let models = PaperModels::train(&oracle, Benchmark::Gzip, &samples).unwrap();
        assert!(models.performance_model().r_squared() > 0.7);
        assert!(models.power_model().r_squared() > 0.8);
        let p = space.decode(1000).unwrap();
        assert!(models.predict_bips(&p) > 0.0);
        assert!(models.predict_watts(&p) > 0.0);
        assert_eq!(models.benchmark(), Benchmark::Gzip);
    }

    #[test]
    fn compiled_models_match_naive_predictions() {
        let space = DesignSpace::exploration();
        let samples = DesignSpace::paper().sample_uar(300, 7);
        let models = PaperModels::train(&FakeOracle, Benchmark::Gzip, &samples).unwrap();
        let compiled = models.compile(&space);
        assert_eq!(compiled.benchmark(), Benchmark::Gzip);
        for k in [0u64, 1, 999, 123_456, 262_499] {
            let p = space.decode(k).unwrap();
            let naive = models.predict_metrics(&p);
            let fast = compiled.predict_metrics(&p);
            assert!((fast.bips - naive.bips).abs() <= 1e-12 * naive.bips.abs());
            assert!((fast.watts - naive.watts).abs() <= 1e-12 * naive.watts.abs());
            // The compiled row path (exact-equality lookup) agrees too.
            let row = p.predictors();
            assert_eq!(compiled.performance_model().predict_row(&row).unwrap(), fast.bips);
        }
    }

    #[test]
    fn spec_shapes() {
        assert_eq!(paper_terms().len(), 13);
        assert_eq!(performance_spec().transform(), ResponseTransform::Sqrt);
        assert_eq!(power_spec().transform(), ResponseTransform::Log);
    }

    #[test]
    fn empty_samples_rejected() {
        assert!(design_dataset(&[]).is_err());
    }
}
