//! Design space definition and the paper's three design-space studies.
//!
//! This crate is the application layer of the reproduction: it ties the
//! substrates together exactly the way the paper does.
//!
//! - [`space`] — the Table 1 design space: seven jointly-varied parameter
//!   groups whose Cartesian product has 375,000 points (sampling space)
//!   or 262,500 points (exploration space, depth restricted to
//!   12–30 FO4), with index bijections and uniform-at-random sampling.
//! - [`baseline`] — the POWER4-like Table 3 baseline.
//! - [`oracle`] — the ground-truth interface: simulate a design point for
//!   a benchmark and obtain `(bips, watts)`; [`oracle::SimOracle`] wraps
//!   the `udse-sim` simulator with per-benchmark trace caching.
//! - [`plan`] — serializable evaluation plans: the batches the studies
//!   hand to the oracle as first-class values with stable job IDs and a
//!   canonical JSON form, so ground truth can be sharded across
//!   processes and reassembled bitwise-identically.
//! - [`model`] — the paper-standard performance and power regression
//!   models (§3): `sqrt`/`log` response transforms, restricted cubic
//!   splines with 4 knots on strong predictors and 3 on weak ones, and
//!   the §3.2 interaction terms.
//! - [`pareto`] — pareto-frontier construction in the power-delay space.
//! - [`query`] — the unified query layer: a serializable [`query::Query`]
//!   vocabulary (point prediction, constrained optimum, Pareto slice,
//!   top-K, what-if delta, axis sweep) executed by [`query::Engine`],
//!   which owns the compiled suite, the memoized full-space
//!   characterization, constraint pushdown over the fused grid walk, and
//!   a byte-budgeted LRU of materialized results.
//! - [`studies`] — the three case studies (validation / pareto / pipeline
//!   depth / multiprocessor heterogeneity), each producing the data
//!   behind the corresponding figures and tables; all of them are thin
//!   clients of the query engine.
//!
//! # Examples
//!
//! ```no_run
//! use udse_core::model::PaperModels;
//! use udse_core::oracle::SimOracle;
//! use udse_core::space::DesignSpace;
//! use udse_trace::Benchmark;
//!
//! let space = DesignSpace::paper();
//! let oracle = SimOracle::with_trace_len(50_000);
//! let samples = space.sample_uar(300, 42);
//! let models = PaperModels::train(&oracle, Benchmark::Mcf, &samples).unwrap();
//! let best = DesignSpace::exploration()
//!     .iter()
//!     .max_by(|a, b| {
//!         models.predict_efficiency(a).total_cmp(&models.predict_efficiency(b))
//!     })
//!     .unwrap();
//! println!("predicted bips^3/w optimum: {best:?}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod model;
pub mod oracle;
pub mod pareto;
pub mod plan;
pub mod query;
pub mod report;
pub mod search;
pub mod space;
pub mod studies;

pub use model::{CompiledPaperModels, PaperModels};
pub use oracle::{CachedOracle, Metrics, Oracle, SimOracle};
pub use pareto::ParetoFrontier;
pub use plan::{EvalPlan, SimSpec};
pub use query::{Engine, Query, QueryResult};
pub use space::{DesignPoint, DesignSpace};
