//! K-means clustering for compromise-architecture identification.
//!
//! The paper's §6 heterogeneity study clusters the nine per-benchmark
//! `bips³/w`-optimal architectures in the p-dimensional (normalized,
//! weighted) design-parameter space; each centroid is a *compromise
//! architecture* and the cluster count K measures the degree of
//! heterogeneity. This crate implements the heuristic exactly as the
//! paper describes it —
//!
//! 1. place K centroids (randomly, per the paper; k-means++ is available
//!    as a better-behaved option),
//! 2. assign each object to the closest centroid,
//! 3. recompute centroids as cluster means,
//! 4. repeat 2–3 until assignments are stable —
//!
//! with multiple restarts keeping the lowest-inertia solution, plus the
//! min-max normalization and per-dimension weighting the distance metric
//! calls for.
//!
//! # Examples
//!
//! ```
//! use udse_cluster::{KMeans, MinMaxScaler};
//!
//! let points = vec![
//!     vec![0.0, 0.1], vec![0.1, 0.0],   // cluster A
//!     vec![5.0, 5.1], vec![5.1, 4.9],   // cluster B
//! ];
//! let scaler = MinMaxScaler::fit(&points);
//! let normalized = scaler.transform_all(&points);
//! let result = KMeans::new(2).with_restarts(4).run(&normalized, 42);
//! assert_eq!(result.assignments()[0], result.assignments()[1]);
//! assert_ne!(result.assignments()[0], result.assignments()[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kmeans;
mod scaler;

pub use kmeans::{Clustering, InitMethod, KMeans};
pub use scaler::MinMaxScaler;

/// Squared Euclidean distance between two equal-length vectors, with an
/// optional per-dimension weight vector.
///
/// # Panics
///
/// Panics if lengths differ (or weights, when given, have a different
/// length).
pub fn weighted_sq_distance(a: &[f64], b: &[f64], weights: Option<&[f64]>) -> f64 {
    assert_eq!(a.len(), b.len(), "point dimensionality mismatch");
    match weights {
        None => a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum(),
        Some(w) => {
            assert_eq!(w.len(), a.len(), "weight dimensionality mismatch");
            a.iter().zip(b).zip(w).map(|((x, y), wi)| wi * (x - y) * (x - y)).sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        assert_eq!(weighted_sq_distance(&[0.0, 0.0], &[3.0, 4.0], None), 25.0);
        assert_eq!(weighted_sq_distance(&[0.0, 0.0], &[3.0, 4.0], Some(&[1.0, 0.0])), 9.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn mismatched_dims_panic() {
        let _ = weighted_sq_distance(&[1.0], &[1.0, 2.0], None);
    }
}
