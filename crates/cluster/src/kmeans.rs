use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::weighted_sq_distance;

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitMethod {
    /// Centroids start at K distinct points chosen uniformly at random —
    /// the placement the paper's §6.1 heuristic describes.
    #[default]
    Random,
    /// k-means++ seeding: subsequent centroids chosen with probability
    /// proportional to squared distance from the nearest existing
    /// centroid; converges to better optima on average.
    PlusPlus,
}

/// K-means configuration builder.
///
/// # Examples
///
/// ```
/// use udse_cluster::{InitMethod, KMeans};
///
/// let pts = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
/// let r = KMeans::new(2)
///     .with_init(InitMethod::PlusPlus)
///     .with_restarts(3)
///     .run(&pts, 7);
/// assert_eq!(r.centroids().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    k: usize,
    max_iter: usize,
    restarts: usize,
    init: InitMethod,
    weights: Option<Vec<f64>>,
}

impl KMeans {
    /// Creates a K-means runner for `k` clusters with defaults of 100
    /// iterations, 8 restarts, and random initialization.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "cluster count must be positive");
        KMeans { k, max_iter: 100, restarts: 8, init: InitMethod::Random, weights: None }
    }

    /// Sets the initialization method.
    #[must_use]
    pub fn with_init(mut self, init: InitMethod) -> Self {
        self.init = init;
        self
    }

    /// Sets the number of restarts (best inertia wins).
    ///
    /// # Panics
    ///
    /// Panics if `restarts == 0`.
    #[must_use]
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        assert!(restarts > 0, "need at least one restart");
        self.restarts = restarts;
        self
    }

    /// Sets the iteration cap per restart.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter.max(1);
        self
    }

    /// Sets per-dimension distance weights.
    #[must_use]
    pub fn with_weights(mut self, weights: Vec<f64>) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Clusters `points`, returning the best result over all restarts.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, ragged, or has fewer points than
    /// clusters.
    pub fn run(&self, points: &[Vec<f64>], seed: u64) -> Clustering {
        assert!(!points.is_empty(), "cannot cluster an empty point set");
        let dim = points[0].len();
        assert!(points.iter().all(|p| p.len() == dim), "ragged point set");
        assert!(points.len() >= self.k, "fewer points than clusters");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut best: Option<Clustering> = None;
        for _ in 0..self.restarts {
            let c = self.run_once(points, &mut rng);
            if best.as_ref().is_none_or(|b| c.inertia < b.inertia) {
                best = Some(c);
            }
        }
        best.expect("at least one restart")
    }

    fn run_once(&self, points: &[Vec<f64>], rng: &mut StdRng) -> Clustering {
        let w = self.weights.as_deref();
        let mut centroids = self.init_centroids(points, rng);
        let mut assignments = vec![usize::MAX; points.len()];
        let mut iterations = 0;
        for iter in 0..self.max_iter {
            iterations = iter + 1;
            // Assignment step.
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let nearest = nearest_centroid(p, &centroids, w);
                if assignments[i] != nearest {
                    assignments[i] = nearest;
                    changed = true;
                }
            }
            if !changed && iter > 0 {
                break;
            }
            // Update step: mean of members; empty clusters are reseeded at
            // the point farthest from its centroid.
            let dim = points[0].len();
            let mut sums = vec![vec![0.0; dim]; self.k];
            let mut counts = vec![0usize; self.k];
            for (p, &a) in points.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, &v) in sums[a].iter_mut().zip(p) {
                    *s += v;
                }
            }
            for c in 0..self.k {
                if counts[c] == 0 {
                    let (far_idx, _) = points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (i, weighted_sq_distance(p, &centroids[assignments[i]], w)))
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                        .expect("non-empty points");
                    centroids[c] = points[far_idx].clone();
                } else {
                    for (d, s) in sums[c].iter().enumerate() {
                        centroids[c][d] = s / counts[c] as f64;
                    }
                }
            }
        }
        let inertia = points
            .iter()
            .zip(&assignments)
            .map(|(p, &a)| weighted_sq_distance(p, &centroids[a], w))
            .sum();
        Clustering { assignments, centroids, inertia, iterations }
    }

    fn init_centroids(&self, points: &[Vec<f64>], rng: &mut StdRng) -> Vec<Vec<f64>> {
        match self.init {
            InitMethod::Random => {
                let mut idx: Vec<usize> = (0..points.len()).collect();
                idx.shuffle(rng);
                idx[..self.k].iter().map(|&i| points[i].clone()).collect()
            }
            InitMethod::PlusPlus => {
                let w = self.weights.as_deref();
                let mut centroids: Vec<Vec<f64>> =
                    vec![points[rng.gen_range(0..points.len())].clone()];
                while centroids.len() < self.k {
                    let d2: Vec<f64> = points
                        .iter()
                        .map(|p| {
                            centroids
                                .iter()
                                .map(|c| weighted_sq_distance(p, c, w))
                                .fold(f64::INFINITY, f64::min)
                        })
                        .collect();
                    let total: f64 = d2.iter().sum();
                    if total == 0.0 {
                        // All points coincide with centroids; duplicate one.
                        centroids.push(points[rng.gen_range(0..points.len())].clone());
                        continue;
                    }
                    let mut target = rng.gen::<f64>() * total;
                    let mut chosen = points.len() - 1;
                    for (i, &d) in d2.iter().enumerate() {
                        if target < d {
                            chosen = i;
                            break;
                        }
                        target -= d;
                    }
                    centroids.push(points[chosen].clone());
                }
                centroids
            }
        }
    }
}

/// The result of a K-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    assignments: Vec<usize>,
    centroids: Vec<Vec<f64>>,
    inertia: f64,
    iterations: usize,
}

impl Clustering {
    /// Cluster index of each input point.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Final centroid positions.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Sum of squared distances of points to their centroids.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Iterations until convergence in the winning restart.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Indices of the points in cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments.iter().enumerate().filter_map(|(i, &a)| (a == c).then_some(i)).collect()
    }
}

fn nearest_centroid(p: &[f64], centroids: &[Vec<f64>], w: Option<&[f64]>) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = weighted_sq_distance(p, centroid, w);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f64, 1.0]);
            pts.push(vec![5.0 + 0.01 * i as f64, -1.0]);
        }
        pts
    }

    #[test]
    fn separates_obvious_blobs() {
        for init in [InitMethod::Random, InitMethod::PlusPlus] {
            let r = KMeans::new(2).with_init(init).run(&two_blobs(), 11);
            let a0 = r.assignments()[0];
            for i in 0..10 {
                assert_eq!(r.assignments()[2 * i], a0, "{init:?}");
                assert_ne!(r.assignments()[2 * i + 1], a0, "{init:?}");
            }
        }
    }

    #[test]
    fn centroids_are_cluster_means() {
        let r = KMeans::new(2).run(&two_blobs(), 3);
        for c in 0..2 {
            let members = r.members(c);
            let pts = two_blobs();
            let mean_x: f64 =
                members.iter().map(|&i| pts[i][0]).sum::<f64>() / members.len() as f64;
            assert!((r.centroids()[c][0] - mean_x).abs() < 1e-9);
        }
    }

    #[test]
    fn assignment_optimality_at_convergence() {
        let pts = two_blobs();
        let r = KMeans::new(2).run(&pts, 5);
        for (i, p) in pts.iter().enumerate() {
            let assigned = r.assignments()[i];
            for (c, centroid) in r.centroids().iter().enumerate() {
                let d_assigned = weighted_sq_distance(p, &r.centroids()[assigned], None);
                let d_other = weighted_sq_distance(p, centroid, None);
                assert!(d_assigned <= d_other + 1e-9, "point {i} misassigned vs {c}");
            }
        }
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![1.0], vec![2.0], vec![3.0]];
        let r = KMeans::new(3).run(&pts, 1);
        assert!(r.inertia() < 1e-12);
        let mut assigned: Vec<usize> = r.assignments().to_vec();
        assigned.sort_unstable();
        assigned.dedup();
        assert_eq!(assigned.len(), 3);
    }

    #[test]
    fn k_one_centroid_is_global_mean() {
        let pts = vec![vec![0.0], vec![2.0], vec![10.0]];
        let r = KMeans::new(1).run(&pts, 1);
        assert!((r.centroids()[0][0] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn weights_change_the_partition() {
        // Two natural splits: by dim 0 (distance 1 apart) or dim 1
        // (distance 10 apart). Weighting dim 0 heavily flips the result.
        let pts = vec![vec![0.0, 0.0], vec![0.0, 10.0], vec![1.0, 0.0], vec![1.0, 10.0]];
        let by_dim1 = KMeans::new(2).run(&pts, 9);
        assert_eq!(by_dim1.assignments()[0], by_dim1.assignments()[2]);
        let by_dim0 = KMeans::new(2).with_weights(vec![1000.0, 1.0]).run(&pts, 9);
        assert_eq!(by_dim0.assignments()[0], by_dim0.assignments()[1]);
        assert_ne!(by_dim0.assignments()[0], by_dim0.assignments()[2]);
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let pts = two_blobs();
        let mut last = f64::INFINITY;
        for k in 1..=5 {
            let r = KMeans::new(k).with_restarts(16).run(&pts, 77);
            assert!(r.inertia() <= last + 1e-9, "k={k}");
            last = r.inertia();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let pts = two_blobs();
        let a = KMeans::new(3).run(&pts, 42);
        let b = KMeans::new(3).run(&pts, 42);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "fewer points than clusters")]
    fn k_above_n_panics() {
        let _ = KMeans::new(5).run(&[vec![1.0]], 0);
    }
}
