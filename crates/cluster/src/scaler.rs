/// Min-max normalization to `[0, 1]` per dimension, fit on a point set
/// and applicable to new points (e.g. centroids mapped back for
/// inspection via [`MinMaxScaler::inverse`]).
///
/// Constant dimensions map to 0.5 so they contribute nothing to
/// distances without producing NaN.
///
/// # Examples
///
/// ```
/// use udse_cluster::MinMaxScaler;
///
/// let pts = vec![vec![10.0, 1.0], vec![20.0, 3.0]];
/// let s = MinMaxScaler::fit(&pts);
/// assert_eq!(s.transform(&pts[0]), vec![0.0, 0.0]);
/// assert_eq!(s.transform(&pts[1]), vec![1.0, 1.0]);
/// let mid = s.inverse(&[0.5, 0.5]);
/// assert_eq!(mid, vec![15.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl MinMaxScaler {
    /// Learns per-dimension ranges from a non-empty point set.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or ragged.
    pub fn fit(points: &[Vec<f64>]) -> Self {
        assert!(!points.is_empty(), "cannot fit scaler on empty point set");
        let dim = points[0].len();
        let mut min = vec![f64::INFINITY; dim];
        let mut max = vec![f64::NEG_INFINITY; dim];
        for p in points {
            assert_eq!(p.len(), dim, "ragged point set");
            for (d, &v) in p.iter().enumerate() {
                min[d] = min[d].min(v);
                max[d] = max[d].max(v);
            }
        }
        MinMaxScaler { min, max }
    }

    /// Dimensionality of the fitted space.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Maps a point into `[0, 1]` per dimension.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn transform(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.dim(), "dimensionality mismatch");
        point
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                let range = self.max[d] - self.min[d];
                if range == 0.0 {
                    0.5
                } else {
                    (v - self.min[d]) / range
                }
            })
            .collect()
    }

    /// Transforms every point in a set.
    pub fn transform_all(&self, points: &[Vec<f64>]) -> Vec<Vec<f64>> {
        points.iter().map(|p| self.transform(p)).collect()
    }

    /// Maps a normalized point back to the original scale.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn inverse(&self, normalized: &[f64]) -> Vec<f64> {
        assert_eq!(normalized.len(), self.dim(), "dimensionality mismatch");
        normalized
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                let range = self.max[d] - self.min[d];
                if range == 0.0 {
                    self.min[d]
                } else {
                    self.min[d] + v * range
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let pts = vec![vec![1.0, 100.0, 7.0], vec![3.0, 300.0, 7.0], vec![2.0, 150.0, 7.0]];
        let s = MinMaxScaler::fit(&pts);
        for p in &pts {
            let back = s.inverse(&s.transform(p));
            for (a, b) in back.iter().zip(p) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn constant_dimension_is_neutral() {
        let pts = vec![vec![1.0, 5.0], vec![2.0, 5.0]];
        let s = MinMaxScaler::fit(&pts);
        assert_eq!(s.transform(&pts[0])[1], 0.5);
        assert_eq!(s.transform(&pts[1])[1], 0.5);
        assert_eq!(s.inverse(&[0.0, 0.5])[1], 5.0);
    }

    #[test]
    fn values_clamp_to_unit_interval_for_seen_data() {
        let pts = vec![vec![-5.0], vec![5.0], vec![0.0]];
        let s = MinMaxScaler::fit(&pts);
        for p in &pts {
            let t = s.transform(p)[0];
            assert!((0.0..=1.0).contains(&t));
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_fit_panics() {
        let _ = MinMaxScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_fit_panics() {
        let _ = MinMaxScaler::fit(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
