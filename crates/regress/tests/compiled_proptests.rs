//! Property tests for the compiled grid predictor ([`FittedModel::compile`]):
//! whatever model shape the fit produces — spline or degraded-to-linear
//! terms, any response transform, any strictly-increasing level grid —
//! the compiled per-level partial-sum tables must predict equivalently
//! to per-row spline-basis evaluation at every grid point.
//!
//! Fit *quality* is irrelevant here: responses are random, and the
//! property is purely about the lowering being faithful to the fitted
//! coefficients.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use udse_regress::{CompiledModel, Dataset, FittedModel, ModelSpec, ResponseTransform, TermSpec};

/// Draws 3–8 strictly increasing levels for one predictor, starting at
/// an arbitrary (possibly negative) offset.
fn arbitrary_levels(rng: &mut StdRng) -> Vec<f64> {
    let n = rng.gen_range(3usize..=8);
    let mut x = rng.gen_range(-5.0f64..5.0);
    (0..n)
        .map(|_| {
            x += rng.gen_range(0.25f64..3.0);
            x
        })
        .collect()
}

/// Fits a random two-variable model (spline/linear terms, optional
/// interaction, random transform) on the full cross product of a random
/// grid with random responses. `None` when the random design happens to
/// be rank deficient — those cases say nothing about compilation.
fn random_grid_model(rng: &mut StdRng) -> Option<(FittedModel, CompiledModel, Vec<Vec<f64>>)> {
    let levels = vec![arbitrary_levels(rng), arbitrary_levels(rng)];
    let mut rows = Vec::new();
    for &a in &levels[0] {
        for &b in &levels[1] {
            rows.push(vec![a, b]);
        }
    }
    let transform = match rng.gen_range(0u32..3) {
        0 => ResponseTransform::Identity,
        1 => ResponseTransform::Sqrt,
        _ => ResponseTransform::Log,
    };
    // Strictly positive responses are valid under every transform.
    let y: Vec<f64> = rows.iter().map(|_| rng.gen_range(0.5f64..10.0)).collect();
    let mut spec = ModelSpec::new(transform);
    for var in 0..2 {
        spec = spec.with_term(if rng.gen::<bool>() {
            TermSpec::Spline { var, knots: rng.gen_range(3usize..=4) }
        } else {
            TermSpec::Linear(var)
        });
    }
    if rng.gen::<bool>() {
        spec = spec.with_term(TermSpec::Interaction(0, 1));
    }
    let data = Dataset::new(vec!["a".into(), "b".into()], rows.clone()).ok()?;
    let model = spec.fit(&data, &y).ok()?;
    let compiled = model.compile(&levels).expect("levels are strictly increasing");
    Some((model, compiled, rows))
}

fn close(a: f64, b: f64) -> bool {
    // Random grids can be ill-conditioned, which amplifies the
    // regrouping error well beyond the paper model's 1e-12; 1e-9
    // relative still catches any real lowering bug (wrong term, wrong
    // level, wrong coefficient slice) by tens of orders of magnitude.
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_models_compile_to_equivalent_predictors(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let case = random_grid_model(&mut rng);
        prop_assume!(case.is_some());
        let (model, compiled, rows) = case.unwrap();
        for row in &rows {
            let naive = model.predict_row(row).expect("width matches");
            let fast = compiled.predict_row(row).expect("row is on the grid");
            prop_assert!(
                close(naive, fast),
                "row {:?}: naive {naive} vs compiled {fast}", row
            );
        }
    }

    #[test]
    fn batch_prediction_paths_agree(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let case = random_grid_model(&mut rng);
        prop_assume!(case.is_some());
        let (model, compiled, rows) = case.unwrap();
        let naive = model.predict_rows(&rows).expect("widths match");
        let mut fast = Vec::new();
        compiled.predict_many_into(&rows, &mut fast).expect("rows on the grid");
        prop_assert_eq!(naive.len(), fast.len());
        for (i, (n, f)) in naive.iter().zip(&fast).enumerate() {
            prop_assert!(close(*n, *f), "row {i}: naive {n} vs compiled {f}");
        }
        // The batch path is the row path: re-running into the same buffer
        // reproduces identical bits.
        let first = fast.clone();
        compiled.predict_many_into(&rows, &mut fast).expect("rows on the grid");
        for (a, b) in first.iter().zip(&fast) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_kernel_agrees_at_every_chunk_remainder(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let case = random_grid_model(&mut rng);
        prop_assume!(case.is_some());
        let (model, compiled, rows) = case.unwrap();
        let idx_rows: Vec<usize> = rows
            .iter()
            .flat_map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(var, &x)| compiled.level_index(var, x).expect("row is on the grid"))
            })
            .collect();
        let width = compiled.width();
        let mut out = vec![0.0f64; rows.len()];
        // Every prefix length exercises every possible final-chunk
        // remainder (grids have ≥ 9 rows, so > CompiledModel::BATCH_CHUNK).
        for n in 1..=rows.len() {
            let out = &mut out[..n];
            compiled.predict_batch_into(&idx_rows[..n * width], out);
            for (i, (&fast, row)) in out.iter().zip(&rows).enumerate() {
                // Bitwise vs the scalar compiled path: both resolve the
                // same lanes and accumulate in the same order.
                let scalar = compiled.predict_row(row).expect("row is on the grid");
                prop_assert!(
                    fast.to_bits() == scalar.to_bits(),
                    "prefix {}, row {}: batch {} vs scalar {}", n, i, fast, scalar
                );
                // And numerically vs the uncompiled spline-basis path.
                let naive = model.predict_row(row).expect("width matches");
                prop_assert!(close(naive, fast), "row {}: naive {} vs batch {}", i, naive, fast);
            }
        }
    }

    #[test]
    fn off_grid_rows_are_rejected(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let case = random_grid_model(&mut rng);
        prop_assume!(case.is_some());
        let (_, compiled, rows) = case.unwrap();
        // Nudge one coordinate off its level: compiled models must refuse
        // to extrapolate rather than silently use a neighboring level.
        let mut row = rows[rng.gen_range(0..rows.len())].clone();
        let var = rng.gen_range(0usize..2);
        row[var] += 0.1;
        prop_assert!(compiled.predict_row(&row).is_err(), "off-grid row accepted: {:?}", row);
    }
}
