//! Allocation-free guarantees on the compiled predictor hot path.
//!
//! `CompiledModel::predict_many_into` documents that steady-state sweeps
//! allocate nothing: the output buffer is reused and every per-row
//! prediction walks precomputed tables. These tests pin that claim with
//! the counting allocator — `assert_no_alloc` panics on the first heap
//! allocation (or free) on the asserting thread, so a regression that
//! sneaks a `Vec`/`format!`/boxing into the loop fails loudly instead
//! of quietly eroding sweep throughput.

use udse_regress::{Dataset, ModelSpec, ResponseTransform, TermSpec};

// Integration tests are separate binaries: each one that measures
// allocations must install the counting allocator itself.
#[global_allocator]
static ALLOC: udse_obs::CountingAlloc = udse_obs::CountingAlloc::new();

/// Grid, spline+interaction model, and its level table — the same
/// shape the study sweeps compile (spline + linear + interaction,
/// log-transformed response).
fn fitted_on_grid() -> (udse_regress::FittedModel, Vec<Vec<f64>>) {
    let a_levels: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
    let b_levels: Vec<f64> = vec![10.0, 20.0, 40.0];
    let mut rows = Vec::new();
    let mut y = Vec::new();
    for &a in &a_levels {
        for &b in &b_levels {
            rows.push(vec![a, b]);
            y.push((2.0 + 0.8 * a + 0.01 * b + 0.3 * (a - 3.0).max(0.0) + 0.002 * a * b).exp());
        }
    }
    let data = Dataset::new(vec!["a".into(), "b".into()], rows).unwrap();
    let model = ModelSpec::new(ResponseTransform::Log)
        .with_term(TermSpec::Spline { var: 0, knots: 4 })
        .with_term(TermSpec::Linear(1))
        .with_term(TermSpec::Interaction(0, 1))
        .fit(&data, &y)
        .unwrap();
    (model, vec![a_levels, b_levels])
}

#[test]
fn predict_many_into_is_allocation_free_after_warmup() {
    let (model, levels) = fitted_on_grid();
    let compiled = model.compile(&levels).expect("grid compiles");
    let rows: Vec<Vec<f64>> =
        levels[0].iter().flat_map(|&a| levels[1].iter().map(move |&b| vec![a, b])).collect();
    // Warm-up: the first batch may grow `out` to full capacity.
    let mut out = Vec::new();
    compiled.predict_many_into(&rows, &mut out).expect("on-grid rows predict");
    let warm = out.clone();
    // Steady state: the reused buffer means zero heap traffic per batch.
    udse_obs::alloc::assert_no_alloc("compiled predict_many_into steady state", || {
        compiled.predict_many_into(&rows, &mut out).expect("on-grid rows predict")
    });
    assert_eq!(out, warm, "the allocation-free batch must predict the same values");
}

#[test]
fn predict_batch_into_is_allocation_free() {
    let (model, levels) = fitted_on_grid();
    let compiled = model.compile(&levels).expect("grid compiles");
    // Every grid cell as an index row — both buffers preallocated, so the
    // branch-free batch kernel must never touch the heap.
    let idx_rows: Vec<usize> = (0..levels[0].len())
        .flat_map(|i| (0..levels[1].len()).map(move |j| [i, j]))
        .flatten()
        .collect();
    let mut out = vec![0.0f64; idx_rows.len() / 2];
    compiled.predict_batch_into(&idx_rows, &mut out);
    let warm = out.clone();
    udse_obs::alloc::assert_no_alloc("compiled predict_batch_into", || {
        compiled.predict_batch_into(&idx_rows, &mut out)
    });
    assert_eq!(out, warm, "the allocation-free batch must predict the same values");
}

#[test]
fn predict_row_is_allocation_free() {
    let (model, levels) = fitted_on_grid();
    let compiled = model.compile(&levels).expect("grid compiles");
    let row = [levels[0][3], levels[1][1]];
    let expected = compiled.predict_row(&row).expect("on-grid row predicts");
    let again = udse_obs::alloc::assert_no_alloc("compiled predict_row", || {
        compiled.predict_row(&row).expect("on-grid row predicts")
    });
    assert_eq!(again, expected);
}
