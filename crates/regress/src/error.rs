use std::error::Error;
use std::fmt;

use udse_linalg::LinalgError;

/// Errors arising while building or fitting regression models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RegressError {
    /// A term references a predictor index outside the dataset.
    UnknownVariable {
        /// The offending variable index.
        var: usize,
        /// Number of variables in the dataset.
        available: usize,
    },
    /// Not enough observations to estimate the requested coefficients.
    TooFewObservations {
        /// Observations available.
        observations: usize,
        /// Coefficients requested (including intercept).
        coefficients: usize,
    },
    /// The response contains a value invalid under the chosen transform
    /// (e.g. a negative value under `Sqrt`, non-positive under `Log`).
    InvalidResponse {
        /// Index of the offending observation.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A prediction row has the wrong number of variables.
    RowLength {
        /// Expected variable count.
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// The dataset rows are ragged or empty.
    MalformedDataset,
    /// A value passed to a compiled model is not one of that predictor's
    /// grid levels (compiled models never extrapolate off-grid).
    OffGridValue {
        /// Predictor index of the offending value.
        var: usize,
        /// The offending value.
        value: f64,
    },
    /// A level list handed to [`crate::FittedModel::compile`] is empty or
    /// not strictly increasing.
    BadLevels {
        /// Predictor index of the offending level list.
        var: usize,
    },
    /// The underlying least-squares solve failed (e.g. collinear terms).
    Linalg(LinalgError),
}

impl fmt::Display for RegressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegressError::UnknownVariable { var, available } => {
                write!(f, "term references variable {var} but dataset has {available}")
            }
            RegressError::TooFewObservations { observations, coefficients } => write!(
                f,
                "cannot estimate {coefficients} coefficients from {observations} observations"
            ),
            RegressError::InvalidResponse { index, value } => {
                write!(f, "response value {value} at index {index} invalid under transform")
            }
            RegressError::RowLength { expected, got } => {
                write!(f, "prediction row has {got} values, expected {expected}")
            }
            RegressError::MalformedDataset => write!(f, "dataset rows are ragged or empty"),
            RegressError::OffGridValue { var, value } => {
                write!(f, "value {value} for variable {var} is not on the compiled grid")
            }
            RegressError::BadLevels { var } => {
                write!(f, "level list for variable {var} is empty or not strictly increasing")
            }
            RegressError::Linalg(e) => write!(f, "least-squares solve failed: {e}"),
        }
    }
}

impl Error for RegressError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RegressError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for RegressError {
    fn from(e: LinalgError) -> Self {
        RegressError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = RegressError::UnknownVariable { var: 7, available: 3 };
        assert!(e.to_string().contains('7'));
        let e = RegressError::Linalg(LinalgError::RankDeficient { pivot: 2 });
        assert!(e.to_string().contains("least-squares"));
    }

    #[test]
    fn source_chains_linalg() {
        use std::error::Error;
        let e = RegressError::from(LinalgError::RankDeficient { pivot: 0 });
        assert!(e.source().is_some());
    }
}
