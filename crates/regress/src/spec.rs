use crate::dataset::Dataset;
use crate::fit::FittedModel;
use crate::spline::{knot_quantiles, spline_basis_into};
use crate::transform::ResponseTransform;
use crate::RegressError;

/// One additive term of a model specification, referencing predictors by
/// column index into the [`Dataset`].
#[derive(Debug, Clone, PartialEq)]
pub enum TermSpec {
    /// A single linear column for the predictor.
    Linear(usize),
    /// A restricted cubic spline on the predictor with `knots` knots
    /// placed at Harrell's fixed quantiles of the training distribution.
    /// Falls back to a linear term when the predictor has too few
    /// distinct levels to support the knots.
    Spline {
        /// Predictor column index.
        var: usize,
        /// Number of knots (3–5; the paper uses 3 and 4).
        knots: usize,
    },
    /// A pairwise interaction: the product of two predictors (paper §3.2).
    Interaction(usize, usize),
}

impl TermSpec {
    fn max_var(&self) -> usize {
        match *self {
            TermSpec::Linear(v) => v,
            TermSpec::Spline { var, .. } => var,
            TermSpec::Interaction(a, b) => a.max(b),
        }
    }
}

/// A term with its data-dependent parts resolved against a training set
/// (spline knot locations fixed at the observed quantiles).
#[derive(Debug, Clone, PartialEq)]
pub enum ResolvedTerm {
    /// Linear column.
    Linear(usize),
    /// Spline with concrete knot locations.
    Spline {
        /// Predictor column index.
        var: usize,
        /// Knot locations (strictly increasing, length >= 3).
        knots: Vec<f64>,
    },
    /// Product of two predictors.
    Interaction(usize, usize),
}

impl ResolvedTerm {
    /// Number of design-matrix columns this term expands to.
    pub fn columns(&self) -> usize {
        match self {
            ResolvedTerm::Linear(_) | ResolvedTerm::Interaction(..) => 1,
            ResolvedTerm::Spline { knots, .. } => knots.len() - 1,
        }
    }

    /// Appends this term's columns for observation `row` to `out`.
    pub(crate) fn expand_into(&self, row: &[f64], out: &mut Vec<f64>) {
        match self {
            ResolvedTerm::Linear(v) => out.push(row[*v]),
            ResolvedTerm::Spline { var, knots } => spline_basis_into(row[*var], knots, out),
            ResolvedTerm::Interaction(a, b) => out.push(row[*a] * row[*b]),
        }
    }
}

/// A model specification: a response transform plus additive terms.
///
/// Build with the `with_*` methods and call [`ModelSpec::fit`]. The same
/// spec may be fit against many datasets (e.g. one per benchmark, as in
/// the paper).
///
/// # Examples
///
/// ```
/// use udse_regress::{Dataset, ModelSpec, ResponseTransform, TermSpec};
///
/// let spec = ModelSpec::new(ResponseTransform::Identity)
///     .with_term(TermSpec::Linear(0))
///     .with_term(TermSpec::Interaction(0, 1));
/// let data = Dataset::new(
///     vec!["a".into(), "b".into()],
///     vec![vec![1.0, 1.0], vec![2.0, 1.0], vec![3.0, 2.0], vec![4.0, 2.0]],
/// ).unwrap();
/// let y = [3.0, 5.0, 13.0, 17.0]; // 1 + 2a + ab... approximately
/// let model = spec.fit(&data, &y).unwrap();
/// assert!(model.r_squared() > 0.95);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelSpec {
    transform: ResponseTransform,
    terms: Vec<TermSpec>,
}

impl ModelSpec {
    /// Creates an empty specification with the given response transform.
    pub fn new(transform: ResponseTransform) -> Self {
        ModelSpec { transform, terms: Vec::new() }
    }

    /// Adds a term (builder style).
    #[must_use]
    pub fn with_term(mut self, term: TermSpec) -> Self {
        self.terms.push(term);
        self
    }

    /// Adds many terms at once.
    #[must_use]
    pub fn with_terms<I: IntoIterator<Item = TermSpec>>(mut self, terms: I) -> Self {
        self.terms.extend(terms);
        self
    }

    /// The response transform.
    pub fn transform(&self) -> ResponseTransform {
        self.transform
    }

    /// The terms in insertion order.
    pub fn terms(&self) -> &[TermSpec] {
        &self.terms
    }

    /// Resolves data-dependent parts (spline knots) against a training
    /// dataset, degrading splines with too few distinct levels to linear
    /// terms.
    ///
    /// # Errors
    ///
    /// Returns [`RegressError::UnknownVariable`] when a term references a
    /// column outside the dataset.
    pub fn resolve(&self, data: &Dataset) -> Result<Vec<ResolvedTerm>, RegressError> {
        let width = data.width();
        let mut resolved = Vec::with_capacity(self.terms.len());
        for term in &self.terms {
            if term.max_var() >= width {
                return Err(RegressError::UnknownVariable {
                    var: term.max_var(),
                    available: width,
                });
            }
            resolved.push(match *term {
                TermSpec::Linear(v) => ResolvedTerm::Linear(v),
                TermSpec::Interaction(a, b) => ResolvedTerm::Interaction(a, b),
                TermSpec::Spline { var, knots } => {
                    let locations = knot_quantiles(&data.column(var), knots);
                    if locations.len() >= 3 {
                        ResolvedTerm::Spline { var, knots: locations }
                    } else {
                        // Too few distinct levels: degrade gracefully.
                        ResolvedTerm::Linear(var)
                    }
                }
            });
        }
        Ok(resolved)
    }

    /// Fits the model to `data` and responses `y` by least squares.
    ///
    /// # Errors
    ///
    /// Returns an error when a term references an unknown variable, `y`
    /// has values outside the transform's domain or the wrong length,
    /// there are fewer observations than coefficients, or the design
    /// matrix is rank deficient.
    pub fn fit(&self, data: &Dataset, y: &[f64]) -> Result<FittedModel, RegressError> {
        FittedModel::fit(self.clone(), data, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        Dataset::new(vec!["x".into(), "z".into()], rows).unwrap()
    }

    #[test]
    fn resolve_assigns_knots_from_quantiles() {
        let spec = ModelSpec::new(ResponseTransform::Identity)
            .with_term(TermSpec::Spline { var: 0, knots: 3 });
        let resolved = spec.resolve(&data()).unwrap();
        match &resolved[0] {
            ResolvedTerm::Spline { var, knots } => {
                assert_eq!(*var, 0);
                assert_eq!(knots.len(), 3);
                assert!(knots.windows(2).all(|w| w[0] < w[1]));
            }
            other => panic!("expected spline, got {other:?}"),
        }
    }

    #[test]
    fn spline_on_binary_variable_degrades_to_linear() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 2) as f64]).collect();
        let d = Dataset::new(vec!["flag".into()], rows).unwrap();
        let spec = ModelSpec::new(ResponseTransform::Identity)
            .with_term(TermSpec::Spline { var: 0, knots: 3 });
        let resolved = spec.resolve(&d).unwrap();
        assert_eq!(resolved[0], ResolvedTerm::Linear(0));
    }

    #[test]
    fn unknown_variable_is_reported() {
        let spec =
            ModelSpec::new(ResponseTransform::Identity).with_term(TermSpec::Interaction(0, 9));
        let err = spec.resolve(&data()).unwrap_err();
        assert!(matches!(err, RegressError::UnknownVariable { var: 9, .. }));
    }

    #[test]
    fn expand_interaction_is_product() {
        let t = ResolvedTerm::Interaction(0, 1);
        let mut out = Vec::new();
        t.expand_into(&[3.0, 4.0], &mut out);
        assert_eq!(out, vec![12.0]);
        assert_eq!(t.columns(), 1);
    }

    #[test]
    fn builder_accumulates_terms() {
        let spec = ModelSpec::new(ResponseTransform::Sqrt)
            .with_term(TermSpec::Linear(0))
            .with_terms([TermSpec::Linear(1), TermSpec::Interaction(0, 1)]);
        assert_eq!(spec.terms().len(), 3);
        assert_eq!(spec.transform(), ResponseTransform::Sqrt);
    }
}
