//! Predictor screening: association analysis and automatic knot
//! assignment.
//!
//! The paper's §3.3 rule — "the strength of a predictor's correlation
//! with the response will determine the number of knots in the
//! transformation" (4 knots for strong predictors such as depth and
//! registers, 3 for weak ones) — is automated here: rank predictors by
//! the absolute Spearman rank correlation of predictor against response
//! and build a [`ModelSpec`] assigning knot counts by that strength.

use udse_stats::spearman;

use crate::dataset::Dataset;
use crate::spec::{ModelSpec, TermSpec};
use crate::transform::ResponseTransform;
use crate::RegressError;

/// Association of one predictor with the response.
#[derive(Debug, Clone, PartialEq)]
pub struct Association {
    /// Predictor column index.
    pub var: usize,
    /// Predictor name.
    pub name: String,
    /// Spearman rank correlation against the response.
    pub rho: f64,
}

/// Ranks every predictor by `|spearman(x_j, y)|`, strongest first.
///
/// # Errors
///
/// Returns [`RegressError::MalformedDataset`] if `y`'s length differs
/// from the dataset's.
pub fn rank_predictors(data: &Dataset, y: &[f64]) -> Result<Vec<Association>, RegressError> {
    if y.len() != data.len() {
        return Err(RegressError::MalformedDataset);
    }
    let mut out: Vec<Association> = (0..data.width())
        .map(|var| Association {
            var,
            name: data.names()[var].clone(),
            rho: spearman(&data.column(var), y),
        })
        .collect();
    out.sort_by(|a, b| b.rho.abs().total_cmp(&a.rho.abs()));
    Ok(out)
}

/// Builds a model specification by the paper's screening rule: predictors
/// whose `|rho|` is at least `strong_threshold` get `strong_knots`-knot
/// splines, the rest get `weak_knots`-knot splines. Interactions are the
/// caller's domain knowledge and can be appended afterwards.
///
/// # Errors
///
/// Propagates [`rank_predictors`] errors.
///
/// # Panics
///
/// Panics if knot counts are outside `3..=5`.
///
/// # Examples
///
/// ```
/// use udse_regress::{auto_spec, Dataset, ResponseTransform};
///
/// let rows: Vec<Vec<f64>> = (0..40)
///     .map(|i| vec![i as f64, ((i * 7) % 11) as f64])
///     .collect();
/// let y: Vec<f64> = rows.iter().map(|r| (1.0 + r[0]).powi(2)).collect();
/// let data = Dataset::new(vec!["strong".into(), "weak".into()], rows).unwrap();
/// let spec = auto_spec(&data, &y, ResponseTransform::Sqrt, 4, 3, 0.5).unwrap();
/// assert_eq!(spec.terms().len(), 2);
/// ```
pub fn auto_spec(
    data: &Dataset,
    y: &[f64],
    transform: ResponseTransform,
    strong_knots: usize,
    weak_knots: usize,
    strong_threshold: f64,
) -> Result<ModelSpec, RegressError> {
    assert!((3..=5).contains(&strong_knots), "strong knots must be 3..=5");
    assert!((3..=5).contains(&weak_knots), "weak knots must be 3..=5");
    let ranking = rank_predictors(data, y)?;
    let mut spec = ModelSpec::new(transform);
    // Preserve the dataset's column order for reproducible term layout.
    let mut by_var: Vec<(usize, f64)> = ranking.iter().map(|a| (a.var, a.rho.abs())).collect();
    by_var.sort_by_key(|&(var, _)| var);
    for (var, strength) in by_var {
        let knots = if strength >= strong_threshold { strong_knots } else { weak_knots };
        spec = spec.with_term(TermSpec::Spline { var, knots });
    }
    Ok(spec)
}

/// Pairwise predictor redundancy: `|spearman(x_i, x_j)|` for every pair,
/// strongest first — the "variable clustering" step of the derivation,
/// used to spot predictors that carry the same information (e.g. the
/// jointly-varied members of a Table 1 group).
///
/// # Panics
///
/// Panics if the dataset has fewer than two observations.
pub fn redundancy_pairs(data: &Dataset) -> Vec<(usize, usize, f64)> {
    let w = data.width();
    let cols: Vec<Vec<f64>> = (0..w).map(|v| data.column(v)).collect();
    let mut out = Vec::new();
    for i in 0..w {
        for j in i + 1..w {
            out.push((i, j, spearman(&cols[i], &cols[j])));
        }
    }
    out.sort_by(|a, b| b.2.abs().total_cmp(&a.2.abs()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (Dataset, Vec<f64>) {
        // y driven by col 0 (strongly) and col 1 (weakly); col 2 is noise,
        // col 3 duplicates col 0.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut state = 5u64;
        let mut rnd = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        };
        for i in 0..80 {
            let a = i as f64;
            let b = rnd() * 10.0;
            let c = rnd() * 10.0;
            // Near-duplicate of `a`: rank-identical but not exactly
            // collinear, so fits remain full rank.
            rows.push(vec![a, b, c, 2.0 * a + 0.01 * rnd()]);
            y.push(a + 3.0 * b + 0.1 * rnd());
        }
        (
            Dataset::new(vec!["a".into(), "b".into(), "noise".into(), "a_dup".into()], rows)
                .unwrap(),
            y,
        )
    }

    #[test]
    fn ranking_orders_by_strength() {
        let (data, y) = world();
        let ranking = rank_predictors(&data, &y).unwrap();
        // a, a_dup, and b all carry signal; noise is last and weak.
        assert!(ranking[0].rho.abs() > 0.5);
        assert_eq!(ranking.last().unwrap().name, "noise");
        assert!(ranking.last().unwrap().rho.abs() < 0.3);
    }

    #[test]
    fn auto_spec_assigns_knots_by_strength() {
        let (data, y) = world();
        let spec = auto_spec(&data, &y, ResponseTransform::Identity, 4, 3, 0.5).unwrap();
        let knots_of = |var: usize| match spec.terms()[var] {
            TermSpec::Spline { knots, .. } => knots,
            _ => panic!("expected spline"),
        };
        assert_eq!(knots_of(0), 4, "strong predictor gets 4 knots");
        assert_eq!(knots_of(2), 3, "noise gets 3 knots");
        assert_eq!(knots_of(3), 4, "duplicate of strong predictor gets 4 knots");
    }

    #[test]
    fn auto_spec_fits_end_to_end() {
        let (data, y) = world();
        let spec = auto_spec(&data, &y, ResponseTransform::Identity, 4, 3, 0.5).unwrap();
        let model = spec.fit(&data, &y).unwrap();
        assert!(model.r_squared() > 0.99);
    }

    #[test]
    fn redundancy_finds_duplicated_column() {
        let (data, _) = world();
        let pairs = redundancy_pairs(&data);
        let (i, j, rho) = pairs[0];
        assert_eq!((i, j), (0, 3), "a and a_dup are the most associated pair");
        assert!(rho.abs() > 0.999);
    }

    #[test]
    fn mismatched_response_rejected() {
        let (data, _) = world();
        assert!(rank_predictors(&data, &[1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "strong knots")]
    fn out_of_range_knots_panic() {
        let (data, y) = world();
        let _ = auto_spec(&data, &y, ResponseTransform::Identity, 7, 3, 0.5);
    }
}
