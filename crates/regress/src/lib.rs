//! Non-linear regression models for microarchitectural prediction.
//!
//! Implements the paper's §3 modeling methodology:
//!
//! - **Model form** (§3.1): `f(y) = β₀ + Σ βⱼ gⱼ(xⱼ) + e`, fit by least
//!   squares ([`udse_linalg`] Householder QR).
//! - **Predictor interaction** (§3.2): product terms between predictors
//!   specified from domain knowledge.
//! - **Non-linearity** (§3.3): square-root / log response transformations
//!   ([`ResponseTransform`]) and *restricted cubic splines* on predictors
//!   ([`spline_basis`]) — piecewise cubic polynomials constrained to be
//!   linear beyond the boundary knots, with knots placed at fixed
//!   quantiles of each predictor's observed distribution. Predictors
//!   strongly correlated with the response get 4 knots, weaker ones 3.
//! - **Compiled grid prediction**: [`FittedModel::compile`] lowers a
//!   fitted model onto a discrete predictor grid ([`CompiledModel`]),
//!   collapsing spline bases and coefficients into per-level lookup
//!   tables so exhaustive design-space sweeps predict allocation-free.
//!
//! # Examples
//!
//! Fit `sqrt(y) ~ rcs(x, 3 knots)` and predict:
//!
//! ```
//! use udse_regress::{Dataset, ModelSpec, ResponseTransform, TermSpec};
//!
//! let xs: Vec<f64> = (0..50).map(|i| i as f64 / 5.0).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (1.0 + 2.0 * x) * (1.0 + 2.0 * x)).collect();
//! let data = Dataset::new(vec!["x".into()], xs.iter().map(|&x| vec![x]).collect()).unwrap();
//! let spec = ModelSpec::new(ResponseTransform::Sqrt)
//!     .with_term(TermSpec::Spline { var: 0, knots: 3 });
//! let model = spec.fit(&data, &ys).unwrap();
//! let pred = model.predict_row(&[5.0]).unwrap();
//! assert!((pred - 121.0).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod crossval;
mod dataset;
mod diagnostics;
mod error;
mod fit;
mod inference;
mod residuals;
mod screening;
mod spec;
mod spline;
mod transform;

pub use compiled::CompiledModel;
pub use crossval::{k_fold_cv, CvResult};
pub use dataset::Dataset;
pub use diagnostics::FitDiagnostics;
pub use error::RegressError;
pub use fit::FittedModel;
pub use inference::{
    coefficient_stats, ln_gamma, regularized_incomplete_beta, student_t_cdf, two_sided_t_pvalue,
    CoefficientStat,
};
pub use residuals::{residual_report, ResidualReport};
pub use screening::{auto_spec, rank_predictors, redundancy_pairs, Association};
pub use spec::{ModelSpec, ResolvedTerm, TermSpec};
pub use spline::{knot_quantiles, spline_basis, spline_basis_into, spline_columns};
pub use transform::ResponseTransform;
