//! Restricted cubic spline basis functions (Harrell).
//!
//! A restricted cubic spline with knots `t_1 < ... < t_k` is a piecewise
//! cubic polynomial that is continuous in value, first and second
//! derivative at every knot and constrained to be *linear* beyond the
//! boundary knots `t_1` and `t_k` — the property that makes it safe for
//! mild extrapolation at the edges of the design space (paper §3.3, §3.5).
//! The basis has `k - 1` columns: the identity `x` plus `k - 2` truncated
//! cubic terms.

use udse_stats::quantiles;

/// Harrell's recommended knot placement quantiles for `k` knots.
///
/// # Panics
///
/// Panics unless `3 <= k <= 5` (the range used in the paper).
pub fn knot_placement_quantiles(k: usize) -> &'static [f64] {
    match k {
        3 => &[0.10, 0.50, 0.90],
        4 => &[0.05, 0.35, 0.65, 0.95],
        5 => &[0.05, 0.275, 0.50, 0.725, 0.95],
        _ => panic!("restricted cubic splines support 3 to 5 knots, got {k}"),
    }
}

/// Computes knot locations for a predictor sample: `k` knots at fixed
/// quantiles of the observed distribution (paper §3.3: "knots at fixed
/// quantiles of a predictor's distribution ensure a sufficient number of
/// points in each interval").
///
/// Duplicate quantiles (common for discrete predictors with few levels)
/// are removed; callers should fall back to a linear term when fewer than
/// three distinct knots remain.
///
/// # Panics
///
/// Panics if `xs` is empty or `k` is outside `3..=5`.
pub fn knot_quantiles(xs: &[f64], k: usize) -> Vec<f64> {
    // A spline needs at least as many distinct data levels as knots:
    // interpolated quantiles on a coarse discrete variable would invent
    // knot locations with no data nearby and a rank-deficient basis.
    let mut levels: Vec<f64> = xs.to_vec();
    levels.sort_by(|a, b| a.partial_cmp(b).expect("NaN in knot input"));
    levels.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    if levels.len() < k {
        return levels; // caller degrades to linear when < 3 remain
    }
    let qs = knot_placement_quantiles(k);
    let mut knots = quantiles(xs, qs);
    knots.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    knots
}

/// Evaluates the restricted cubic spline basis at `x` for the given
/// knots: returns `[x, s_1(x), ..., s_{k-2}(x)]`.
///
/// The nonlinear terms follow Harrell's normalized form: with
/// `tau = (t_k - t_1)^2`,
///
/// ```text
/// s_j(x) = [ (x - t_j)+^3
///            - (x - t_{k-1})+^3 * (t_k - t_j)/(t_k - t_{k-1})
///            + (x - t_k)+^3   * (t_{k-1} - t_j)/(t_k - t_{k-1}) ] / tau
/// ```
///
/// which is linear for `x <= t_1` (all terms zero) and for `x >= t_k`
/// (the cubic and quadratic coefficients cancel).
///
/// # Panics
///
/// Panics if fewer than three knots are supplied or knots are not
/// strictly increasing.
pub fn spline_basis(x: f64, knots: &[f64]) -> Vec<f64> {
    let mut basis = Vec::with_capacity(knots.len() - 1);
    spline_basis_into(x, knots, &mut basis);
    basis
}

/// Appends the restricted cubic spline basis at `x` to `out` — the
/// allocation-free form of [`spline_basis`], used by batch prediction to
/// reuse one scratch buffer across rows.
///
/// # Panics
///
/// Panics under the same conditions as [`spline_basis`].
#[allow(clippy::needless_range_loop)] // index form mirrors Harrell's j-indexed formula
pub fn spline_basis_into(x: f64, knots: &[f64], out: &mut Vec<f64>) {
    let k = knots.len();
    assert!(k >= 3, "restricted cubic splines need at least 3 knots");
    assert!(knots.windows(2).all(|w| w[0] < w[1]), "knots must be strictly increasing");
    let t_last = knots[k - 1];
    let t_penult = knots[k - 2];
    let tau = (t_last - knots[0]) * (t_last - knots[0]);
    let cube_plus = |v: f64| {
        let c = v.max(0.0);
        c * c * c
    };
    out.push(x);
    for j in 0..k - 2 {
        let tj = knots[j];
        let num = cube_plus(x - tj) - cube_plus(x - t_penult) * (t_last - tj) / (t_last - t_penult)
            + cube_plus(x - t_last) * (t_penult - tj) / (t_last - t_penult);
        out.push(num / tau);
    }
}

/// Number of basis columns produced by [`spline_basis`] for `k` knots.
pub fn spline_columns(k: usize) -> usize {
    k - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    const KNOTS: [f64; 4] = [1.0, 2.0, 3.0, 4.0];

    fn basis_at(x: f64) -> Vec<f64> {
        spline_basis(x, &KNOTS)
    }

    /// Numerical derivative of basis column `c`.
    fn deriv(c: usize, x: f64, h: f64) -> f64 {
        (basis_at(x + h)[c] - basis_at(x - h)[c]) / (2.0 * h)
    }

    fn second_deriv(c: usize, x: f64, h: f64) -> f64 {
        (basis_at(x + h)[c] - 2.0 * basis_at(x)[c] + basis_at(x - h)[c]) / (h * h)
    }

    #[test]
    fn first_column_is_identity() {
        for x in [-1.0, 0.0, 2.5, 7.0] {
            assert_eq!(basis_at(x)[0], x);
        }
    }

    #[test]
    fn column_count_matches() {
        assert_eq!(basis_at(0.0).len(), spline_columns(4));
        assert_eq!(spline_basis(0.0, &[1.0, 2.0, 3.0]).len(), spline_columns(3));
    }

    #[test]
    fn zero_below_first_knot() {
        // Nonlinear terms vanish left of the first knot.
        for x in [-5.0, 0.0, 0.99] {
            let b = basis_at(x);
            for v in &b[1..] {
                assert_eq!(*v, 0.0);
            }
        }
    }

    #[test]
    fn continuous_at_knots() {
        for &t in &KNOTS {
            let below = basis_at(t - 1e-9);
            let above = basis_at(t + 1e-9);
            for (a, b) in below.iter().zip(&above) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn smooth_first_and_second_derivatives_at_knots() {
        for &t in &KNOTS {
            for c in 1..3 {
                let d_lo = deriv(c, t - 1e-4, 1e-5);
                let d_hi = deriv(c, t + 1e-4, 1e-5);
                assert!((d_lo - d_hi).abs() < 1e-2, "C1 broken at {t} col {c}");
                let s_lo = second_deriv(c, t - 1e-3, 1e-4);
                let s_hi = second_deriv(c, t + 1e-3, 1e-4);
                assert!((s_lo - s_hi).abs() < 0.1, "C2 broken at {t} col {c}");
            }
        }
    }

    #[test]
    fn linear_beyond_boundary_knots() {
        // Second derivative ~0 outside [t_1, t_k].
        for x in [-3.0, 0.5, 4.5, 8.0, 20.0] {
            for c in 1..3 {
                let s = second_deriv(c, x, 1e-4);
                assert!(s.abs() < 1e-3, "not linear at {x}: d2={s}");
            }
        }
    }

    #[test]
    fn knot_quantiles_for_uniform_sample() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let knots = knot_quantiles(&xs, 3);
        assert_eq!(knots, vec![10.0, 50.0, 90.0]);
        let knots4 = knot_quantiles(&xs, 4);
        assert_eq!(knots4, vec![5.0, 35.0, 65.0, 95.0]);
    }

    #[test]
    fn duplicate_knots_are_deduped() {
        // A predictor with only two levels cannot support 3 distinct knots.
        let xs = vec![2.0, 2.0, 2.0, 8.0, 8.0, 8.0];
        let knots = knot_quantiles(&xs, 3);
        assert!(knots.len() < 3);
    }

    #[test]
    #[should_panic(expected = "at least 3 knots")]
    fn too_few_knots_panics() {
        let _ = spline_basis(0.0, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_knots_panic() {
        let _ = spline_basis(0.0, &[1.0, 3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "3 to 5 knots")]
    fn placement_out_of_range_panics() {
        let _ = knot_placement_quantiles(6);
    }
}
