/// Goodness-of-fit summary computed on the transformed response scale.
///
/// # Examples
///
/// ```
/// use udse_regress::FitDiagnostics;
///
/// let d = FitDiagnostics::compute(&[1.0, 2.0, 3.0], &[1.1, 1.9, 3.0], 2);
/// assert!(d.r_squared > 0.97);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitDiagnostics {
    /// Coefficient of determination `1 - SS_res / SS_tot`.
    pub r_squared: f64,
    /// R² penalized for model size: `1 - (1-R²)(n-1)/(n-p)`.
    pub adjusted_r_squared: f64,
    /// Residual standard error `sqrt(SS_res / (n - p))`.
    pub residual_std_error: f64,
    /// Largest absolute residual.
    pub max_abs_residual: f64,
    /// Observations used.
    pub n: usize,
    /// Coefficients estimated (including intercept).
    pub p: usize,
}

impl FitDiagnostics {
    /// Computes diagnostics from observed and fitted values (both on the
    /// transformed scale) and the coefficient count `p`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or are empty.
    pub fn compute(z: &[f64], zhat: &[f64], p: usize) -> Self {
        assert_eq!(z.len(), zhat.len(), "observed/fitted length mismatch");
        assert!(!z.is_empty(), "diagnostics of empty fit");
        let n = z.len();
        let mean = z.iter().sum::<f64>() / n as f64;
        let ss_tot: f64 = z.iter().map(|v| (v - mean) * (v - mean)).sum();
        let mut ss_res = 0.0;
        let mut max_abs = 0.0f64;
        for (a, b) in z.iter().zip(zhat) {
            let r = a - b;
            ss_res += r * r;
            max_abs = max_abs.max(r.abs());
        }
        let r_squared = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
        let dof = (n.saturating_sub(p)).max(1) as f64;
        let adjusted =
            if ss_tot == 0.0 { 1.0 } else { 1.0 - (1.0 - r_squared) * (n as f64 - 1.0) / dof };
        FitDiagnostics {
            r_squared,
            adjusted_r_squared: adjusted,
            residual_std_error: (ss_res / dof).sqrt(),
            max_abs_residual: max_abs,
            n,
            p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_fit_r2_is_one() {
        let z = [1.0, 2.0, 3.0];
        let d = FitDiagnostics::compute(&z, &z, 2);
        assert_eq!(d.r_squared, 1.0);
        assert_eq!(d.residual_std_error, 0.0);
        assert_eq!(d.max_abs_residual, 0.0);
    }

    #[test]
    fn mean_only_fit_r2_is_zero() {
        let z = [1.0, 2.0, 3.0];
        let mean = [2.0, 2.0, 2.0];
        let d = FitDiagnostics::compute(&z, &mean, 1);
        assert!(d.r_squared.abs() < 1e-12);
    }

    #[test]
    fn constant_response_degenerates_to_one() {
        let z = [5.0, 5.0, 5.0];
        let d = FitDiagnostics::compute(&z, &z, 1);
        assert_eq!(d.r_squared, 1.0);
    }

    #[test]
    fn adjusted_below_plain_r2() {
        let z = [1.0, 2.0, 3.0, 4.0, 5.0];
        let zhat = [1.1, 1.8, 3.2, 3.9, 5.1];
        let d = FitDiagnostics::compute(&z, &zhat, 3);
        assert!(d.adjusted_r_squared < d.r_squared);
        assert!(d.r_squared > 0.9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = FitDiagnostics::compute(&[1.0], &[1.0, 2.0], 1);
    }
}
