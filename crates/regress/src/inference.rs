//! Coefficient inference: standard errors, t statistics, and p-values.
//!
//! The paper's model derivation (\[14], §3) applies *significance testing*
//! to decide which predictors and interactions stay in the model. This
//! module provides the classical OLS inference machinery: coefficient
//! covariance `sigma^2 (X'X)^-1` obtained from the QR factor `R`,
//! two-sided t-tests per coefficient, and a self-contained Student-t CDF
//! (via the regularized incomplete beta function).

use udse_linalg::{solve_upper, Matrix};

pub use udse_stats::{ln_gamma, regularized_incomplete_beta, student_t_cdf, two_sided_t_pvalue};

/// Inference results for one fitted coefficient.
#[derive(Debug, Clone, PartialEq)]
pub struct CoefficientStat {
    /// Column label (e.g. `"depth_fo4[rcs1]"` or `"intercept"`).
    pub name: String,
    /// Point estimate.
    pub estimate: f64,
    /// Standard error.
    pub std_error: f64,
    /// t statistic (`estimate / std_error`).
    pub t_value: f64,
    /// Two-sided p-value under `t(n - p)`.
    pub p_value: f64,
}

impl CoefficientStat {
    /// Whether the coefficient is significant at the given level.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Computes per-coefficient inference from the fit's upper-triangular
/// factor `r` (from the QR of the design matrix), the coefficient
/// estimates, the residual variance `sigma^2 = SS_res / (n - p)`, and the
/// residual degrees of freedom.
///
/// # Panics
///
/// Panics if dimensions disagree or `r` is singular.
pub fn coefficient_stats(
    names: &[String],
    beta: &[f64],
    r: &Matrix,
    sigma2: f64,
    dof: usize,
) -> Vec<CoefficientStat> {
    let p = beta.len();
    assert_eq!(r.rows(), p, "R factor must be p x p");
    assert_eq!(r.cols(), p, "R factor must be p x p");
    assert_eq!(names.len(), p, "one name per coefficient");
    assert!(dof > 0, "residual degrees of freedom must be positive");
    // Var(beta) = sigma^2 (R'R)^-1; diagonal entries are the squared
    // row norms of R^-T, i.e. |R^-1 e_j| per column j of R^-1.
    // Column j of R^-1 solves R x = e_j.
    let mut stats = Vec::with_capacity(p);
    // Precompute columns of R^{-1}.
    let mut rinv_cols: Vec<Vec<f64>> = Vec::with_capacity(p);
    for j in 0..p {
        let mut e = vec![0.0; p];
        e[j] = 1.0;
        let col = solve_upper(r, &e).expect("R factor invertible");
        rinv_cols.push(col);
    }
    for (j, name) in names.iter().enumerate() {
        // (X'X)^-1[j][j] = sum_k Rinv[j][k]^2 = sum over columns k of
        // (R^-1)_{j,k}^2; entry (j, k) of R^-1 is rinv_cols[k][j].
        let mut diag = 0.0;
        for col in rinv_cols.iter() {
            diag += col[j] * col[j];
        }
        let se = (sigma2 * diag).sqrt();
        let t = if se > 0.0 { beta[j] / se } else { f64::INFINITY };
        let pv = two_sided_t_pvalue(t, dof as f64);
        stats.push(CoefficientStat {
            name: name.clone(),
            estimate: beta[j],
            std_error: se,
            t_value: t,
            p_value: pv,
        });
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficient_stats_flag_true_signal() {
        use udse_linalg::Qr;
        // y = 3 + 2 x1 + noise; x2 is pure noise.
        let n = 60;
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut state = 1234u64;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        };
        for i in 0..n {
            let x1 = i as f64 / 10.0;
            let x2 = next();
            rows.push(vec![1.0, x1, x2]);
            y.push(3.0 + 2.0 * x1 + 0.3 * next());
        }
        let x = Matrix::from_rows(&rows);
        let qr = Qr::new(&x).unwrap();
        let beta = qr.solve(&y).unwrap();
        let yhat = x.matvec(&beta).unwrap();
        let ss_res: f64 = y.iter().zip(&yhat).map(|(a, b)| (a - b) * (a - b)).sum();
        let dof = n - 3;
        let sigma2 = ss_res / dof as f64;
        let names: Vec<String> = ["intercept", "x1", "x2"].iter().map(|s| s.to_string()).collect();
        let stats = coefficient_stats(&names, &beta, &qr.r(), sigma2, dof);
        assert!(stats[0].significant_at(0.001), "intercept should be significant");
        assert!(stats[1].significant_at(0.001), "x1 should be significant");
        assert!(!stats[2].significant_at(0.01), "noise column should not be significant");
        assert!((stats[1].estimate - 2.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "p x p")]
    fn wrong_r_shape_panics() {
        let r = Matrix::identity(2);
        let _ =
            coefficient_stats(&["a".into(), "b".into(), "c".into()], &[1.0, 2.0, 3.0], &r, 1.0, 5);
    }
}
