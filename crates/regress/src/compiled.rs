//! Compiled grid prediction: [`FittedModel`] lowered onto a discrete
//! predictor grid, structure-of-arrays layout.
//!
//! The paper's design space (Table 1) is fully discrete — every predictor
//! takes only 3–10 distinct levels — while [`FittedModel::predict_row`]
//! re-derives each restricted-cubic-spline basis from scratch on every
//! call. [`FittedModel::compile`] exploits the discreteness: for every
//! predictor it precomputes the *per-level partial sum* of that
//! predictor's single-variable terms,
//!
//! ```text
//! partial[v][i] = Σ_j β_j · g_j(level_v[i])
//! ```
//!
//! folding the spline basis evaluation and its coefficient products into
//! one table entry per level. A prediction then reduces to one table read
//! per variable, one multiply-add per interaction term, and the response
//! back-transform — no allocation, no knot branching:
//!
//! ```text
//! f⁻¹( β₀ + Σ_v partial[v][idx_v] + Σ_(a,b) β_ab · x_a · x_b )
//! ```
//!
//! The tables live in a structure-of-arrays plan: *one* flat `levels`
//! buffer and *one* flat `partial` buffer, with per-variable offsets
//! slicing out each axis's contiguous lane. That keeps the whole plan in
//! a few cache lines (the paper grid is 47 levels × 2 `f64` buffers) and
//! lets [`CompiledModel::predict_batch_into`] process index rows in fixed
//! chunks of [`CompiledModel::BATCH_CHUNK`] with straight-line lane
//! arithmetic: accumulators initialize to the intercept, each axis adds
//! its partial-sum lane, each interaction adds a `β·x_a·x_b` product, and
//! the response back-transform is applied in-lane with the `match` hoisted
//! out of the row loop — no per-row branching anywhere.
//!
//! The lowering is exact up to floating-point summation order (the terms
//! are accumulated in the same model order, only grouped per variable),
//! so compiled predictions agree with [`FittedModel::predict_row`] to
//! ~1e-15 relative — well inside the 1e-12 equivalence bound the
//! exhaustive grid tests assert. All compiled paths (row, index, batch)
//! accumulate in the identical order, so they agree with each other
//! *bitwise*.

use crate::fit::FittedModel;
use crate::spec::ResolvedTerm;
use crate::spline::spline_basis;
use crate::transform::ResponseTransform;
use crate::RegressError;

/// One interaction term surviving compilation: `beta * x_a * x_b`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CompiledInteraction {
    a: usize,
    b: usize,
    beta: f64,
}

/// A [`FittedModel`] specialized to a discrete predictor grid; see the
/// module docs for the lowering scheme and the structure-of-arrays
/// layout.
///
/// # Examples
///
/// ```
/// use udse_regress::{Dataset, ModelSpec, ResponseTransform, TermSpec};
///
/// let data = Dataset::new(
///     vec!["x".into()],
///     (0..10).map(|i| vec![i as f64]).collect(),
/// ).unwrap();
/// let y: Vec<f64> = (0..10).map(|i| 3.0 + 2.0 * i as f64).collect();
/// let model = ModelSpec::new(ResponseTransform::Identity)
///     .with_term(TermSpec::Linear(0))
///     .fit(&data, &y)
///     .unwrap();
/// let grid = vec![vec![0.0, 2.0, 4.0, 6.0]];
/// let compiled = model.compile(&grid).unwrap();
/// assert!((compiled.predict_row(&[4.0]).unwrap() - 11.0).abs() < 1e-9);
/// // Off-grid values are rejected, not silently extrapolated.
/// assert!(compiled.predict_row(&[3.0]).is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    transform: ResponseTransform,
    width: usize,
    intercept: f64,
    /// Every predictor's grid levels, flattened; variable `v` owns
    /// `levels[offsets[v]..offsets[v + 1]]` (strictly increasing).
    levels: Vec<f64>,
    /// Per-level single-variable partial sums, same layout as `levels`.
    partial: Vec<f64>,
    /// Per-variable lane offsets into `levels`/`partial`; `width + 1`
    /// entries, `offsets[0] == 0`, `offsets[width] == levels.len()`.
    offsets: Vec<usize>,
    interactions: Vec<CompiledInteraction>,
}

impl FittedModel {
    /// Lowers this model onto a discrete grid: `levels[v]` lists the
    /// values predictor `v` may take (strictly increasing). All
    /// single-variable terms collapse into per-level partial-sum lanes;
    /// interaction terms keep their coefficient and multiply at predict
    /// time. The plan owns one flattened levels buffer (no per-variable
    /// clones) sliced by per-axis offsets.
    ///
    /// # Errors
    ///
    /// Returns [`RegressError::RowLength`] when `levels` does not have
    /// one list per predictor, and [`RegressError::BadLevels`] when any
    /// list is empty or not strictly increasing.
    pub fn compile(&self, levels: &[Vec<f64>]) -> Result<CompiledModel, RegressError> {
        let width = self.width();
        if levels.len() != width {
            return Err(RegressError::RowLength { expected: width, got: levels.len() });
        }
        for (var, ls) in levels.iter().enumerate() {
            if ls.is_empty() || ls.windows(2).any(|w| w[0] >= w[1]) {
                return Err(RegressError::BadLevels { var });
            }
        }
        let total: usize = levels.iter().map(Vec::len).sum();
        let mut flat = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(width + 1);
        offsets.push(0);
        for ls in levels {
            flat.extend_from_slice(ls);
            offsets.push(flat.len());
        }
        let mut partial = vec![0.0; total];
        let beta = self.coefficients();
        let mut interactions = Vec::new();
        let mut next = 1; // beta[0] is the intercept
        for term in self.resolved_terms() {
            match term {
                ResolvedTerm::Linear(v) => {
                    let b = beta[next];
                    next += 1;
                    let lane = &mut partial[offsets[*v]..offsets[*v + 1]];
                    for (p, &x) in lane.iter_mut().zip(&levels[*v]) {
                        *p += b * x;
                    }
                }
                ResolvedTerm::Spline { var, knots } => {
                    let n = term.columns();
                    let bs = &beta[next..next + n];
                    next += n;
                    let lane = &mut partial[offsets[*var]..offsets[*var + 1]];
                    for (p, &x) in lane.iter_mut().zip(&levels[*var]) {
                        let basis = spline_basis(x, knots);
                        let mut acc = 0.0;
                        for (b, c) in bs.iter().zip(&basis) {
                            acc += b * c;
                        }
                        *p += acc;
                    }
                }
                ResolvedTerm::Interaction(a, b) => {
                    interactions.push(CompiledInteraction { a: *a, b: *b, beta: beta[next] });
                    next += 1;
                }
            }
        }
        Ok(CompiledModel {
            transform: self.spec().transform(),
            width,
            intercept: beta[0],
            levels: flat,
            partial,
            offsets,
            interactions,
        })
    }
}

impl CompiledModel {
    /// Rows per inner chunk of [`CompiledModel::predict_batch_into`]. The
    /// batch kernel's accumulators live in a `[f64; BATCH_CHUNK]` stack
    /// array: 8 lanes fill a 64-byte cache line, wide enough for the
    /// autovectorizer to keep 2–4 AVX lanes busy per axis pass while
    /// small enough that the gather indices stay in registers.
    pub const BATCH_CHUNK: usize = 8;

    /// Number of predictor variables.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The response transform inherited from the fitted model.
    pub fn transform(&self) -> ResponseTransform {
        self.transform
    }

    /// The model intercept `β₀` (transformed scale). Exposed so callers
    /// stacking several compiled models into wider lane groups can seed
    /// their accumulators identically to [`CompiledModel::predict_indices`].
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The grid levels of one predictor.
    ///
    /// # Panics
    ///
    /// Panics when `var` is out of range.
    pub fn levels(&self, var: usize) -> &[f64] {
        &self.levels[self.offsets[var]..self.offsets[var + 1]]
    }

    /// The per-level single-variable partial-sum lane of one predictor
    /// (`partial[v][i]` in the module docs), parallel to
    /// [`CompiledModel::levels`]`(var)`.
    ///
    /// # Panics
    ///
    /// Panics when `var` is out of range.
    pub fn partial_sums(&self, var: usize) -> &[f64] {
        &self.partial[self.offsets[var]..self.offsets[var + 1]]
    }

    /// The compiled interaction terms `(a, b, beta)` in model order.
    pub fn interactions(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.interactions.iter().map(|it| (it.a, it.b, it.beta))
    }

    /// The position of `value` in predictor `var`'s level list, if it is
    /// on the grid. Exact comparison — the caller is expected to produce
    /// grid values by the same arithmetic that built the level lists.
    pub fn level_index(&self, var: usize, value: f64) -> Option<usize> {
        self.levels(var).iter().position(|&v| v == value)
    }

    /// Predicts on the transformed scale from per-variable *level
    /// indices* — the fastest scalar path: `idx[v]` indexes into
    /// [`CompiledModel::levels`]`(v)`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` has the wrong length or an index is out of its
    /// variable's level range.
    pub fn predict_transformed_indices(&self, idx: &[usize]) -> f64 {
        assert_eq!(idx.len(), self.width, "one level index per predictor");
        let mut acc = self.intercept;
        for (v, &i) in idx.iter().enumerate() {
            acc += self.partial_sums(v)[i];
        }
        for it in &self.interactions {
            acc += it.beta * self.levels(it.a)[idx[it.a]] * self.levels(it.b)[idx[it.b]];
        }
        acc
    }

    /// Predicts the (untransformed) response from per-variable level
    /// indices.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`CompiledModel::predict_transformed_indices`].
    pub fn predict_indices(&self, idx: &[usize]) -> f64 {
        self.transform.invert(self.predict_transformed_indices(idx))
    }

    /// Batch kernel: predicts one response per `width`-index row of
    /// `idx_rows` (row-major: `idx_rows[r * width + v]` is row `r`'s
    /// level index for predictor `v`) into `out`.
    ///
    /// Rows are processed in chunks of [`CompiledModel::BATCH_CHUNK`]
    /// with no per-row branching: stack accumulators seed with the
    /// intercept, every axis adds its contiguous partial-sum lane, every
    /// interaction adds its product, and the response back-transform is
    /// applied in-lane (the transform `match` runs once per chunk, not
    /// per row). Each row's result is bitwise-identical to
    /// [`CompiledModel::predict_indices`] on the same indices — the
    /// accumulation order per lane is the same; only the loop structure
    /// differs. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when `idx_rows.len() != out.len() * width` or any index is
    /// out of its variable's level range.
    pub fn predict_batch_into(&self, idx_rows: &[usize], out: &mut [f64]) {
        assert_eq!(
            idx_rows.len(),
            out.len() * self.width,
            "idx_rows must hold one {}-index row per output slot",
            self.width
        );
        let width = self.width;
        let mut start = 0;
        for outs in out.chunks_mut(Self::BATCH_CHUNK) {
            let n = outs.len();
            let rows = &idx_rows[start..start + n * width];
            start += n * width;
            let mut acc = [self.intercept; Self::BATCH_CHUNK];
            for v in 0..width {
                let lane = self.partial_sums(v);
                for (j, a) in acc[..n].iter_mut().enumerate() {
                    *a += lane[rows[j * width + v]];
                }
            }
            for it in &self.interactions {
                let la = self.levels(it.a);
                let lb = self.levels(it.b);
                for (j, a) in acc[..n].iter_mut().enumerate() {
                    *a += it.beta * la[rows[j * width + it.a]] * lb[rows[j * width + it.b]];
                }
            }
            match self.transform {
                ResponseTransform::Identity => outs.copy_from_slice(&acc[..n]),
                ResponseTransform::Sqrt => {
                    for (o, &z) in outs.iter_mut().zip(&acc[..n]) {
                        *o = z * z;
                    }
                }
                ResponseTransform::Log => {
                    for (o, &z) in outs.iter_mut().zip(&acc[..n]) {
                        *o = z.exp();
                    }
                }
            }
        }
    }

    /// Predicts the response for one predictor row whose values lie on
    /// the compiled grid: the scalar wrapper over the same lanes the
    /// batch kernel reads, resolving each value to its level index by
    /// exact equality. Allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`RegressError::RowLength`] on a wrong-width row and
    /// [`RegressError::OffGridValue`] when a value is not one of its
    /// predictor's compiled levels.
    pub fn predict_row(&self, row: &[f64]) -> Result<f64, RegressError> {
        if row.len() != self.width {
            return Err(RegressError::RowLength { expected: self.width, got: row.len() });
        }
        let mut acc = self.intercept;
        for (var, &x) in row.iter().enumerate() {
            let lane = self.partial_sums(var);
            let i = self
                .levels(var)
                .iter()
                .position(|&v| v == x)
                .ok_or(RegressError::OffGridValue { var, value: x })?;
            acc += lane[i];
        }
        // Row values equal their grid levels bitwise (checked above), so
        // the products match the index-based paths exactly.
        for it in &self.interactions {
            acc += it.beta * row[it.a] * row[it.b];
        }
        Ok(self.transform.invert(acc))
    }

    /// Batch prediction into a caller-provided buffer: `out` is cleared
    /// and refilled with one prediction per row, reusing its capacity so
    /// steady-state sweeps allocate nothing.
    ///
    /// # Errors
    ///
    /// Fails on the first malformed or off-grid row; `out` then holds the
    /// predictions completed so far.
    pub fn predict_many_into(
        &self,
        rows: &[Vec<f64>],
        out: &mut Vec<f64>,
    ) -> Result<(), RegressError> {
        out.clear();
        out.reserve(rows.len());
        for row in rows {
            out.push(self.predict_row(row)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::spec::{ModelSpec, TermSpec};

    /// Grid, spline+interaction model, and its compiled form.
    fn fitted_on_grid() -> (FittedModel, Vec<Vec<f64>>) {
        let a_levels: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b_levels: Vec<f64> = vec![10.0, 20.0, 40.0];
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for &a in &a_levels {
            for &b in &b_levels {
                rows.push(vec![a, b]);
                y.push((2.0 + 0.8 * a + 0.01 * b + 0.3 * (a - 3.0).max(0.0) + 0.002 * a * b).exp());
            }
        }
        let data = Dataset::new(vec!["a".into(), "b".into()], rows).unwrap();
        let model = ModelSpec::new(ResponseTransform::Log)
            .with_term(TermSpec::Spline { var: 0, knots: 4 })
            .with_term(TermSpec::Linear(1))
            .with_term(TermSpec::Interaction(0, 1))
            .fit(&data, &y)
            .unwrap();
        (model, vec![a_levels, b_levels])
    }

    #[test]
    fn compiled_matches_naive_on_every_grid_point() {
        let (model, levels) = fitted_on_grid();
        let compiled = model.compile(&levels).unwrap();
        for (ia, &a) in levels[0].iter().enumerate() {
            for (ib, &b) in levels[1].iter().enumerate() {
                let naive = model.predict_row(&[a, b]).unwrap();
                let by_row = compiled.predict_row(&[a, b]).unwrap();
                let by_idx = compiled.predict_indices(&[ia, ib]);
                assert!(
                    (by_row - naive).abs() <= 1e-12 * naive.abs(),
                    "row path diverges at ({a}, {b}): {by_row} vs {naive}"
                );
                assert_eq!(by_row.to_bits(), by_idx.to_bits(), "row and index paths must agree");
            }
        }
    }

    #[test]
    fn batch_kernel_matches_index_path_at_every_chunk_remainder() {
        let (model, levels) = fitted_on_grid();
        let compiled = model.compile(&levels).unwrap();
        let all: Vec<[usize; 2]> =
            (0..levels[0].len()).flat_map(|a| (0..levels[1].len()).map(move |b| [a, b])).collect();
        // 18 rows with BATCH_CHUNK = 8 covers full chunks plus every
        // remainder 1..BATCH_CHUNK as the batch length varies.
        assert!(all.len() > 2 * CompiledModel::BATCH_CHUNK);
        for n in 1..=all.len() {
            let rows: Vec<usize> = all[..n].iter().flatten().copied().collect();
            let mut out = vec![0.0; n];
            compiled.predict_batch_into(&rows, &mut out);
            for (idx, &got) in all[..n].iter().zip(&out) {
                assert_eq!(
                    got.to_bits(),
                    compiled.predict_indices(idx).to_bits(),
                    "batch kernel diverges at {idx:?} in a batch of {n}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "one 2-index row per output slot")]
    fn batch_kernel_rejects_mismatched_lengths() {
        let (model, levels) = fitted_on_grid();
        let compiled = model.compile(&levels).unwrap();
        let mut out = vec![0.0; 2];
        compiled.predict_batch_into(&[0, 0, 1], &mut out);
    }

    #[test]
    fn predict_many_into_reuses_buffer() {
        let (model, levels) = fitted_on_grid();
        let compiled = model.compile(&levels).unwrap();
        let rows: Vec<Vec<f64>> =
            levels[0].iter().flat_map(|&a| levels[1].iter().map(move |&b| vec![a, b])).collect();
        let mut out = Vec::new();
        compiled.predict_many_into(&rows, &mut out).unwrap();
        assert_eq!(out.len(), rows.len());
        let cap = out.capacity();
        compiled.predict_many_into(&rows, &mut out).unwrap();
        assert_eq!(out.capacity(), cap, "second batch must reuse the buffer");
        for (row, &p) in rows.iter().zip(&out) {
            assert_eq!(p.to_bits(), compiled.predict_row(row).unwrap().to_bits());
        }
    }

    #[test]
    fn off_grid_value_is_reported() {
        let (model, levels) = fitted_on_grid();
        let compiled = model.compile(&levels).unwrap();
        let err = compiled.predict_row(&[1.5, 10.0]).unwrap_err();
        assert!(matches!(err, RegressError::OffGridValue { var: 0, .. }), "{err:?}");
        let err = compiled.predict_row(&[1.0]).unwrap_err();
        assert!(matches!(err, RegressError::RowLength { expected: 2, got: 1 }));
    }

    #[test]
    fn compile_validates_levels() {
        let (model, levels) = fitted_on_grid();
        assert!(matches!(
            model.compile(&levels[..1]).unwrap_err(),
            RegressError::RowLength { expected: 2, got: 1 }
        ));
        let unsorted = vec![vec![1.0, 3.0, 2.0], levels[1].clone()];
        assert!(matches!(
            model.compile(&unsorted).unwrap_err(),
            RegressError::BadLevels { var: 0 }
        ));
        let empty = vec![levels[0].clone(), Vec::new()];
        assert!(matches!(model.compile(&empty).unwrap_err(), RegressError::BadLevels { var: 1 }));
    }

    #[test]
    fn accessors_expose_grid_shape() {
        let (model, levels) = fitted_on_grid();
        let compiled = model.compile(&levels).unwrap();
        assert_eq!(compiled.width(), 2);
        assert_eq!(compiled.transform(), ResponseTransform::Log);
        assert_eq!(compiled.levels(0), &levels[0][..]);
        assert_eq!(compiled.level_index(1, 20.0), Some(1));
        assert_eq!(compiled.level_index(1, 21.0), None);
        // The SoA plan exposes its lanes for model stacking.
        assert_eq!(compiled.partial_sums(0).len(), levels[0].len());
        assert_eq!(compiled.partial_sums(1).len(), levels[1].len());
        let inter: Vec<(usize, usize, f64)> = compiled.interactions().collect();
        assert_eq!(inter.len(), 1);
        assert_eq!((inter[0].0, inter[0].1), (0, 1));
    }
}
