//! Compiled grid prediction: [`FittedModel`] lowered onto a discrete
//! predictor grid.
//!
//! The paper's design space (Table 1) is fully discrete — every predictor
//! takes only 3–10 distinct levels — while [`FittedModel::predict_row`]
//! re-derives each restricted-cubic-spline basis from scratch on every
//! call. [`FittedModel::compile`] exploits the discreteness: for every
//! predictor it precomputes the *per-level partial sum* of that
//! predictor's single-variable terms,
//!
//! ```text
//! partial[v][i] = Σ_j β_j · g_j(level_v[i])
//! ```
//!
//! folding the spline basis evaluation and its coefficient products into
//! one table entry per level. A prediction then reduces to one table read
//! per variable, one multiply-add per interaction term, and the response
//! back-transform — no allocation, no knot branching:
//!
//! ```text
//! f⁻¹( β₀ + Σ_v partial[v][idx_v] + Σ_(a,b) β_ab · x_a · x_b )
//! ```
//!
//! The lowering is exact up to floating-point summation order (the terms
//! are accumulated in the same model order, only grouped per variable),
//! so compiled predictions agree with [`FittedModel::predict_row`] to
//! ~1e-15 relative — well inside the 1e-12 equivalence bound the
//! exhaustive grid tests assert.

use crate::fit::FittedModel;
use crate::spec::ResolvedTerm;
use crate::spline::spline_basis;
use crate::transform::ResponseTransform;
use crate::RegressError;

/// Per-variable lookup table: the grid levels (strictly increasing) and
/// the precomputed single-variable partial sum at each level.
#[derive(Debug, Clone, PartialEq)]
struct VarTable {
    levels: Vec<f64>,
    partial: Vec<f64>,
}

/// One interaction term surviving compilation: `beta * x_a * x_b`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CompiledInteraction {
    a: usize,
    b: usize,
    beta: f64,
}

/// A [`FittedModel`] specialized to a discrete predictor grid; see the
/// module docs for the lowering scheme.
///
/// # Examples
///
/// ```
/// use udse_regress::{Dataset, ModelSpec, ResponseTransform, TermSpec};
///
/// let data = Dataset::new(
///     vec!["x".into()],
///     (0..10).map(|i| vec![i as f64]).collect(),
/// ).unwrap();
/// let y: Vec<f64> = (0..10).map(|i| 3.0 + 2.0 * i as f64).collect();
/// let model = ModelSpec::new(ResponseTransform::Identity)
///     .with_term(TermSpec::Linear(0))
///     .fit(&data, &y)
///     .unwrap();
/// let grid = vec![vec![0.0, 2.0, 4.0, 6.0]];
/// let compiled = model.compile(&grid).unwrap();
/// assert!((compiled.predict_row(&[4.0]).unwrap() - 11.0).abs() < 1e-9);
/// // Off-grid values are rejected, not silently extrapolated.
/// assert!(compiled.predict_row(&[3.0]).is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledModel {
    transform: ResponseTransform,
    width: usize,
    intercept: f64,
    vars: Vec<VarTable>,
    interactions: Vec<CompiledInteraction>,
}

impl FittedModel {
    /// Lowers this model onto a discrete grid: `levels[v]` lists the
    /// values predictor `v` may take (strictly increasing). All
    /// single-variable terms collapse into per-level partial-sum tables;
    /// interaction terms keep their coefficient and multiply at predict
    /// time.
    ///
    /// # Errors
    ///
    /// Returns [`RegressError::RowLength`] when `levels` does not have
    /// one list per predictor, and [`RegressError::BadLevels`] when any
    /// list is empty or not strictly increasing.
    pub fn compile(&self, levels: &[Vec<f64>]) -> Result<CompiledModel, RegressError> {
        let width = self.width();
        if levels.len() != width {
            return Err(RegressError::RowLength { expected: width, got: levels.len() });
        }
        for (var, ls) in levels.iter().enumerate() {
            if ls.is_empty() || ls.windows(2).any(|w| w[0] >= w[1]) {
                return Err(RegressError::BadLevels { var });
            }
        }
        let beta = self.coefficients();
        let mut vars: Vec<VarTable> = levels
            .iter()
            .map(|ls| VarTable { levels: ls.clone(), partial: vec![0.0; ls.len()] })
            .collect();
        let mut interactions = Vec::new();
        let mut next = 1; // beta[0] is the intercept
        for term in self.resolved_terms() {
            match term {
                ResolvedTerm::Linear(v) => {
                    let b = beta[next];
                    next += 1;
                    for (p, &x) in vars[*v].partial.iter_mut().zip(&levels[*v]) {
                        *p += b * x;
                    }
                }
                ResolvedTerm::Spline { var, knots } => {
                    let n = term.columns();
                    let bs = &beta[next..next + n];
                    next += n;
                    for (i, &x) in levels[*var].iter().enumerate() {
                        let basis = spline_basis(x, knots);
                        let mut acc = 0.0;
                        for (b, c) in bs.iter().zip(&basis) {
                            acc += b * c;
                        }
                        vars[*var].partial[i] += acc;
                    }
                }
                ResolvedTerm::Interaction(a, b) => {
                    interactions.push(CompiledInteraction { a: *a, b: *b, beta: beta[next] });
                    next += 1;
                }
            }
        }
        Ok(CompiledModel {
            transform: self.spec().transform(),
            width,
            intercept: beta[0],
            vars,
            interactions,
        })
    }
}

impl CompiledModel {
    /// Number of predictor variables.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The response transform inherited from the fitted model.
    pub fn transform(&self) -> ResponseTransform {
        self.transform
    }

    /// The grid levels of one predictor.
    ///
    /// # Panics
    ///
    /// Panics when `var` is out of range.
    pub fn levels(&self, var: usize) -> &[f64] {
        &self.vars[var].levels
    }

    /// The position of `value` in predictor `var`'s level list, if it is
    /// on the grid. Exact comparison — the caller is expected to produce
    /// grid values by the same arithmetic that built the level lists.
    pub fn level_index(&self, var: usize, value: f64) -> Option<usize> {
        self.vars[var].levels.iter().position(|&v| v == value)
    }

    /// Predicts on the transformed scale from per-variable *level
    /// indices* — the fastest path: `idx[v]` indexes into
    /// [`CompiledModel::levels`]`(v)`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` has the wrong length or an index is out of its
    /// variable's level range.
    pub fn predict_transformed_indices(&self, idx: &[usize]) -> f64 {
        assert_eq!(idx.len(), self.width, "one level index per predictor");
        let mut acc = self.intercept;
        for (t, &i) in self.vars.iter().zip(idx) {
            acc += t.partial[i];
        }
        for it in &self.interactions {
            acc += it.beta * self.vars[it.a].levels[idx[it.a]] * self.vars[it.b].levels[idx[it.b]];
        }
        acc
    }

    /// Predicts the (untransformed) response from per-variable level
    /// indices.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`CompiledModel::predict_transformed_indices`].
    pub fn predict_indices(&self, idx: &[usize]) -> f64 {
        self.transform.invert(self.predict_transformed_indices(idx))
    }

    /// Predicts the response for one predictor row whose values lie on
    /// the compiled grid. Allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`RegressError::RowLength`] on a wrong-width row and
    /// [`RegressError::OffGridValue`] when a value is not one of its
    /// predictor's compiled levels.
    pub fn predict_row(&self, row: &[f64]) -> Result<f64, RegressError> {
        if row.len() != self.width {
            return Err(RegressError::RowLength { expected: self.width, got: row.len() });
        }
        let mut acc = self.intercept;
        for (var, (&x, t)) in row.iter().zip(&self.vars).enumerate() {
            let i = t
                .levels
                .iter()
                .position(|&v| v == x)
                .ok_or(RegressError::OffGridValue { var, value: x })?;
            acc += t.partial[i];
        }
        // Row values equal their grid levels bitwise (checked above), so
        // the products match the index-based path exactly.
        for it in &self.interactions {
            acc += it.beta * row[it.a] * row[it.b];
        }
        Ok(self.transform.invert(acc))
    }

    /// Batch prediction into a caller-provided buffer: `out` is cleared
    /// and refilled with one prediction per row, reusing its capacity so
    /// steady-state sweeps allocate nothing.
    ///
    /// # Errors
    ///
    /// Fails on the first malformed or off-grid row; `out` then holds the
    /// predictions completed so far.
    pub fn predict_many_into(
        &self,
        rows: &[Vec<f64>],
        out: &mut Vec<f64>,
    ) -> Result<(), RegressError> {
        out.clear();
        out.reserve(rows.len());
        for row in rows {
            out.push(self.predict_row(row)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::spec::{ModelSpec, TermSpec};

    /// Grid, spline+interaction model, and its compiled form.
    fn fitted_on_grid() -> (FittedModel, Vec<Vec<f64>>) {
        let a_levels: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b_levels: Vec<f64> = vec![10.0, 20.0, 40.0];
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for &a in &a_levels {
            for &b in &b_levels {
                rows.push(vec![a, b]);
                y.push((2.0 + 0.8 * a + 0.01 * b + 0.3 * (a - 3.0).max(0.0) + 0.002 * a * b).exp());
            }
        }
        let data = Dataset::new(vec!["a".into(), "b".into()], rows).unwrap();
        let model = ModelSpec::new(ResponseTransform::Log)
            .with_term(TermSpec::Spline { var: 0, knots: 4 })
            .with_term(TermSpec::Linear(1))
            .with_term(TermSpec::Interaction(0, 1))
            .fit(&data, &y)
            .unwrap();
        (model, vec![a_levels, b_levels])
    }

    #[test]
    fn compiled_matches_naive_on_every_grid_point() {
        let (model, levels) = fitted_on_grid();
        let compiled = model.compile(&levels).unwrap();
        for (ia, &a) in levels[0].iter().enumerate() {
            for (ib, &b) in levels[1].iter().enumerate() {
                let naive = model.predict_row(&[a, b]).unwrap();
                let by_row = compiled.predict_row(&[a, b]).unwrap();
                let by_idx = compiled.predict_indices(&[ia, ib]);
                assert!(
                    (by_row - naive).abs() <= 1e-12 * naive.abs(),
                    "row path diverges at ({a}, {b}): {by_row} vs {naive}"
                );
                assert_eq!(by_row.to_bits(), by_idx.to_bits(), "row and index paths must agree");
            }
        }
    }

    #[test]
    fn predict_many_into_reuses_buffer() {
        let (model, levels) = fitted_on_grid();
        let compiled = model.compile(&levels).unwrap();
        let rows: Vec<Vec<f64>> =
            levels[0].iter().flat_map(|&a| levels[1].iter().map(move |&b| vec![a, b])).collect();
        let mut out = Vec::new();
        compiled.predict_many_into(&rows, &mut out).unwrap();
        assert_eq!(out.len(), rows.len());
        let cap = out.capacity();
        compiled.predict_many_into(&rows, &mut out).unwrap();
        assert_eq!(out.capacity(), cap, "second batch must reuse the buffer");
        for (row, &p) in rows.iter().zip(&out) {
            assert_eq!(p.to_bits(), compiled.predict_row(row).unwrap().to_bits());
        }
    }

    #[test]
    fn off_grid_value_is_reported() {
        let (model, levels) = fitted_on_grid();
        let compiled = model.compile(&levels).unwrap();
        let err = compiled.predict_row(&[1.5, 10.0]).unwrap_err();
        assert!(matches!(err, RegressError::OffGridValue { var: 0, .. }), "{err:?}");
        let err = compiled.predict_row(&[1.0]).unwrap_err();
        assert!(matches!(err, RegressError::RowLength { expected: 2, got: 1 }));
    }

    #[test]
    fn compile_validates_levels() {
        let (model, levels) = fitted_on_grid();
        assert!(matches!(
            model.compile(&levels[..1]).unwrap_err(),
            RegressError::RowLength { expected: 2, got: 1 }
        ));
        let unsorted = vec![vec![1.0, 3.0, 2.0], levels[1].clone()];
        assert!(matches!(
            model.compile(&unsorted).unwrap_err(),
            RegressError::BadLevels { var: 0 }
        ));
        let empty = vec![levels[0].clone(), Vec::new()];
        assert!(matches!(model.compile(&empty).unwrap_err(), RegressError::BadLevels { var: 1 }));
    }

    #[test]
    fn accessors_expose_grid_shape() {
        let (model, levels) = fitted_on_grid();
        let compiled = model.compile(&levels).unwrap();
        assert_eq!(compiled.width(), 2);
        assert_eq!(compiled.transform(), ResponseTransform::Log);
        assert_eq!(compiled.levels(0), &levels[0][..]);
        assert_eq!(compiled.level_index(1, 20.0), Some(1));
        assert_eq!(compiled.level_index(1, 21.0), None);
    }
}
