use udse_linalg::{Cholesky, Matrix, Qr};

use crate::inference::{coefficient_stats, CoefficientStat};

use crate::dataset::Dataset;
use crate::diagnostics::FitDiagnostics;
use crate::spec::{ModelSpec, ResolvedTerm};
use crate::RegressError;

/// A fitted regression model: the specification with resolved knots, the
/// least-squares coefficients, and fit diagnostics.
///
/// Obtained from [`ModelSpec::fit`]; thereafter predictions are pure
/// arithmetic (basis expansion plus a dot product), which is what makes
/// exhaustive evaluation of a 262,500-point design space take seconds —
/// the computational-efficiency claim at the heart of the paper.
///
/// # Examples
///
/// ```
/// use udse_regress::{Dataset, ModelSpec, ResponseTransform, TermSpec};
///
/// let data = Dataset::new(
///     vec!["x".into()],
///     (0..10).map(|i| vec![i as f64]).collect(),
/// ).unwrap();
/// let y: Vec<f64> = (0..10).map(|i| 3.0 + 2.0 * i as f64).collect();
/// let model = ModelSpec::new(ResponseTransform::Identity)
///     .with_term(TermSpec::Linear(0))
///     .fit(&data, &y)
///     .unwrap();
/// assert!((model.predict_row(&[20.0]).unwrap() - 43.0).abs() < 1e-8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FittedModel {
    spec: ModelSpec,
    resolved: Vec<ResolvedTerm>,
    beta: Vec<f64>,
    width: usize,
    diagnostics: FitDiagnostics,
    /// Upper-triangular factor of the design matrix's QR, kept for
    /// coefficient inference (`sigma^2 (R'R)^-1`).
    r_factor: Matrix,
    column_names: Vec<String>,
}

impl FittedModel {
    pub(crate) fn fit(
        spec: ModelSpec,
        data: &Dataset,
        y: &[f64],
    ) -> Result<FittedModel, RegressError> {
        if y.len() != data.len() {
            return Err(RegressError::MalformedDataset);
        }
        let resolved = spec.resolve(data)?;
        // Transform the response, validating its domain.
        let transform = spec.transform();
        let mut z = Vec::with_capacity(y.len());
        for (i, &yi) in y.iter().enumerate() {
            match transform.apply(yi) {
                Some(v) if v.is_finite() => z.push(v),
                _ => return Err(RegressError::InvalidResponse { index: i, value: yi }),
            }
        }
        // Expand the design matrix with an intercept column.
        let p: usize = 1 + resolved.iter().map(ResolvedTerm::columns).sum::<usize>();
        if data.len() < p {
            return Err(RegressError::TooFewObservations {
                observations: data.len(),
                coefficients: p,
            });
        }
        let mut flat = Vec::with_capacity(data.len() * p);
        for row in data.rows() {
            flat.push(1.0);
            for term in &resolved {
                term.expand_into(row, &mut flat);
            }
        }
        let x = Matrix::from_vec(data.len(), p, flat);
        let (beta, r_factor) = solve_least_squares(&x, &z)?;
        // Diagnostics on the transformed scale.
        let zhat = x.matvec(&beta).expect("matching dimensions");
        let diagnostics = FitDiagnostics::compute(&z, &zhat, p);
        // Every fit's goodness lands in one histogram so the manifest
        // can report the fleet-wide R² distribution (p50/p90/p99).
        udse_obs::metrics::histogram("regress.fit.r_squared", &[0.5, 0.9, 0.99, 0.999, 1.0])
            .observe(diagnostics.r_squared);
        let column_names = column_names(&resolved, data.names());
        Ok(FittedModel {
            spec,
            resolved,
            beta,
            width: data.width(),
            diagnostics,
            r_factor,
            column_names,
        })
    }

    /// Predicts the (untransformed) response for one predictor row.
    ///
    /// # Errors
    ///
    /// Returns [`RegressError::RowLength`] when `row` does not match the
    /// training dataset's variable count.
    pub fn predict_row(&self, row: &[f64]) -> Result<f64, RegressError> {
        Ok(self.spec.transform().invert(self.predict_transformed(row)?))
    }

    /// Predicts on the *transformed* scale (no inverse applied); useful
    /// for residual analysis.
    ///
    /// # Errors
    ///
    /// Returns [`RegressError::RowLength`] when `row` has the wrong
    /// number of variables.
    pub fn predict_transformed(&self, row: &[f64]) -> Result<f64, RegressError> {
        if row.len() != self.width {
            return Err(RegressError::RowLength { expected: self.width, got: row.len() });
        }
        let mut scratch = Vec::with_capacity(8);
        Ok(self.transformed_with_scratch(row, &mut scratch))
    }

    /// The transformed-scale dot product, expanding each term into a
    /// caller-owned scratch buffer so batch callers amortize the
    /// allocation. The row length must already be validated.
    fn transformed_with_scratch(&self, row: &[f64], scratch: &mut Vec<f64>) -> f64 {
        let mut acc = self.beta[0];
        let mut next = 1;
        for term in &self.resolved {
            scratch.clear();
            term.expand_into(row, scratch);
            for &c in scratch.iter() {
                acc += self.beta[next] * c;
                next += 1;
            }
        }
        acc
    }

    /// Predicts many rows at once, reusing one basis scratch buffer
    /// across the whole batch.
    ///
    /// # Errors
    ///
    /// Returns [`RegressError::RowLength`] for the first mismatched row,
    /// detected before any prediction work is done.
    pub fn predict_rows(&self, rows: &[Vec<f64>]) -> Result<Vec<f64>, RegressError> {
        for row in rows {
            if row.len() != self.width {
                return Err(RegressError::RowLength { expected: self.width, got: row.len() });
            }
        }
        let transform = self.spec.transform();
        let mut scratch = Vec::with_capacity(8);
        Ok(rows
            .iter()
            .map(|row| transform.invert(self.transformed_with_scratch(row, &mut scratch)))
            .collect())
    }

    /// The model specification this model was fit from.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The resolved terms (with concrete knot locations).
    pub fn resolved_terms(&self) -> &[ResolvedTerm] {
        &self.resolved
    }

    /// Regression coefficients, intercept first.
    pub fn coefficients(&self) -> &[f64] {
        &self.beta
    }

    /// Number of predictor variables the model was trained on.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Coefficient of determination on the transformed scale.
    pub fn r_squared(&self) -> f64 {
        self.diagnostics.r_squared
    }

    /// Full fit diagnostics.
    pub fn diagnostics(&self) -> &FitDiagnostics {
        &self.diagnostics
    }

    /// Design-matrix column labels (intercept first), aligned with
    /// [`FittedModel::coefficients`].
    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }

    /// Classical OLS inference per coefficient: standard errors, t
    /// statistics, and two-sided p-values — the paper's significance
    /// testing step (§3, \[14]).
    ///
    /// # Panics
    ///
    /// Panics if the fit consumed all degrees of freedom (`n == p`).
    pub fn coefficient_table(&self) -> Vec<CoefficientStat> {
        let d = &self.diagnostics;
        let dof = d.n - d.p;
        assert!(dof > 0, "no residual degrees of freedom for inference");
        let sigma2 = d.residual_std_error * d.residual_std_error;
        coefficient_stats(&self.column_names, &self.beta, &self.r_factor, sigma2, dof)
    }
}

/// Solves `min ||X b - z||_2`, preferring the normal-equations Cholesky
/// fast path (one `p x p` Gram product instead of a full Householder
/// factorization of the `n x p` design matrix) and falling back to QR
/// when `X'X` is not safely positive definite. Either way the returned
/// factor `R` is upper triangular with `R'R = X'X`, which is all that
/// coefficient inference needs.
fn solve_least_squares(x: &Matrix, z: &[f64]) -> Result<(Vec<f64>, Matrix), RegressError> {
    let xtx = x.gram();
    if let Some(chol) = well_conditioned_cholesky(&xtx) {
        let xtz = x.tr_matvec(z).expect("matching dimensions");
        let beta = chol.solve(&xtz)?;
        udse_obs::metrics::counter("regress.cholesky_fits").inc();
        return Ok((beta, chol.l().transpose()));
    }
    udse_obs::metrics::counter("regress.cholesky_fallbacks").inc();
    udse_obs::debug!("fit", "normal equations ill-conditioned; falling back to Householder QR");
    let qr = Qr::new(x)?;
    let beta = qr.solve(z)?;
    Ok((beta, qr.r()))
}

/// Factorizes `X'X` if it is positive definite *and* comfortably
/// conditioned. Squaring the design matrix squares its condition number,
/// so the fast path is only trusted while `diag(L)` stays within a
/// `sqrt(1e10)` dynamic range; collinear spline bases beyond that go to
/// the numerically safer QR route.
fn well_conditioned_cholesky(xtx: &Matrix) -> Option<Cholesky> {
    const MAX_DIAG_CONDITION: f64 = 1e10;
    let chol = Cholesky::new(xtx).ok()?;
    let l = chol.l();
    let mut dmin = f64::INFINITY;
    let mut dmax = 0.0f64;
    for i in 0..l.rows() {
        let d = l[(i, i)];
        dmin = dmin.min(d);
        dmax = dmax.max(d);
    }
    if dmax * dmax <= MAX_DIAG_CONDITION * dmin * dmin {
        Some(chol)
    } else {
        None
    }
}

/// Human-readable labels for the expanded design-matrix columns.
fn column_names(resolved: &[ResolvedTerm], var_names: &[String]) -> Vec<String> {
    let mut names = vec!["intercept".to_string()];
    for term in resolved {
        match term {
            ResolvedTerm::Linear(v) => names.push(var_names[*v].clone()),
            ResolvedTerm::Interaction(a, b) => {
                names.push(format!("{}*{}", var_names[*a], var_names[*b]));
            }
            ResolvedTerm::Spline { var, knots } => {
                names.push(var_names[*var].clone());
                for j in 1..knots.len() - 1 {
                    names.push(format!("{}[rcs{}]", var_names[*var], j));
                }
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TermSpec;
    use crate::transform::ResponseTransform;

    fn grid_dataset() -> (Dataset, Vec<f64>) {
        // y = (2 + 0.5 a + 0.25 b + 0.1 a*b)^2, a in 0..10, b in {1, 2, 4}.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for a in 0..10 {
            for b in [1.0, 2.0, 4.0] {
                let a = a as f64;
                let base: f64 = 2.0 + 0.5 * a + 0.25 * b + 0.1 * a * b;
                rows.push(vec![a, b]);
                y.push(base * base);
            }
        }
        (Dataset::new(vec!["a".into(), "b".into()], rows).unwrap(), y)
    }

    #[test]
    fn sqrt_transform_recovers_quadratic_relation() {
        let (data, y) = grid_dataset();
        let model = ModelSpec::new(ResponseTransform::Sqrt)
            .with_term(TermSpec::Linear(0))
            .with_term(TermSpec::Linear(1))
            .with_term(TermSpec::Interaction(0, 1))
            .fit(&data, &y)
            .unwrap();
        assert!(model.r_squared() > 0.9999);
        // Exact on the sqrt scale: beta = [2, 0.5, 0.25, 0.1].
        let b = model.coefficients();
        assert!((b[0] - 2.0).abs() < 1e-8);
        assert!((b[1] - 0.5).abs() < 1e-8);
        assert!((b[2] - 0.25).abs() < 1e-8);
        assert!((b[3] - 0.1).abs() < 1e-8);
        // And prediction inverts the transform.
        let pred = model.predict_row(&[3.0, 2.0]).unwrap();
        let expect = (2.0 + 1.5 + 0.5 + 0.6f64).powi(2);
        assert!((pred - expect).abs() < 1e-8);
    }

    #[test]
    fn log_transform_recovers_exponential_relation() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| (1.0 + 0.8 * r[0]).exp()).collect();
        let data = Dataset::new(vec!["x".into()], rows).unwrap();
        let model = ModelSpec::new(ResponseTransform::Log)
            .with_term(TermSpec::Linear(0))
            .fit(&data, &y)
            .unwrap();
        let b = model.coefficients();
        assert!((b[0] - 1.0).abs() < 1e-8);
        assert!((b[1] - 0.8).abs() < 1e-8);
    }

    #[test]
    fn spline_fits_nonlinear_curve_better_than_line() {
        // y = sin(x) over [0, 3]: a line cannot follow it, a 5-knot spline can.
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.05]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0].sin()).collect();
        let data = Dataset::new(vec!["x".into()], rows).unwrap();
        let linear = ModelSpec::new(ResponseTransform::Identity)
            .with_term(TermSpec::Linear(0))
            .fit(&data, &y)
            .unwrap();
        let spline = ModelSpec::new(ResponseTransform::Identity)
            .with_term(TermSpec::Spline { var: 0, knots: 5 })
            .fit(&data, &y)
            .unwrap();
        assert!(spline.r_squared() > linear.r_squared());
        assert!(spline.r_squared() > 0.999);
    }

    #[test]
    fn prediction_row_length_checked() {
        let (data, y) = grid_dataset();
        let model = ModelSpec::new(ResponseTransform::Identity)
            .with_term(TermSpec::Linear(0))
            .fit(&data, &y)
            .unwrap();
        assert!(matches!(
            model.predict_row(&[1.0]),
            Err(RegressError::RowLength { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn invalid_response_under_log_reported() {
        let data = Dataset::new(vec!["x".into()], vec![vec![1.0], vec![2.0]]).unwrap();
        let err = ModelSpec::new(ResponseTransform::Log)
            .with_term(TermSpec::Linear(0))
            .fit(&data, &[1.0, 0.0])
            .unwrap_err();
        assert!(matches!(err, RegressError::InvalidResponse { index: 1, .. }));
    }

    #[test]
    fn too_few_observations_reported() {
        // Intercept + 2 linear + interaction = 4 coefficients from 3 rows.
        let data = Dataset::new(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0], vec![2.0, 5.0], vec![3.0, 1.0]],
        )
        .unwrap();
        let err = ModelSpec::new(ResponseTransform::Identity)
            .with_term(TermSpec::Linear(0))
            .with_term(TermSpec::Linear(1))
            .with_term(TermSpec::Interaction(0, 1))
            .fit(&data, &[1.0, 2.0, 3.0])
            .unwrap_err();
        assert!(matches!(
            err,
            RegressError::TooFewObservations { observations: 3, coefficients: 4 }
        ));
    }

    #[test]
    fn mismatched_response_length_rejected() {
        let (data, _) = grid_dataset();
        let err = ModelSpec::new(ResponseTransform::Identity)
            .with_term(TermSpec::Linear(0))
            .fit(&data, &[1.0, 2.0])
            .unwrap_err();
        assert_eq!(err, RegressError::MalformedDataset);
    }

    #[test]
    fn cholesky_and_qr_paths_agree() {
        let (data, y) = grid_dataset();
        let spec = ModelSpec::new(ResponseTransform::Sqrt)
            .with_term(TermSpec::Linear(0))
            .with_term(TermSpec::Linear(1))
            .with_term(TermSpec::Interaction(0, 1));
        let resolved = spec.resolve(&data).unwrap();
        let p: usize = 1 + resolved.iter().map(ResolvedTerm::columns).sum::<usize>();
        let mut flat = Vec::new();
        for row in data.rows() {
            flat.push(1.0);
            for term in &resolved {
                term.expand_into(row, &mut flat);
            }
        }
        let x = Matrix::from_vec(data.len(), p, flat);
        let z: Vec<f64> = y.iter().map(|v| v.sqrt()).collect();

        let (beta_fast, r_fast) = solve_least_squares(&x, &z).unwrap();
        let qr = Qr::new(&x).unwrap();
        let beta_qr = qr.solve(&z).unwrap();
        for (a, b) in beta_fast.iter().zip(&beta_qr) {
            assert!((a - b).abs() < 1e-9, "cholesky {a} vs qr {b}");
        }
        // Both factors must reproduce the Gram matrix: R'R = X'X.
        let gram = x.gram();
        for r in [&r_fast, &qr.r()] {
            let rtr = r.transpose().matmul(r).unwrap();
            for i in 0..p {
                for j in 0..p {
                    assert!(
                        (rtr[(i, j)] - gram[(i, j)]).abs() < 1e-6 * (1.0 + gram[(i, j)].abs()),
                        "R'R mismatch at ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn ill_conditioned_design_falls_back_to_qr() {
        // Two nearly identical predictors make X'X catastrophically
        // conditioned; the fit must still succeed (via QR) and count the
        // fallback.
        let fallbacks = || udse_obs::metrics::counter("regress.cholesky_fallbacks").get();
        let before = fallbacks();
        let rows: Vec<Vec<f64>> =
            (0..40).map(|i| vec![i as f64, i as f64 + 1e-9 * (i % 3) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 1.0 + r[0] + r[1]).collect();
        let data = Dataset::new(vec!["a".into(), "b".into()], rows).unwrap();
        let model = ModelSpec::new(ResponseTransform::Identity)
            .with_term(TermSpec::Linear(0))
            .with_term(TermSpec::Linear(1))
            .fit(&data, &y)
            .unwrap();
        assert!(model.r_squared() > 0.9999);
        assert!(fallbacks() > before, "collinear design should take the QR path");
    }

    #[test]
    fn predict_rows_rejects_bad_width_before_the_loop() {
        let (data, y) = grid_dataset();
        let model = ModelSpec::new(ResponseTransform::Identity)
            .with_term(TermSpec::Linear(0))
            .with_term(TermSpec::Linear(1))
            .fit(&data, &y)
            .unwrap();
        // The malformed row is last; validation must still catch it.
        let rows = vec![vec![1.0, 2.0], vec![2.0, 3.0], vec![4.0]];
        assert!(matches!(
            model.predict_rows(&rows),
            Err(RegressError::RowLength { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn predict_rows_batches() {
        let (data, y) = grid_dataset();
        let model = ModelSpec::new(ResponseTransform::Sqrt)
            .with_term(TermSpec::Linear(0))
            .with_term(TermSpec::Linear(1))
            .with_term(TermSpec::Interaction(0, 1))
            .fit(&data, &y)
            .unwrap();
        let preds = model.predict_rows(data.rows()).unwrap();
        for (p, t) in preds.iter().zip(&y) {
            assert!((p - t).abs() < 1e-6);
        }
    }
}
