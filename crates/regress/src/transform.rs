/// Response transformations `f(y)` (paper §3.3).
///
/// A square-root transform stabilizes error variance in the performance
/// models; a log transform captures the exponential trends of the power
/// models.
///
/// # Examples
///
/// ```
/// use udse_regress::ResponseTransform;
///
/// let t = ResponseTransform::Log;
/// let z = t.apply(10.0).unwrap();
/// assert!((t.invert(z) - 10.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResponseTransform {
    /// No transformation.
    #[default]
    Identity,
    /// `f(y) = sqrt(y)`; requires `y >= 0`.
    Sqrt,
    /// `f(y) = ln(y)`; requires `y > 0`.
    Log,
}

impl ResponseTransform {
    /// Applies the transform, returning `None` when `y` is outside the
    /// transform's domain.
    pub fn apply(self, y: f64) -> Option<f64> {
        match self {
            ResponseTransform::Identity => Some(y),
            ResponseTransform::Sqrt => (y >= 0.0).then(|| y.sqrt()),
            ResponseTransform::Log => (y > 0.0).then(|| y.ln()),
        }
    }

    /// Inverts the transform (maps model scale back to response scale).
    pub fn invert(self, z: f64) -> f64 {
        match self {
            ResponseTransform::Identity => z,
            ResponseTransform::Sqrt => z * z,
            ResponseTransform::Log => z.exp(),
        }
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ResponseTransform::Identity => "identity",
            ResponseTransform::Sqrt => "sqrt",
            ResponseTransform::Log => "log",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        for t in [ResponseTransform::Identity, ResponseTransform::Sqrt, ResponseTransform::Log] {
            for y in [0.5, 1.0, 42.0, 1e6] {
                let z = t.apply(y).unwrap();
                assert!((t.invert(z) - y).abs() < 1e-9 * y.max(1.0), "{t:?} {y}");
            }
        }
    }

    #[test]
    fn domains_enforced() {
        assert_eq!(ResponseTransform::Sqrt.apply(-1.0), None);
        assert_eq!(ResponseTransform::Log.apply(0.0), None);
        assert_eq!(ResponseTransform::Identity.apply(-1.0), Some(-1.0));
    }

    #[test]
    fn sqrt_invert_squares() {
        assert_eq!(ResponseTransform::Sqrt.invert(3.0), 9.0);
    }

    #[test]
    fn names_distinct() {
        let names = [
            ResponseTransform::Identity.name(),
            ResponseTransform::Sqrt.name(),
            ResponseTransform::Log.name(),
        ];
        assert_eq!(names.iter().collect::<std::collections::HashSet<_>>().len(), 3);
    }
}
