use crate::RegressError;

/// A rectangular table of predictor observations: one row per observed
/// design, one column per predictor variable.
///
/// # Examples
///
/// ```
/// use udse_regress::Dataset;
///
/// let d = Dataset::new(
///     vec!["depth".into(), "width".into()],
///     vec![vec![19.0, 4.0], vec![12.0, 8.0]],
/// ).unwrap();
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.column(1), vec![4.0, 8.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    names: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Dataset {
    /// Creates a dataset, checking that every row has one value per
    /// variable and at least one row exists.
    ///
    /// # Errors
    ///
    /// Returns [`RegressError::MalformedDataset`] for empty or ragged
    /// input.
    pub fn new(names: Vec<String>, rows: Vec<Vec<f64>>) -> Result<Self, RegressError> {
        if names.is_empty() || rows.is_empty() {
            return Err(RegressError::MalformedDataset);
        }
        if rows.iter().any(|r| r.len() != names.len()) {
            return Err(RegressError::MalformedDataset);
        }
        Ok(Dataset { names, rows })
    }

    /// Variable names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of variables (columns).
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// Number of observations (rows).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no rows (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrows observation `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Copies column `var` into a vector.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn column(&self, var: usize) -> Vec<f64> {
        assert!(var < self.width(), "variable index out of range");
        self.rows.iter().map(|r| r[var]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_ragged_and_empty() {
        assert_eq!(Dataset::new(vec!["a".into()], vec![]), Err(RegressError::MalformedDataset));
        assert_eq!(
            Dataset::new(vec!["a".into()], vec![vec![1.0], vec![1.0, 2.0]]),
            Err(RegressError::MalformedDataset)
        );
        assert_eq!(Dataset::new(vec![], vec![vec![]]), Err(RegressError::MalformedDataset));
    }

    #[test]
    fn accessors() {
        let d = Dataset::new(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
        )
        .unwrap();
        assert_eq!(d.width(), 2);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert_eq!(d.column(0), vec![1.0, 3.0, 5.0]);
        assert_eq!(d.names()[1], "b");
    }
}
