//! K-fold cross-validation of model specifications.
//!
//! The paper validates on 100 held-out random designs (Fig 1); k-fold CV
//! generalizes that check using the training sample alone, which is how
//! the derivation work (\[14]) compared candidate specifications without
//! spending extra simulations.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::spec::ModelSpec;
use crate::RegressError;

/// Cross-validation summary over all folds.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Median absolute relative error per fold (`|obs - pred| / pred`).
    pub fold_median_ape: Vec<f64>,
    /// Root-mean-square error over all held-out predictions.
    pub rmse: f64,
    /// Mean absolute error over all held-out predictions.
    pub mae: f64,
    /// Median absolute relative error over all held-out predictions.
    pub median_ape: f64,
    /// Signed relative error `(obs - pred) / pred` of every held-out
    /// prediction, in fold order (rows with a zero prediction are
    /// skipped). Feeds [`CvResult::to_quality`].
    pub signed_errors: Vec<f64>,
    /// Number of folds actually evaluated.
    pub folds: usize,
}

impl CvResult {
    /// Summarizes the held-out error distribution as a model-quality
    /// telemetry record under `key` (e.g. `crossval.knots4.bips`),
    /// ready for [`udse_obs::quality::record`].
    ///
    /// # Panics
    ///
    /// Panics if every held-out prediction was zero (no errors kept).
    pub fn to_quality(&self, key: &str) -> udse_obs::QualityRecord {
        udse_obs::QualityRecord::from_signed_errors(key, &self.signed_errors)
    }
}

/// Runs `k`-fold cross-validation of `spec` on `(data, y)`.
///
/// Rows are shuffled deterministically by `seed`, split into `k`
/// near-equal folds; each fold is predicted by a model trained on the
/// remaining rows.
///
/// # Errors
///
/// Propagates fitting errors (e.g. a fold leaving too few observations).
///
/// # Panics
///
/// Panics if `k < 2` or `k` exceeds the number of observations.
pub fn k_fold_cv(
    spec: &ModelSpec,
    data: &Dataset,
    y: &[f64],
    k: usize,
    seed: u64,
) -> Result<CvResult, RegressError> {
    let n = data.len();
    assert!(k >= 2, "cross-validation needs at least two folds");
    assert!(k <= n, "more folds than observations");
    if y.len() != n {
        return Err(RegressError::MalformedDataset);
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed));

    let mut fold_median_ape = Vec::with_capacity(k);
    let mut sq_sum = 0.0;
    let mut abs_sum = 0.0;
    let mut apes: Vec<f64> = Vec::with_capacity(n);
    let mut signed_errors: Vec<f64> = Vec::with_capacity(n);
    let mut held_out_total = 0usize;

    for fold in 0..k {
        let test_idx: Vec<usize> = order.iter().copied().skip(fold).step_by(k).collect();
        let test_set: std::collections::HashSet<usize> = test_idx.iter().copied().collect();
        let mut train_rows = Vec::with_capacity(n - test_idx.len());
        let mut train_y = Vec::with_capacity(n - test_idx.len());
        for (i, &yi) in y.iter().enumerate() {
            if !test_set.contains(&i) {
                train_rows.push(data.row(i).to_vec());
                train_y.push(yi);
            }
        }
        let train = Dataset::new(data.names().to_vec(), train_rows)?;
        let model = spec.fit(&train, &train_y)?;
        let mut fold_apes = Vec::with_capacity(test_idx.len());
        for &i in &test_idx {
            let pred = model.predict_row(data.row(i))?;
            let err = y[i] - pred;
            sq_sum += err * err;
            abs_sum += err.abs();
            if pred != 0.0 {
                let signed = err / pred;
                signed_errors.push(signed);
                fold_apes.push(signed.abs());
                apes.push(signed.abs());
            }
            held_out_total += 1;
        }
        if !fold_apes.is_empty() {
            fold_median_ape.push(udse_stats::median(&fold_apes));
        }
    }
    let denom = held_out_total.max(1) as f64;
    Ok(CvResult {
        fold_median_ape,
        rmse: (sq_sum / denom).sqrt(),
        mae: abs_sum / denom,
        median_ape: if apes.is_empty() { 0.0 } else { udse_stats::median(&apes) },
        signed_errors,
        folds: k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TermSpec;
    use crate::transform::ResponseTransform;

    fn linear_world(n: usize, noise: f64) -> (Dataset, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut state = 7u64;
        let mut rnd = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        };
        for i in 0..n {
            let x = i as f64 / 3.0;
            rows.push(vec![x]);
            y.push(5.0 + 1.5 * x + noise * rnd());
        }
        (Dataset::new(vec!["x".into()], rows).unwrap(), y)
    }

    #[test]
    fn cv_of_correct_spec_has_low_error() {
        let (data, y) = linear_world(60, 0.05);
        let spec = ModelSpec::new(ResponseTransform::Identity).with_term(TermSpec::Linear(0));
        let cv = k_fold_cv(&spec, &data, &y, 5, 1).unwrap();
        assert_eq!(cv.folds, 5);
        assert_eq!(cv.fold_median_ape.len(), 5);
        assert!(cv.median_ape < 0.01, "median APE {}", cv.median_ape);
        assert!(cv.rmse < 0.2);
        assert!(cv.mae <= cv.rmse + 1e-12);
    }

    #[test]
    fn cv_detects_underfitting() {
        // Quadratic world fit with a line vs a spline.
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 6.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 1.0 + r[0] * r[0]).collect();
        let data = Dataset::new(vec!["x".into()], rows).unwrap();
        let line = ModelSpec::new(ResponseTransform::Identity).with_term(TermSpec::Linear(0));
        let spline = ModelSpec::new(ResponseTransform::Identity)
            .with_term(TermSpec::Spline { var: 0, knots: 5 });
        let cv_line = k_fold_cv(&line, &data, &y, 5, 2).unwrap();
        let cv_spline = k_fold_cv(&spline, &data, &y, 5, 2).unwrap();
        assert!(
            cv_spline.rmse < 0.3 * cv_line.rmse,
            "spline {} vs line {}",
            cv_spline.rmse,
            cv_line.rmse
        );
    }

    #[test]
    fn cv_quality_record_matches_summary() {
        let (data, y) = linear_world(40, 0.2);
        let spec = ModelSpec::new(ResponseTransform::Identity).with_term(TermSpec::Linear(0));
        let cv = k_fold_cv(&spec, &data, &y, 4, 3).unwrap();
        assert_eq!(cv.signed_errors.len(), 40, "every held-out row kept");
        let q = cv.to_quality("crossval.test.linear");
        assert_eq!(q.key, "crossval.test.linear");
        assert_eq!(q.n, 40);
        // Both use R type-7 quantiles over the same sample.
        assert!((q.p50 - cv.median_ape).abs() < 1e-12);
        assert!(q.p50 <= q.p90 && q.p90 <= q.max);
        assert!(q.bias.abs() <= q.max);
    }

    #[test]
    fn deterministic_per_seed() {
        let (data, y) = linear_world(40, 0.2);
        let spec = ModelSpec::new(ResponseTransform::Identity).with_term(TermSpec::Linear(0));
        let a = k_fold_cv(&spec, &data, &y, 4, 9).unwrap();
        let b = k_fold_cv(&spec, &data, &y, 4, 9).unwrap();
        assert_eq!(a, b);
        let c = k_fold_cv(&spec, &data, &y, 4, 10).unwrap();
        assert_ne!(a.fold_median_ape, c.fold_median_ape);
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn one_fold_panics() {
        let (data, y) = linear_world(10, 0.1);
        let spec = ModelSpec::new(ResponseTransform::Identity).with_term(TermSpec::Linear(0));
        let _ = k_fold_cv(&spec, &data, &y, 1, 0);
    }

    #[test]
    fn mismatched_response_rejected() {
        let (data, _) = linear_world(10, 0.1);
        let spec = ModelSpec::new(ResponseTransform::Identity).with_term(TermSpec::Linear(0));
        assert!(matches!(
            k_fold_cv(&spec, &data, &[1.0], 2, 0),
            Err(RegressError::MalformedDataset)
        ));
    }
}
