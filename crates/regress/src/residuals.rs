//! Residual analysis (paper §3: the derivation applied "residual
//! analysis" alongside significance testing).
//!
//! Checks the OLS assumptions on the transformed scale: roughly symmetric,
//! light-tailed residuals (skewness/kurtosis, Jarque–Bera) with no trend
//! against the fitted values (heteroscedasticity). The paper's sqrt/log
//! response transforms exist precisely to make these checks pass; the
//! ablation harness shows what happens without them.

use crate::dataset::Dataset;
use crate::fit::FittedModel;
use crate::RegressError;

/// Summary of a fitted model's residual behaviour on the transformed
/// scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidualReport {
    /// Number of residuals.
    pub n: usize,
    /// Mean residual (should be ~0 by construction).
    pub mean: f64,
    /// Sample skewness (0 for symmetric residuals).
    pub skewness: f64,
    /// Excess kurtosis (0 for normal tails).
    pub excess_kurtosis: f64,
    /// Jarque–Bera statistic `n/6 (S^2 + K^2/4)`.
    pub jarque_bera: f64,
    /// p-value of the JB statistic under its chi-squared(2) null.
    pub jarque_bera_pvalue: f64,
    /// Pearson correlation between |residual| and fitted value; large
    /// magnitudes indicate heteroscedasticity (error variance drifting
    /// with the response level).
    pub spread_trend: f64,
}

impl ResidualReport {
    /// Whether the residuals look approximately normal at the given
    /// significance level (fails to reject the JB null).
    pub fn looks_normal_at(&self, alpha: f64) -> bool {
        self.jarque_bera_pvalue > alpha
    }
}

/// Computes the residual report for a fitted model over a dataset.
///
/// Residuals are taken on the *transformed* scale (`f(y) - f_hat`), where
/// the OLS assumptions are supposed to hold.
///
/// # Errors
///
/// Returns [`RegressError::MalformedDataset`] when `y` and `data`
/// disagree in length, and propagates prediction errors.
pub fn residual_report(
    model: &FittedModel,
    data: &Dataset,
    y: &[f64],
) -> Result<ResidualReport, RegressError> {
    if y.len() != data.len() {
        return Err(RegressError::MalformedDataset);
    }
    let transform = model.spec().transform();
    let mut resid = Vec::with_capacity(y.len());
    let mut fitted = Vec::with_capacity(y.len());
    for (i, &yi) in y.iter().enumerate() {
        let z = transform.apply(yi).ok_or(RegressError::InvalidResponse { index: i, value: yi })?;
        let zhat = model.predict_transformed(data.row(i))?;
        resid.push(z - zhat);
        fitted.push(zhat);
    }
    let n = resid.len() as f64;
    let mean = resid.iter().sum::<f64>() / n;
    let m2 = resid.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / n;
    let m3 = resid.iter().map(|r| (r - mean).powi(3)).sum::<f64>() / n;
    let m4 = resid.iter().map(|r| (r - mean).powi(4)).sum::<f64>() / n;
    let sd = m2.sqrt();
    let (skewness, excess_kurtosis) =
        if sd > 0.0 { (m3 / sd.powi(3), m4 / (m2 * m2) - 3.0) } else { (0.0, 0.0) };
    let jb = n / 6.0 * (skewness * skewness + excess_kurtosis * excess_kurtosis / 4.0);
    // Chi-squared(2) survival function has the closed form exp(-x/2).
    let jb_p = (-jb / 2.0).exp();
    let abs_resid: Vec<f64> = resid.iter().map(|r| (r - mean).abs()).collect();
    let spread_trend = if abs_resid.len() >= 2 && sd > 0.0 {
        udse_stats::pearson(&abs_resid, &fitted)
    } else {
        0.0
    };
    Ok(ResidualReport {
        n: resid.len(),
        mean,
        skewness,
        excess_kurtosis,
        jarque_bera: jb,
        jarque_bera_pvalue: jb_p,
        spread_trend,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ModelSpec, TermSpec};
    use crate::transform::ResponseTransform;

    fn gaussianish(state: &mut u64) -> f64 {
        // Sum of uniforms: near-normal via CLT (splitmix64 draws).
        let mut acc = 0.0;
        for _ in 0..12 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            acc += (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0;
        }
        acc / 2.0
    }

    fn fit_world(noise_kind: &str) -> (FittedModel, Dataset, Vec<f64>) {
        let mut state = 42u64;
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..300 {
            let x = i as f64 / 30.0;
            let noise = match noise_kind {
                "normal" => 0.3 * gaussianish(&mut state),
                // Variance growing with the response level.
                "hetero" => 0.05 * (1.0 + 3.0 * x) * gaussianish(&mut state),
                // Heavy one-sided tail.
                "skewed" => {
                    let g = gaussianish(&mut state);
                    if g > 0.0 {
                        2.5 * g * g
                    } else {
                        0.1 * g
                    }
                }
                _ => unreachable!(),
            };
            rows.push(vec![x]);
            y.push(5.0 + 2.0 * x + noise);
        }
        let data = Dataset::new(vec!["x".into()], rows).unwrap();
        let model = ModelSpec::new(ResponseTransform::Identity)
            .with_term(TermSpec::Linear(0))
            .fit(&data, &y)
            .unwrap();
        (model, data, y)
    }

    #[test]
    fn normal_residuals_pass_jarque_bera() {
        let (model, data, y) = fit_world("normal");
        let r = residual_report(&model, &data, &y).unwrap();
        assert!(r.mean.abs() < 1e-8, "OLS residuals have zero mean");
        assert!(r.skewness.abs() < 0.4, "skewness {}", r.skewness);
        assert!(r.looks_normal_at(0.01), "JB p-value {}", r.jarque_bera_pvalue);
        assert!(r.spread_trend.abs() < 0.25);
    }

    #[test]
    fn skewed_residuals_fail_jarque_bera() {
        let (model, data, y) = fit_world("skewed");
        let r = residual_report(&model, &data, &y).unwrap();
        assert!(r.skewness > 0.5, "skewness {}", r.skewness);
        assert!(!r.looks_normal_at(0.01));
    }

    #[test]
    fn heteroscedastic_residuals_show_spread_trend() {
        let (model, data, y) = fit_world("hetero");
        let r = residual_report(&model, &data, &y).unwrap();
        assert!(r.spread_trend > 0.3, "spread trend {}", r.spread_trend);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let (model, data, _) = fit_world("normal");
        assert!(matches!(
            residual_report(&model, &data, &[1.0]),
            Err(RegressError::MalformedDataset)
        ));
    }
}
