//! Criterion benches for the substrates: simulation cost per benchmark
//! (the quantity regression modeling amortizes away), trace generation,
//! and cache lookups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use udse_sim::{MachineConfig, SetAssocCache, Simulator};
use udse_trace::{Benchmark, Trace};

const BENCH_TRACE_LEN: usize = 20_000;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_20k_insts");
    group.throughput(Throughput::Elements(BENCH_TRACE_LEN as u64));
    for b in [Benchmark::Gzip, Benchmark::Mcf, Benchmark::Ammp] {
        let trace = Trace::generate(b, BENCH_TRACE_LEN, 1);
        let sim = Simulator::new(MachineConfig::power4_baseline());
        group.bench_with_input(BenchmarkId::from_parameter(b.name()), &trace, |bch, t| {
            bch.iter(|| sim.run(t))
        });
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_trace_20k");
    group.throughput(Throughput::Elements(BENCH_TRACE_LEN as u64));
    for b in [Benchmark::Gzip, Benchmark::Mcf] {
        group.bench_function(BenchmarkId::from_parameter(b.name()), |bch| {
            let mut seed = 0u64;
            bch.iter(|| {
                seed += 1;
                Trace::generate(b, BENCH_TRACE_LEN, seed)
            })
        });
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("dl1_32k_2way_10k_hits", |bch| {
        let mut cache = SetAssocCache::new(32, 2);
        for blk in 0..128u64 {
            cache.access(blk);
        }
        bch.iter(|| {
            let mut hits = 0u32;
            for i in 0..10_000u64 {
                if cache.access(i % 128) {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_simulation, bench_trace_generation, bench_cache
}
criterion_main!(benches);
