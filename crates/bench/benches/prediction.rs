//! Criterion benches for the paper's computational-efficiency claims:
//! model formulation ("numerically solving a system of linear equations")
//! and prediction ("thousands of predictions in a few seconds" — the
//! paper reports 800 predictions per 15 s on a 2006 laptop; modern
//! hardware and an optimized basis evaluation should be orders of
//! magnitude faster).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use udse_core::model::{design_dataset, performance_spec, PaperModels, SuiteLanes};
use udse_core::oracle::Metrics;
use udse_core::space::{DesignPoint, DesignSpace};
use udse_trace::Benchmark;

/// Synthetic smooth responses so fitting cost is measured without paying
/// for 1,000 simulations inside the benchmark loop.
fn synth_metrics(p: &DesignPoint) -> Metrics {
    let v = p.predictors();
    Metrics {
        bips: (6.0 / v[0]) * (1.0 + 0.15 * v[1].ln()) + 0.02 * v[6] + 0.001 * v[2],
        watts: 4.0 + 40.0 / v[0] + 1.2 * v[1] + 0.5 * v[6] + 0.01 * v[2],
    }
}

fn trained_models() -> PaperModels {
    let samples = DesignSpace::paper().sample_uar(1_000, 7);
    let obs: Vec<Metrics> = samples.iter().map(synth_metrics).collect();
    PaperModels::train_from_observations(Benchmark::Gzip, &samples, &obs)
        .expect("synthetic fit succeeds")
}

fn bench_fit(c: &mut Criterion) {
    let samples = DesignSpace::paper().sample_uar(1_000, 7);
    let data = design_dataset(&samples).expect("non-empty");
    let y: Vec<f64> = samples.iter().map(|p| synth_metrics(p).bips).collect();
    c.bench_function("fit_performance_model_n1000", |b| {
        b.iter(|| performance_spec().fit(&data, &y).expect("fit"))
    });
}

fn bench_predict(c: &mut Criterion) {
    let models = trained_models();
    let space = DesignSpace::exploration();
    let point = space.decode(123_456).expect("valid index");
    c.bench_function("predict_single_design", |b| {
        b.iter(|| models.predict_metrics(std::hint::black_box(&point)))
    });

    let mut group = c.benchmark_group("predict_batch");
    let batch: Vec<DesignPoint> = space.sample_uar(10_000, 3);
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("10k_designs", |b| {
        b.iter_batched(
            || batch.clone(),
            |pts| pts.iter().map(|p| models.predict_efficiency(p)).sum::<f64>(),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

/// The §3.6 claim at modern scale: sweeping the full 262,500-point
/// exploration grid, naive per-row spline evaluation vs the compiled
/// per-level lookup path vs the incremental structure-of-arrays grid
/// walker. The acceptance bar is the walker ≥ 5x the pointwise compiled
/// path (and orders of magnitude over naive).
fn bench_compiled_sweep(c: &mut Criterion) {
    let models = trained_models();
    let space = DesignSpace::exploration();
    let compiled = models.compile(&space);
    let lanes = compiled.lanes();
    let total = space.len();
    let mut group = c.benchmark_group("compiled_predict_sweep");
    group.throughput(Throughput::Elements(total));
    group.bench_function("naive_full_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for p in space.iter() {
                acc += models.predict_efficiency(&p);
            }
            acc
        })
    });
    // The pre-SoA hot path: decode + quantize every point, then scattered
    // per-variable partial-sum lookups (PR-4's ~11.5M designs/sec shape).
    group.bench_function("compiled_pointwise_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for p in space.iter() {
                acc += compiled.predict_efficiency(&p);
            }
            acc
        })
    });
    // The SoA hot path the studies actually run: lexicographic walker with
    // incremental per-prefix partial sums — no decode, no quantization.
    group.bench_function("compiled_full_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            let mut walker = lanes.walker(&space, 1);
            walker.walk(0..total, |_, m| acc += m[0].bips_cubed_per_watt());
            acc
        })
    });

    // The fused sweep behind `pareto::characterize_all`: per-benchmark
    // walks decode every design point and quantize it once *per model*,
    // while the stacked walk reads one incremental grid index per point
    // and feeds all eighteen model lanes from it.
    let suite: Vec<_> = (0..Benchmark::ALL.len())
        .map(|i| {
            let samples = DesignSpace::paper().sample_uar(1_000, 7 + i as u64);
            let obs: Vec<Metrics> = samples.iter().map(synth_metrics).collect();
            PaperModels::train_from_observations(Benchmark::ALL[i], &samples, &obs)
                .expect("synthetic fit succeeds")
                .compile(&space)
        })
        .collect();
    let suite_lanes = SuiteLanes::stack(&suite);
    group.throughput(Throughput::Elements(total * Benchmark::ALL.len() as u64));
    group.bench_function("nine_separate_grid_walks", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for m in &suite {
                for p in space.iter() {
                    acc += m.predict_efficiency(&p);
                }
            }
            acc
        })
    });
    group.bench_function("fused_nine_benchmark_walk", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            let mut walker = suite_lanes.walker(&space, 1);
            walker.walk(0..total, |_, ms| {
                for m in ms {
                    acc += m.bips_cubed_per_watt();
                }
            });
            acc
        })
    });

    // The raw batch kernel with the walk factored out: grid-index rows are
    // precomputed, so this is the pure predict-side throughput ceiling.
    let rows = 32_768usize;
    let idx_rows: Vec<usize> =
        space.sample_uar(rows, 11).iter().flat_map(|p| suite[0].grid_indices(p)).collect();
    let mut out = vec![Metrics { bips: 0.0, watts: 0.0 }; rows * Benchmark::ALL.len()];
    group.throughput(Throughput::Elements((rows * Benchmark::ALL.len()) as u64));
    group.bench_function("stacked_batch_kernel_32k_rows", |b| {
        b.iter(|| {
            suite_lanes.predict_metrics_batch(&idx_rows, &mut out);
            out[0].bips
        })
    });
    group.finish();
}

fn bench_space(c: &mut Criterion) {
    let space = DesignSpace::exploration();
    let mut group = c.benchmark_group("design_space");
    group.throughput(Throughput::Elements(space.len()));
    group.bench_function("decode_all_262500", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in space.iter() {
                acc = acc.wrapping_add(p.gpr() as u64);
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fit, bench_predict, bench_compiled_sweep, bench_space
}
criterion_main!(benches);
