//! Criterion benches for the decomposed cycle oracle: cold (direct
//! simulation, no memo), stream resolution (the once-per-sub-config
//! cost), and warm (streamed engine against memoized streams) —
//! instructions/sec tracked the same way the predictor's designs/sec
//! is, so regressions in either half of the decomposition show up
//! independently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use udse_sim::{
    BhtSubConfig, BranchStream, CacheStreams, CacheSubConfig, MachineConfig, Simulator,
    StreamScratch, TracePreflight,
};
use udse_trace::{Benchmark, Trace};

const BENCH_TRACE_LEN: usize = 20_000;

fn bench_sim_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_oracle_20k_insts");
    group.throughput(Throughput::Elements(BENCH_TRACE_LEN as u64));
    let trace = Trace::generate(Benchmark::Twolf, BENCH_TRACE_LEN, 1);
    let cfg = MachineConfig::power4_baseline();
    let sim = Simulator::new(cfg);
    let pre = TracePreflight::of(&trace);

    // Cold: what every simulation cost before the decomposition (and
    // what a memo miss still pays via resolve + streamed run).
    group.bench_with_input(BenchmarkId::from_parameter("cold_direct"), &trace, |bch, t| {
        bch.iter(|| sim.run_with_warmup(t, BENCH_TRACE_LEN / 4))
    });

    // Resolve: the design-invariant work a sub-config pays exactly once.
    group.bench_with_input(BenchmarkId::from_parameter("resolve_streams"), &pre, |bch, p| {
        bch.iter(|| {
            let cache = CacheStreams::resolve(p, &CacheSubConfig::of(&cfg));
            let bht = BranchStream::resolve(p, &BhtSubConfig::of(&cfg));
            (cache.bytes(), bht.bytes())
        })
    });

    // Warm: the steady-state per-design cost once streams are memoized.
    let cache = CacheStreams::resolve(&pre, &CacheSubConfig::of(&cfg));
    let bht = BranchStream::resolve(&pre, &BhtSubConfig::of(&cfg));
    let mut scratch = StreamScratch::new(sim.config());
    group.bench_with_input(BenchmarkId::from_parameter("warm_streamed"), &pre, |bch, p| {
        bch.iter(|| sim.run_streamed_with(p, &cache, &bht, BENCH_TRACE_LEN / 4, &mut scratch))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_sim_oracle
}
criterion_main!(benches);
