//! Cross-process telemetry: worker sidecars, merged multi-process
//! traces, and stall detection.
//!
//! A sharded run is observable only if every worker leaves a telemetry
//! sidecar the parent can read back — and the merged trace is useful
//! only if it is a faithful union of those sidecars, with each worker on
//! a stable pid lane and its clock normalized onto the parent's. These
//! tests drive the real `repro` worker binary, exactly like
//! `parallel_determinism.rs` does for the result path.

use std::path::PathBuf;
use std::time::Duration;

use udse_bench::ShardedOracle;
use udse_core::oracle::SimOracle;
use udse_core::plan::EvalPlan;
use udse_core::space::DesignSpace;
use udse_obs::sidecar;
use udse_obs::trace::{self, worker_pid, WorkerTrace, PARENT_PID};
use udse_trace::Benchmark;

/// Trace enablement is process-global; tests that rely on it must not
/// interleave with ones asserting its absence.
static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const TEST_TRACE_LEN: usize = 2_000;

fn test_plan(jobs: usize, label: &str) -> EvalPlan {
    let space = DesignSpace::paper();
    let work: Vec<_> = (0..jobs)
        .map(|i| (Benchmark::ALL[i % 9], space.decode((i as u64 * 37) % 100).unwrap()))
        .collect();
    EvalPlan::from_jobs(label, work)
}

#[test]
fn workers_leave_sidecars_and_merge_is_their_union() {
    let _guard = serialized();
    // The parent propagates UDSE_TRACE=1 to workers only when tracing is
    // enabled in its own process.
    trace::enable();
    let dir = std::env::temp_dir().join(format!("udse_tel_merge_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let oracle = ShardedOracle::new(
        SimOracle::with_trace_len(TEST_TRACE_LEN),
        3,
        PathBuf::from(env!("CARGO_BIN_EXE_repro")),
        dir.clone(),
        1,
    );
    let plan = test_plan(9, "tel");
    oracle.run_plan(&plan).expect("sharded run succeeds");

    let (sidecars, problems) = sidecar::collect(&dir);
    assert!(problems.is_empty(), "sidecar problems: {problems:?}");
    assert_eq!(sidecars.len(), 3, "one sidecar per worker");

    let mut workers: Vec<WorkerTrace> = Vec::new();
    for (path, doc) in &sidecars {
        let meta = doc.meta.as_ref().unwrap_or_else(|| panic!("{} has no meta", path.display()));
        let summary =
            doc.summary.as_ref().unwrap_or_else(|| panic!("{} has no summary", path.display()));
        let jobs = plan.shard_range(meta.shard_index as usize, 3).len() as u64;
        assert_eq!(meta.jobs, jobs, "{}", path.display());
        assert_eq!(summary.done, jobs, "{}", path.display());
        assert_eq!(summary.dropped_events, 0, "{}", path.display());
        assert!(!doc.heartbeats.is_empty(), "{} has no heartbeats", path.display());
        assert!(!doc.events.is_empty(), "{} has no trace events", path.display());
        workers.push(WorkerTrace {
            lane: meta.shard_index,
            anchor_unix_us: meta.anchor_unix_us,
            events: doc.events.clone(),
        });
    }
    // All three lanes present exactly once.
    let mut lanes: Vec<u64> = workers.iter().map(|w| w.lane).collect();
    lanes.sort_unstable();
    assert_eq!(lanes, vec![0, 1, 2]);

    let parent_anchor = trace::anchor_unix_us();
    let merged = trace::merge_process_traces(&[], parent_anchor, &workers);

    // The merge is a union: every sidecar event appears exactly once, on
    // the pid lane of its shard index, and nothing else appears.
    let total: usize = workers.iter().map(|w| w.events.len()).sum();
    assert_eq!(merged.len(), total);
    for w in &workers {
        let lane_events: Vec<_> = merged.iter().filter(|e| e.pid == worker_pid(w.lane)).collect();
        assert_eq!(lane_events.len(), w.events.len(), "lane {}", w.lane);
        let mut names: Vec<&str> = lane_events.iter().map(|e| e.name.as_str()).collect();
        let mut expect: Vec<&str> = w.events.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        expect.sort_unstable();
        assert_eq!(names, expect, "lane {} event names diverge", w.lane);
    }
    assert!(merged.iter().all(|e| e.pid != PARENT_PID), "no parent events were supplied");

    // Determinism: merging the same inputs twice is bit-identical, and
    // the Chrome document round-trips through the parser with lanes
    // intact.
    assert_eq!(merged, trace::merge_process_traces(&[], parent_anchor, &workers));
    let lane_names: Vec<(u64, String)> =
        workers.iter().map(|w| (worker_pid(w.lane), format!("worker shard {}", w.lane))).collect();
    let doc = trace::chrome_trace_json_named(&merged, &lane_names);
    let back = trace::parse_chrome_trace(&doc.to_string_pretty()).expect("round trip");
    assert_eq!(back.events, merged);
    assert_eq!(back.lanes, lane_names);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lane_assignment_is_stable_across_batches() {
    let _guard = serialized();
    trace::enable();
    let dir = std::env::temp_dir().join(format!("udse_tel_lanes_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let oracle = ShardedOracle::new(
        SimOracle::with_trace_len(TEST_TRACE_LEN),
        2,
        PathBuf::from(env!("CARGO_BIN_EXE_repro")),
        dir.clone(),
        1,
    );
    oracle.run_plan(&test_plan(4, "first")).expect("batch 0");
    oracle.run_plan(&test_plan(4, "second")).expect("batch 1");

    let (sidecars, problems) = sidecar::collect(&dir);
    assert!(problems.is_empty(), "sidecar problems: {problems:?}");
    assert_eq!(sidecars.len(), 4, "two batches x two workers");
    // Lane identity is the shard index, not the OS pid: shard 0 of both
    // batches lands on the same merged-trace lane even though the worker
    // processes differ.
    for (path, doc) in &sidecars {
        let meta = doc.meta.as_ref().expect("meta");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(
            name.contains(&format!("shard-{}of2", meta.shard_index)),
            "{name} vs shard_index {}",
            meta.shard_index
        );
        assert!(worker_pid(meta.shard_index) >= 2);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn sigstopped_worker_is_flagged_as_stalled_not_dead() {
    use std::os::unix::fs::PermissionsExt;
    // A worker that goes silent while still alive (here: SIGSTOPped)
    // must be flagged as a straggler/stall — with its shard named —
    // before its eventual death surfaces through the failure path.
    let dir = std::env::temp_dir().join(format!("udse_tel_stall_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let script = dir.join("stall.sh");
    // The shell stops itself; the background watchdog SIGKILLs it two
    // seconds later (SIGKILL acts on stopped processes) so the test
    // always terminates.
    std::fs::write(&script, "#!/bin/sh\n( sleep 2; kill -9 $$ ) &\nkill -STOP $$\n")
        .expect("write script");
    std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755))
        .expect("make executable");
    let oracle =
        ShardedOracle::new(SimOracle::with_trace_len(TEST_TRACE_LEN), 1, script, dir.clone(), 1)
            .with_stall_after(Duration::from_millis(200));
    let err = oracle.run_plan(&test_plan(1, "stall")).expect_err("worker dies in the end");
    let stalls = oracle.stall_log();
    let _ = std::fs::remove_dir_all(&dir);
    // The stall warning fired while the worker was alive-but-silent...
    assert!(!stalls.is_empty(), "no stall warning recorded");
    assert!(stalls[0].contains("worker 0/1"), "stall: {}", stalls[0]);
    assert!(stalls[0].contains("silent"), "stall: {}", stalls[0]);
    // ...and is distinct from the death report that ended the batch.
    assert!(err.contains("was killed by a signal"), "err: {err}");
}

#[test]
fn healthy_fast_workers_trigger_no_stall_warnings() {
    let _guard = serialized();
    let dir = std::env::temp_dir().join(format!("udse_tel_quiet_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let oracle = ShardedOracle::new(
        SimOracle::with_trace_len(TEST_TRACE_LEN),
        2,
        PathBuf::from(env!("CARGO_BIN_EXE_repro")),
        dir.clone(),
        1,
    );
    oracle.run_plan(&test_plan(4, "quiet")).expect("run succeeds");
    assert!(oracle.stall_log().is_empty(), "stalls: {:?}", oracle.stall_log());
    let _ = std::fs::remove_dir_all(&dir);
}
