//! End-to-end tests of the `udse-inspect` binary: regression gating exit
//! codes and Chrome-trace schema validity.

use std::path::PathBuf;
use std::process::{Command, Output};

use udse_obs::Json;

fn manifest_text(wall: f64, p50: f64) -> String {
    format!(
        r#"{{
  "schema_version": 2,
  "tool": "repro",
  "created_unix_ms": 1,
  "command": ["repro", "--quick", "fig1"],
  "config": {{"quick": true, "seed": 2007}},
  "artifacts": [{{"name": "fig1", "wall_seconds": {wall}}}],
  "metrics": {{"sim.instructions": 40500000}},
  "spans": {{
    "fig1": {{"count": 1, "total_seconds": {wall}, "max_seconds": {wall}}},
    "fig1/train": {{"count": 1, "total_seconds": 2.0, "max_seconds": 2.0}}
  }},
  "quality": {{
    "validation.pooled.bips": {{
      "n": 225, "p50": {p50}, "p90": 0.0525, "max": 0.12,
      "bias": 0.0016, "rmse": 0.03, "r_squared": null
    }}
  }}
}}
"#
    )
}

fn write_fixture(name: &str, text: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("udse_inspect_cli_{}_{name}", std::process::id()));
    std::fs::write(&path, text).expect("fixture written");
    path
}

fn inspect(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_udse-inspect")).args(args).output().expect("udse-inspect runs")
}

#[test]
fn diff_gates_on_quality_and_wall_regressions() {
    let base = write_fixture("base.json", &manifest_text(3.0, 0.016));
    let same = write_fixture("same.json", &manifest_text(3.0, 0.016));
    let slow = write_fixture("slow.json", &manifest_text(9.0, 0.016));
    let bad = write_fixture("bad.json", &manifest_text(3.0, 0.09));

    // Identical fixed-seed runs pass.
    let out = inspect(&["diff", base.to_str().unwrap(), same.to_str().unwrap()]);
    assert!(out.status.success(), "identical runs must pass: {out:?}");

    // Quality beyond tolerance fails with exit code 1.
    let out = inspect(&["diff", base.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "quality regression must gate");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REGRESSION"), "stdout: {text}");

    // A widened tolerance lets the same pair pass. The fixture key is
    // pooled, so its center statistics answer to the pooled budget —
    // widening only the per-benchmark default must NOT unlock it.
    let out =
        inspect(&["diff", base.to_str().unwrap(), bad.to_str().unwrap(), "--tol-quality", "0.2"]);
    assert_eq!(out.status.code(), Some(1), "pooled records ignore the per-benchmark budget");
    let out = inspect(&[
        "diff",
        base.to_str().unwrap(),
        bad.to_str().unwrap(),
        "--tol-quality-pooled",
        "0.2",
    ]);
    assert!(out.status.success(), "pooled tolerance is configurable");

    // Wall-time blowup fails by default but is demotable to a warning.
    let out = inspect(&["diff", base.to_str().unwrap(), slow.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "wall regression must gate");
    let out = inspect(&["diff", base.to_str().unwrap(), slow.to_str().unwrap(), "--warn-wall"]);
    assert!(out.status.success(), "--warn-wall demotes wall regressions");
    assert!(String::from_utf8_lossy(&out.stdout).contains("warning"));

    for p in [base, same, slow, bad] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn diff_reports_missing_files_cleanly() {
    let out = inspect(&["diff", "/nonexistent/a.json", "/nonexistent/b.json"]);
    assert_eq!(out.status.code(), Some(2), "I/O errors are usage errors, not regressions");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("/nonexistent/a.json"), "error names the path: {err}");
}

#[test]
fn show_summarizes_a_manifest() {
    let path = write_fixture("show.json", &manifest_text(3.0, 0.016));
    let out = inspect(&["show", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["tool: repro", "fig1", "validation.pooled.bips", "sim.instructions"] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn trace_emits_perfetto_loadable_json() {
    let path = write_fixture("trace.json", &manifest_text(3.0, 0.016));
    let out = inspect(&["trace", path.to_str().unwrap()]);
    assert!(out.status.success());
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    let arr = doc.as_arr().expect("trace_event documents are arrays");
    assert_eq!(arr.len(), 2, "one event per span path");
    for e in arr {
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert!(e.get("ts").and_then(Json::as_i64).is_some());
        assert!(e.get("dur").and_then(Json::as_i64).is_some());
        assert!(e.get("pid").and_then(Json::as_i64).is_some());
        assert!(e.get("tid").and_then(Json::as_i64).is_some());
    }
    // The nested child starts where its parent starts.
    let parent = arr.iter().find(|e| e.get("name").unwrap().as_str() == Some("fig1")).unwrap();
    let child = arr.iter().find(|e| e.get("name").unwrap().as_str() == Some("fig1/train")).unwrap();
    assert_eq!(parent.get("ts"), child.get("ts"));

    // `-o` writes the file, creating parent directories on demand.
    let out_dir =
        std::env::temp_dir().join(format!("udse_inspect_trace_out_{}", std::process::id()));
    let out_path = out_dir.join("nested/run.trace.json");
    let out = inspect(&["trace", path.to_str().unwrap(), "-o", out_path.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&out_path).expect("written through new directories");
    assert!(Json::parse(&text).is_ok());
    let _ = std::fs::remove_dir_all(out_dir);
    let _ = std::fs::remove_file(path);
}

#[test]
fn trace_folded_emits_flamegraph_stacks() {
    let path = write_fixture("folded.json", &manifest_text(3.0, 0.016));
    let out = inspect(&["trace", path.to_str().unwrap(), "--folded"]);
    assert!(out.status.success(), "{out:?}");
    // Golden output: flamegraph.pl folded format, one `stack count` line
    // per span with nonzero self time, frames joined by ';', sorted.
    // fig1 totals 3.0s with 2.0s in fig1/train -> 1.0s self.
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text, "fig1 1000000\nfig1;train 2000000\n");
    for line in text.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("`stack count` shape");
        assert!(!stack.is_empty() && count.parse::<u64>().is_ok(), "bad line: {line}");
    }

    // `-o` writes the folded file too.
    let out_path = std::env::temp_dir()
        .join(format!("udse_inspect_folded_{}", std::process::id()))
        .join("run.folded");
    let out =
        inspect(&["trace", path.to_str().unwrap(), "--folded", "-o", out_path.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let written = std::fs::read_to_string(&out_path).expect("folded file written");
    assert_eq!(written, "fig1 1000000\nfig1;train 2000000\n");

    // --folded is a manifest-only view.
    let jsonl = write_fixture("folded_events.jsonl", "{}\n");
    let out = inspect(&["trace", jsonl.to_str().unwrap(), "--folded"]);
    assert_eq!(out.status.code(), Some(2), "--folded rejects JSONL input");

    let _ = std::fs::remove_dir_all(out_path.parent().unwrap());
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(jsonl);
}

#[test]
fn trace_round_trips_a_jsonl_event_stream() {
    let jsonl = "{\"name\":\"fit\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":10,\"dur\":90,\"pid\":1,\"tid\":1}\n\
                 {\"name\":\"mark\",\"cat\":\"instant\",\"ph\":\"i\",\"ts\":50,\"s\":\"t\",\"pid\":1,\"tid\":1}\n";
    let path =
        std::env::temp_dir().join(format!("udse_inspect_cli_{}_events.jsonl", std::process::id()));
    std::fs::write(&path, jsonl).expect("fixture");
    let out = inspect(&["trace", path.to_str().unwrap()]);
    assert!(out.status.success(), "{out:?}");
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    let arr = doc.as_arr().expect("array");
    assert_eq!(arr.len(), 2);
    assert_eq!(arr[1].get("ph").and_then(Json::as_str), Some("i"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn usage_errors_exit_2() {
    assert_eq!(inspect(&[]).status.code(), Some(2));
    assert_eq!(inspect(&["bogus"]).status.code(), Some(2));
    assert_eq!(inspect(&["diff", "only-one.json"]).status.code(), Some(2));
    assert_eq!(inspect(&["diff", "a", "b", "--tol-wall", "not-a-number"]).status.code(), Some(2));
}
