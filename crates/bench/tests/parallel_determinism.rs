//! Determinism under parallelism: the whole sim→fit→validate pipeline
//! must produce bitwise-identical results whether the work pool runs one
//! worker (`repro --jobs 1`, today's sequential behavior) or many
//! (`--jobs 4`). Every simulation is a pure function of its inputs and
//! the pool reassembles results in input order, so nothing downstream —
//! training samples, fitted coefficients, quality telemetry — may depend
//! on the worker count.

use std::path::PathBuf;

use udse_bench::{GroundTruth, ShardedOracle};
use udse_core::oracle::{CachedOracle, Metrics, Oracle, SimOracle};
use udse_core::plan::EvalPlan;
use udse_core::space::{DesignPoint, DesignSpace};
use udse_core::studies::heterogeneity::BenchmarkArchitectures;
use udse_core::studies::validation::ValidationStudy;
use udse_core::studies::{pareto, StudyConfig, TrainedSuite};
use udse_core::Engine;
use udse_obs::QualityRecord;
use udse_trace::Benchmark;

/// The worker cap is process-global, so tests that flip it must not
/// interleave; each takes this lock first.
static POOL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Small-but-real pipeline configuration: actual cycle simulations, just
/// fewer and shorter than a `--quick` run.
fn test_config() -> StudyConfig {
    StudyConfig { train_samples: 120, validation_samples: 15, ..StudyConfig::quick() }
}

const TEST_TRACE_LEN: usize = 2_000;

/// Everything the manifest quality section would see from one pipeline
/// pass: fitted coefficients, study medians, quality records.
type PipelineOutput = (Vec<Vec<f64>>, Vec<(f64, f64)>, Vec<QualityRecord>);

/// One full pipeline pass at a given worker count: train the nine model
/// pairs on the simulator, validate them, and capture everything the
/// manifest quality section would see.
fn run_pipeline(jobs: usize) -> PipelineOutput {
    udse_obs::pool::set_max_workers(jobs);
    run_pipeline_on(GroundTruth::Local(SimOracle::with_trace_len(TEST_TRACE_LEN)))
}

/// The same pipeline pass over an arbitrary ground truth (in-process or
/// sharded to worker processes).
fn run_pipeline_on(ground_truth: GroundTruth) -> PipelineOutput {
    let oracle = CachedOracle::new(ground_truth);
    let config = test_config();
    let suite = TrainedSuite::train(&oracle, &config).expect("models fit");
    let engine = Engine::new(suite.clone(), &config);
    let study = ValidationStudy::run(&oracle, &engine, &config);
    let coefficients: Vec<Vec<f64>> = suite
        .all_models()
        .iter()
        .flat_map(|m| {
            [m.performance_model().coefficients().to_vec(), m.power_model().coefficients().to_vec()]
        })
        .collect();
    let medians = vec![(study.overall_performance_median, study.overall_power_median)];
    (coefficients, medians, udse_obs::quality::global().snapshot())
}

#[test]
fn jobs_1_and_jobs_4_produce_identical_results() {
    let _guard = serialized();
    let (coef_seq, med_seq, quality_seq) = run_pipeline(1);
    let (coef_par, med_par, quality_par) = run_pipeline(4);
    udse_obs::pool::set_max_workers(1);

    // Fitted coefficients: bitwise identical, every model, every term.
    assert_eq!(coef_seq.len(), coef_par.len());
    for (i, (s, p)) in coef_seq.iter().zip(&coef_par).enumerate() {
        assert_eq!(s, p, "model {i} coefficients diverge between --jobs 1 and --jobs 4");
    }

    // Study-level medians: bitwise identical.
    assert_eq!(med_seq, med_par);

    // The manifest quality section (per-benchmark + pooled records):
    // bitwise identical stats for every key.
    assert_eq!(quality_seq.len(), quality_par.len());
    for (s, p) in quality_seq.iter().zip(&quality_par) {
        assert_eq!(s.key, p.key);
        assert_eq!(s.n, p.n, "key {}", s.key);
        assert_eq!(s.p50.to_bits(), p.p50.to_bits(), "key {}", s.key);
        assert_eq!(s.p90.to_bits(), p.p90.to_bits(), "key {}", s.key);
        assert_eq!(s.max.to_bits(), p.max.to_bits(), "key {}", s.key);
        assert_eq!(s.bias.to_bits(), p.bias.to_bits(), "key {}", s.key);
        assert_eq!(s.rmse.to_bits(), p.rmse.to_bits(), "key {}", s.key);
    }
}

#[test]
fn training_samples_do_not_depend_on_worker_count() {
    let _guard = serialized();
    udse_obs::pool::set_max_workers(4);
    let oracle = SimOracle::with_trace_len(TEST_TRACE_LEN);
    let suite_par = TrainedSuite::train(&oracle, &test_config()).expect("fit");
    udse_obs::pool::set_max_workers(1);
    let suite_seq = TrainedSuite::train(&oracle, &test_config()).expect("fit");
    assert_eq!(suite_seq.training_samples(), suite_par.training_samples());
}

#[test]
fn evaluate_many_is_order_deterministic_through_the_cache() {
    // A CachedOracle batch that mixes repeats and fresh points must give
    // the exact metrics sequential evaluation gives, at any worker count.
    let _guard = serialized();
    let space = DesignSpace::paper();
    let jobs: Vec<(Benchmark, _)> = (0..40)
        .map(|i| (Benchmark::ALL[i % 9], space.decode((i as u64 * 911) % 100).unwrap()))
        .collect();
    let reference = SimOracle::with_trace_len(TEST_TRACE_LEN);
    udse_obs::pool::set_max_workers(1);
    let sequential: Vec<Metrics> = jobs.iter().map(|(b, p)| reference.evaluate(*b, p)).collect();
    for workers in [1usize, 4] {
        udse_obs::pool::set_max_workers(workers);
        let oracle = CachedOracle::new(SimOracle::with_trace_len(TEST_TRACE_LEN));
        assert_eq!(oracle.evaluate_many(&jobs), sequential, "workers = {workers}");
        // Second pass is all hits and still identical.
        assert_eq!(oracle.evaluate_many(&jobs), sequential, "cached, workers = {workers}");
    }
    udse_obs::pool::set_max_workers(1);
}

#[test]
fn chunk_parallel_sweeps_match_sequential_bitwise() {
    // The compiled grid sweeps (characterization, per-benchmark optima)
    // fan out in contiguous chunks whose boundaries depend on the worker
    // count; results must still be bitwise identical because chunks
    // concatenate in range order and the argmax tie-break replicates a
    // sequential last-max-wins scan.
    struct Smooth;
    impl Oracle for Smooth {
        fn evaluate(&self, _b: udse_trace::Benchmark, p: &DesignPoint) -> Metrics {
            let v = p.predictors();
            Metrics {
                bips: (9.0 / v[0]) * (1.0 + 0.15 * v[1].ln()) + 0.03 * v[5],
                watts: 3.0 + 50.0 / v[0] + 1.1 * v[1] + 0.4 * v[6],
            }
        }
    }

    let _guard = serialized();
    // A stride coprime to neither chunk size forces uneven chunk
    // boundaries between worker counts.
    let config = StudyConfig { eval_stride: 7, ..StudyConfig::quick() };
    udse_obs::pool::set_max_workers(1);
    let suite = TrainedSuite::train(&Smooth, &config).expect("smooth fit");

    // Fresh engines per worker count so each memoized sweep actually
    // runs under that count.
    let engine_seq = Engine::new(suite.clone(), &config);
    let char_seq = pareto::characterize(&engine_seq, Benchmark::Gzip);
    let optima_seq = BenchmarkArchitectures::find(&engine_seq);
    udse_obs::pool::set_max_workers(4);
    let engine_par = Engine::new(suite, &config);
    let char_par = pareto::characterize(&engine_par, Benchmark::Gzip);
    let optima_par = BenchmarkArchitectures::find(&engine_par);
    udse_obs::pool::set_max_workers(1);

    assert_eq!(char_seq.designs.len(), char_par.designs.len());
    for (s, p) in char_seq.designs.iter().zip(&char_par.designs) {
        assert_eq!(s.point, p.point, "sweep order diverges between worker counts");
        assert_eq!(s.predicted.bips.to_bits(), p.predicted.bips.to_bits());
        assert_eq!(s.predicted.watts.to_bits(), p.predicted.watts.to_bits());
    }
    assert_eq!(char_seq.clusters, char_par.clusters);
    assert_eq!(optima_seq.optima, optima_par.optima, "per-benchmark optima diverge");
}

/// A ground truth forking the real `repro` binary, writing its plan and
/// shard files under a process-unique temp directory.
fn sharded_ground_truth(shards: usize, tag: &str) -> (GroundTruth, PathBuf) {
    let dir = std::env::temp_dir().join(format!("udse_det_{tag}_{}", std::process::id()));
    let oracle = ShardedOracle::new(
        SimOracle::with_trace_len(TEST_TRACE_LEN),
        shards,
        PathBuf::from(env!("CARGO_BIN_EXE_repro")),
        dir.clone(),
        1,
    );
    (GroundTruth::Sharded(oracle), dir)
}

#[test]
fn sharded_pipeline_is_bitwise_identical_to_in_process() {
    // The tentpole determinism claim: `--shards 1` and `--shards 3`
    // (multi-process, contiguous plan slices, JSON round trip) produce
    // exactly the coefficients, medians, and quality telemetry of the
    // in-process `--jobs` path.
    let _guard = serialized();
    udse_obs::pool::set_max_workers(1);
    let (coef_jobs, med_jobs, quality_jobs) = run_pipeline(1);
    let (gt1, dir1) = sharded_ground_truth(1, "s1");
    let (coef_s1, med_s1, _) = run_pipeline_on(gt1);
    let (gt3, dir3) = sharded_ground_truth(3, "s3");
    let (coef_s3, med_s3, quality_s3) = run_pipeline_on(gt3);
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir3);

    assert_eq!(coef_jobs.len(), coef_s1.len());
    assert_eq!(coef_jobs.len(), coef_s3.len());
    for (i, ((j, s1), s3)) in coef_jobs.iter().zip(&coef_s1).zip(&coef_s3).enumerate() {
        assert_eq!(j, s1, "model {i} coefficients diverge between --jobs and --shards 1");
        assert_eq!(j, s3, "model {i} coefficients diverge between --jobs and --shards 3");
    }
    assert_eq!(med_jobs, med_s1);
    assert_eq!(med_jobs, med_s3);
    assert_eq!(quality_jobs.len(), quality_s3.len());
    for (j, s) in quality_jobs.iter().zip(&quality_s3) {
        assert_eq!(j.key, s.key);
        assert_eq!(j.p50.to_bits(), s.p50.to_bits(), "key {}", j.key);
        assert_eq!(j.p90.to_bits(), s.p90.to_bits(), "key {}", j.key);
        assert_eq!(j.max.to_bits(), s.max.to_bits(), "key {}", j.key);
        assert_eq!(j.bias.to_bits(), s.bias.to_bits(), "key {}", j.key);
        assert_eq!(j.rmse.to_bits(), s.rmse.to_bits(), "key {}", j.key);
    }
}

#[test]
fn failed_worker_names_shard_and_retry_command() {
    // A worker that exits non-zero without writing its shard must fail
    // the batch with the shard named and the exact retry command.
    let dir = std::env::temp_dir().join(format!("udse_det_fail_{}", std::process::id()));
    let oracle = ShardedOracle::new(
        SimOracle::with_trace_len(TEST_TRACE_LEN),
        2,
        PathBuf::from("/bin/false"),
        dir.clone(),
        1,
    );
    let p = DesignSpace::paper().decode(0).unwrap();
    let plan = EvalPlan::from_jobs("t", vec![(Benchmark::Ammp, p), (Benchmark::Gcc, p)]);
    let err = oracle.run_plan(&plan).expect_err("worker exits 1");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(err.contains("worker 0/2 exited with status 1"), "err: {err}");
    assert!(err.contains("retry with"), "err: {err}");
    assert!(err.contains("--shard 0/2"), "err: {err}");
}

#[cfg(unix)]
#[test]
fn killed_worker_is_detected_as_signal_death() {
    // A worker killed mid-flight (here: SIGKILLing itself) leaves no
    // shard file and no exit code; the parent must report the signal
    // death, not a confusing missing-file error.
    use std::os::unix::fs::PermissionsExt;
    let dir = std::env::temp_dir().join(format!("udse_det_kill_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let script = dir.join("kill-self.sh");
    std::fs::write(&script, "#!/bin/sh\nkill -9 $$\n").expect("write script");
    std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755))
        .expect("make executable");
    let oracle =
        ShardedOracle::new(SimOracle::with_trace_len(TEST_TRACE_LEN), 1, script, dir.clone(), 1);
    let p = DesignSpace::paper().decode(1).unwrap();
    let plan = EvalPlan::from_jobs("t", vec![(Benchmark::Mcf, p)]);
    let err = oracle.run_plan(&plan).expect_err("worker killed");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(err.contains("was killed by a signal"), "err: {err}");
    assert!(err.contains("worker 0/1"), "err: {err}");
    assert!(err.contains("retry with"), "err: {err}");
}

#[test]
fn pipeline_types_are_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimOracle>();
    assert_send_sync::<CachedOracle<SimOracle>>();
    assert_send_sync::<TrainedSuite>();
    assert_send_sync::<udse_trace::Trace>();
    assert_send_sync::<udse_sim::Simulator>();
    assert_send_sync::<udse_bench::Context>();
    assert_send_sync::<GroundTruth>();
}
