//! Determinism of the unified query engine: answers must be
//! bitwise-identical across worker counts (the fused scans fan out in
//! worker-count-dependent chunks), across cold and warm LRU states, and
//! against a sequential single-threaded reference computed without the
//! engine. The canonical-bytes form is what `repro query` prints and
//! what the CI smoke diff compares, so every equality here is on the
//! serialized document or on raw bit patterns, never on tolerances.
//!
//! (Study-level regression vs the committed baseline manifest is gated
//! separately: `scripts/ci.sh` diffs a fresh bench manifest against
//! `baselines/BENCH_*.json` with zero tolerance on the quality section.)

use udse_core::oracle::{Metrics, Oracle};
use udse_core::query::{Axis, Constraint, Engine, Query};
use udse_core::space::{DesignPoint, DesignSpace};
use udse_core::studies::depth::DepthStudy;
use udse_core::studies::{strided_points, StudyConfig, TrainedSuite};
use udse_trace::Benchmark;

/// The worker cap is process-global, so tests that flip it must not
/// interleave; each takes this lock first.
static POOL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A smooth analytic oracle: cheap enough to fit in-test, rich enough
/// that optima and frontiers are non-degenerate.
struct Smooth;
impl Oracle for Smooth {
    fn evaluate(&self, b: Benchmark, p: &DesignPoint) -> Metrics {
        let v = p.predictors();
        let tilt = 1.0 + 0.05 * b.id() as f64;
        Metrics {
            bips: (9.0 / v[0]) * (1.0 + 0.15 * v[1].ln()) + 0.03 * tilt * v[5],
            watts: 3.0 + 50.0 / v[0] + 1.1 * v[1] + 0.4 * v[6],
        }
    }
}

/// A stride that divides chunk boundaries unevenly between worker
/// counts, so chunk-merge order actually differs.
fn test_config() -> StudyConfig {
    StudyConfig { eval_stride: 7, ..StudyConfig::quick() }
}

fn trained_suite(config: &StudyConfig) -> TrainedSuite {
    TrainedSuite::train(&Smooth, config).expect("smooth fit")
}

/// Every query shape the engine answers, in one list.
fn query_menu(stride: usize) -> Vec<Query> {
    let space = DesignSpace::exploration();
    let a = space.decode(0).expect("index 0");
    let b = space.decode(space.len() / 2).expect("midpoint");
    vec![
        Query::point(Benchmark::Mcf, a),
        Query::optimum(None, vec![], stride),
        Query::optimum(
            Some(Benchmark::Jbb),
            vec![Constraint::at_most(Axis::Dl1Kb, 64.0), Constraint::at_least(Axis::Width, 4.0)],
            stride,
        ),
        Query::suite_optimum(
            vec![1.0, 0.9, 1.1, 0.8, 1.2, 1.0, 0.7, 1.3, 1.0],
            vec![Constraint::exactly(Axis::DepthFo4, 18.0)],
            stride,
        ),
        Query::pareto(Benchmark::Ammp, vec![Constraint::at_most(Axis::L2Kb, 2048.0)], stride, 40),
        Query::top_k(Benchmark::Gzip, vec![], stride, 12),
        Query::what_if(Benchmark::Twolf, a, b),
        Query::axis_sweep(Benchmark::Equake, a, Axis::L2Kb),
    ]
}

#[test]
fn query_answers_are_identical_across_worker_counts() {
    let _guard = serialized();
    let config = test_config();
    udse_obs::pool::set_max_workers(1);
    let suite = trained_suite(&config);

    // Fresh engines per worker count so every memoized sweep and every
    // fused scan actually runs under that count.
    let engine_seq = Engine::new(suite.clone(), &config);
    let answers_seq: Vec<String> = query_menu(config.eval_stride)
        .iter()
        .map(|q| engine_seq.execute(q).expect("query runs").to_json().to_string_pretty())
        .collect();
    udse_obs::pool::set_max_workers(4);
    let engine_par = Engine::new(suite, &config);
    let answers_par: Vec<String> = query_menu(config.eval_stride)
        .iter()
        .map(|q| engine_par.execute(q).expect("query runs").to_json().to_string_pretty())
        .collect();
    udse_obs::pool::set_max_workers(1);

    for ((q, s), p) in query_menu(config.eval_stride).iter().zip(&answers_seq).zip(&answers_par) {
        assert_eq!(s, p, "answer bytes diverge between --jobs 1 and --jobs 4 for {q:?}");
    }
}

#[test]
fn warm_cache_replays_the_cold_answer_bitwise() {
    let _guard = serialized();
    let config = test_config();
    udse_obs::pool::set_max_workers(1);
    let engine = Engine::new(trained_suite(&config), &config);
    let hits = udse_obs::metrics::counter("query.cache.hits");
    let misses = udse_obs::metrics::counter("query.cache.misses");

    for q in query_menu(config.eval_stride) {
        let m0 = misses.get();
        // A cold run misses at least once (per-benchmark optima delegate
        // to the all-benchmark query, which is its own cache entry).
        let cold = engine.execute(&q).expect("cold run");
        assert!(misses.get() > m0, "cold run of {q:?} must miss");
        let (h1, m1) = (hits.get(), misses.get());
        let warm = engine.execute(&q).expect("warm run");
        assert_eq!(hits.get(), h1 + 1, "warm run of {q:?} must hit exactly once");
        assert_eq!(misses.get(), m1, "warm run of {q:?} must not miss");
        // The cache returns the very same materialized result, so the
        // canonical bytes are trivially identical — assert both layers.
        assert!(std::sync::Arc::ptr_eq(&cold, &warm), "warm {q:?} rebuilt instead of reusing");
        assert_eq!(
            cold.to_json().to_string_pretty(),
            warm.to_json().to_string_pretty(),
            "warm bytes diverge for {q:?}"
        );
    }
}

#[test]
fn engine_optimum_matches_a_sequential_no_engine_reference() {
    // The constrained-optimum path must reproduce what a plain
    // sequential scan over the strided exploration space finds with the
    // uncompiled models — same winner, same score bits.
    let _guard = serialized();
    let config = test_config();
    udse_obs::pool::set_max_workers(1);
    let suite = trained_suite(&config);
    let engine = Engine::new(suite.clone(), &config);
    let space = DesignSpace::exploration();

    let result = engine.execute(&Query::optimum(None, vec![], config.eval_stride)).expect("optima");
    let entries = result.optima().expect("optima entries");
    assert_eq!(entries.len(), 9);
    for (b, entry) in Benchmark::ALL.iter().zip(entries) {
        let compiled = suite.models(*b).compile(&space);
        let reference = strided_points(&space, config.eval_stride)
            .max_by(|x, y| {
                compiled.predict_efficiency(x).total_cmp(&compiled.predict_efficiency(y))
            })
            .expect("non-empty space");
        assert_eq!(entry.point, reference, "winner diverges for {}", b.name());
        assert_eq!(
            entry.score.to_bits(),
            compiled.predict_efficiency(&reference).to_bits(),
            "score diverges for {}",
            b.name()
        );
    }
}

#[test]
fn depth_study_is_identical_across_worker_counts() {
    // The depth study is the engine's heaviest client (full-sweep
    // bucketing plus seven constrained suite-relative bound queries);
    // every derived number must survive a worker-count change bitwise.
    let _guard = serialized();
    let config = test_config();
    udse_obs::pool::set_max_workers(1);
    let suite = trained_suite(&config);

    let study_seq = DepthStudy::run(&Engine::new(suite.clone(), &config));
    udse_obs::pool::set_max_workers(4);
    let study_par = DepthStudy::run(&Engine::new(suite, &config));
    udse_obs::pool::set_max_workers(1);

    assert_eq!(study_seq.depths, study_par.depths);
    assert_eq!(study_seq.original_points, study_par.original_points);
    assert_eq!(study_seq.bound_points, study_par.bound_points);
    assert_eq!(study_seq.enhanced_boxplots, study_par.enhanced_boxplots);
    assert_eq!(study_seq.dcache_top_percentile, study_par.dcache_top_percentile);
    for (s, p) in study_seq.original_relative.iter().zip(&study_par.original_relative) {
        assert_eq!(s.to_bits(), p.to_bits(), "original_relative diverges");
    }
    for (s, p) in study_seq.bound_relative.iter().zip(&study_par.bound_relative) {
        assert_eq!(s.to_bits(), p.to_bits(), "bound_relative diverges");
    }
    for (s, p) in study_seq.fraction_above_original.iter().zip(&study_par.fraction_above_original) {
        assert_eq!(s.to_bits(), p.to_bits(), "fraction_above_original diverges");
    }
}
