//! CSV export of the experiment series, for external plotting.
//!
//! `repro --csv <dir> <artifact>...` writes one CSV per requested
//! data-bearing artifact alongside the text output. Columns carry raw
//! (unrounded where meaningful) values so plots can be regenerated
//! without re-running the studies.

use std::io;
use std::path::{Path, PathBuf};

use udse_core::report::write_csv;
use udse_core::studies::heterogeneity::{predicted_gains, simulated_gains, BenchmarkArchitectures};
use udse_core::studies::pareto::{efficiency_optimum, FrontierStudy};
use udse_core::studies::validation::ValidationStudy;
use udse_trace::Benchmark;

use crate::context::Context;

fn f(v: f64) -> String {
    format!("{v:.6}")
}

/// Writes the CSV for one artifact into `dir`; returns the path, or
/// `None` when the artifact has no tabular series (e.g. `baseline`).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export(ctx: &Context, artifact: &str, dir: &Path) -> io::Result<Option<PathBuf>> {
    let path = dir.join(format!("{artifact}.csv"));
    match artifact {
        "fig1" => {
            let engine = ctx.engine();
            let study = ValidationStudy::run(ctx.oracle(), &engine, ctx.config());
            let rows: Vec<Vec<String>> = study
                .per_benchmark
                .iter()
                .map(|bv| {
                    vec![
                        bv.benchmark.name().to_string(),
                        f(bv.performance.median()),
                        f(bv.performance.boxplot.q1),
                        f(bv.performance.boxplot.q3),
                        f(bv.power.median()),
                        f(bv.power.boxplot.q1),
                        f(bv.power.boxplot.q3),
                    ]
                })
                .collect();
            write_csv(
                &path,
                &["bench", "perf_median", "perf_q1", "perf_q3", "pow_median", "pow_q1", "pow_q3"],
                &rows,
            )?;
        }
        "fig3" => {
            let engine = ctx.engine();
            let mut rows = Vec::new();
            for b in [Benchmark::Ammp, Benchmark::Mcf, Benchmark::Mesa, Benchmark::Jbb] {
                let fs = FrontierStudy::run(ctx.oracle(), &engine, b, ctx.config());
                for (p, s) in fs.predicted.iter().zip(&fs.simulated) {
                    rows.push(vec![
                        b.name().to_string(),
                        f(p.delay_seconds()),
                        f(p.watts),
                        f(s.delay_seconds()),
                        f(s.watts),
                    ]);
                }
            }
            write_csv(
                &path,
                &["bench", "delay_pred", "power_pred", "delay_sim", "power_sim"],
                &rows,
            )?;
        }
        "table2" => {
            let engine = ctx.engine();
            let mut rows = Vec::new();
            for b in Benchmark::ALL {
                let opt = efficiency_optimum(ctx.oracle(), &engine, b, ctx.config());
                rows.push(vec![
                    b.name().to_string(),
                    opt.point.fo4().to_string(),
                    opt.point.decode_width().to_string(),
                    opt.point.gpr().to_string(),
                    opt.point.il1_kb().to_string(),
                    opt.point.dl1_kb().to_string(),
                    opt.point.l2_kb().to_string(),
                    f(opt.predicted.delay_seconds()),
                    f(opt.delay_error()),
                    f(opt.predicted.watts),
                    f(opt.power_error()),
                ]);
            }
            write_csv(
                &path,
                &[
                    "bench",
                    "fo4",
                    "width",
                    "gpr",
                    "il1_kb",
                    "dl1_kb",
                    "l2_kb",
                    "delay_pred",
                    "delay_err",
                    "power_pred",
                    "power_err",
                ],
                &rows,
            )?;
        }
        "fig5a" => {
            let study = ctx.depth_study();
            let rows: Vec<Vec<String>> = study
                .depths
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    let bp = &study.enhanced_boxplots[i];
                    vec![
                        d.to_string(),
                        f(study.original_relative[i]),
                        f(bp.lower_whisker),
                        f(bp.q1),
                        f(bp.median),
                        f(bp.q3),
                        f(bp.upper_whisker),
                        f(bp.max),
                        f(study.bound_relative[i]),
                        f(study.fraction_above_original[i]),
                    ]
                })
                .collect();
            write_csv(
                &path,
                &[
                    "fo4",
                    "orig_line",
                    "whisk_lo",
                    "q1",
                    "median",
                    "q3",
                    "whisk_hi",
                    "bound",
                    "bound_rel",
                    "frac_above_orig",
                ],
                &rows,
            )?;
        }
        "fig5b" => {
            let study = ctx.depth_study();
            let mut rows = Vec::new();
            for (i, &d) in study.depths.iter().enumerate() {
                let h = &study.dcache_top_percentile[i];
                for kb in [8u64, 16, 32, 64, 128] {
                    rows.push(vec![d.to_string(), kb.to_string(), f(h.fraction(kb))]);
                }
            }
            write_csv(&path, &["fo4", "dl1_kb", "fraction"], &rows)?;
        }
        "fig9" => {
            let suite = ctx.suite();
            let optima = BenchmarkArchitectures::find(&ctx.engine());
            let gp = predicted_gains(&suite, &optima, 64);
            let gs = simulated_gains(ctx.oracle(), &suite, &optima, 64);
            let mut rows = Vec::new();
            for (i, &k) in gp.k_values.iter().enumerate() {
                for b in Benchmark::ALL {
                    rows.push(vec![
                        k.to_string(),
                        b.name().to_string(),
                        f(gp.gains[i][b.id() as usize]),
                        f(gs.gains[i][b.id() as usize]),
                    ]);
                }
            }
            write_csv(&path, &["k", "bench", "gain_pred", "gain_sim"], &rows)?;
        }
        _ => return Ok(None),
    }
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_writes_depth_csv() {
        let ctx = Context::new(true);
        let dir = std::env::temp_dir().join("udse_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = export(&ctx, "fig5a", &dir).unwrap().expect("fig5a has a series");
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.starts_with("fo4,"));
        assert_eq!(text.lines().count(), 8); // header + 7 depths
        let none = export(&ctx, "baseline", &dir).unwrap();
        assert!(none.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
