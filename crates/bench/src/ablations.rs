//! Ablation studies for the modeling choices the paper motivates in §3:
//! spline knot counts, interaction terms, response transforms, and
//! training sample size.
//!
//! Each ablation trains model variants on a shared simulated sample and
//! reports the median validation error, quantifying how much each §3
//! design decision contributes to accuracy.

use udse_core::model::design_dataset;
use udse_core::oracle::{Metrics, Oracle};
use udse_core::report::{fmt, format_table};
use udse_core::space::{DesignPoint, DesignSpace};
use udse_regress::{ModelSpec, ResponseTransform, TermSpec};
use udse_stats::median_abs_rel_error;
use udse_trace::Benchmark;

use crate::context::Context;

/// Benchmarks used for ablations: one ILP-bound, one memory-bound, one
/// branchy integer — the three behavioural extremes.
const ABLATION_BENCHES: [Benchmark; 3] = [Benchmark::Ammp, Benchmark::Mcf, Benchmark::Gzip];

/// Predictor indices (see `DesignPoint::predictors`).
const DEPTH: usize = 0;
const WIDTH: usize = 1;
const GPR: usize = 2;
const RESV: usize = 3;
const IL1: usize = 4;
const DL1: usize = 5;
const L2: usize = 6;

fn spline_terms(strong_knots: usize, weak_knots: usize) -> Vec<TermSpec> {
    vec![
        TermSpec::Spline { var: DEPTH, knots: strong_knots },
        TermSpec::Spline { var: WIDTH, knots: weak_knots },
        TermSpec::Spline { var: GPR, knots: strong_knots },
        TermSpec::Spline { var: RESV, knots: weak_knots },
        TermSpec::Spline { var: IL1, knots: weak_knots },
        TermSpec::Spline { var: DL1, knots: weak_knots },
        TermSpec::Spline { var: L2, knots: weak_knots },
    ]
}

fn linear_terms() -> Vec<TermSpec> {
    (0..7).map(TermSpec::Linear).collect()
}

fn interaction_terms() -> Vec<TermSpec> {
    vec![
        TermSpec::Interaction(DEPTH, L2),
        TermSpec::Interaction(DEPTH, DL1),
        TermSpec::Interaction(WIDTH, GPR),
        TermSpec::Interaction(WIDTH, RESV),
        TermSpec::Interaction(IL1, L2),
        TermSpec::Interaction(DL1, L2),
    ]
}

/// Observations shared by all model variants of one ablation run.
struct SharedData {
    train: Vec<DesignPoint>,
    train_metrics: Vec<Vec<Metrics>>, // [bench][sample]
    valid: Vec<DesignPoint>,
    valid_metrics: Vec<Vec<Metrics>>,
}

fn gather(ctx: &Context, train_n: usize, valid_n: usize) -> SharedData {
    let space = DesignSpace::paper();
    let train = space.sample_uar(train_n, ctx.config().seed);
    let valid = space.sample_uar(valid_n, ctx.config().seed ^ 0xAB1A);
    let eval = |pts: &[DesignPoint]| -> Vec<Vec<Metrics>> {
        ABLATION_BENCHES
            .iter()
            .map(|&b| pts.iter().map(|p| ctx.oracle().evaluate(b, p)).collect())
            .collect()
    };
    let train_metrics = eval(&train);
    let valid_metrics = eval(&valid);
    SharedData { train, train_metrics, valid, valid_metrics }
}

/// Median validation errors (perf, power) of a spec pair on one
/// benchmark's shared data.
fn variant_error(
    data: &SharedData,
    bench_idx: usize,
    perf_spec: &ModelSpec,
    power_spec: &ModelSpec,
) -> (f64, f64) {
    let train_ds = design_dataset(&data.train).expect("non-empty training sample");
    let bips: Vec<f64> = data.train_metrics[bench_idx].iter().map(|m| m.bips).collect();
    let watts: Vec<f64> = data.train_metrics[bench_idx].iter().map(|m| m.watts).collect();
    let perf = perf_spec.fit(&train_ds, &bips).expect("perf variant fits");
    let power = power_spec.fit(&train_ds, &watts).expect("power variant fits");
    let rows: Vec<Vec<f64>> = data.valid.iter().map(DesignPoint::predictors).collect();
    let pred_b = perf.predict_rows(&rows).expect("valid rows");
    let pred_w = power.predict_rows(&rows).expect("valid rows");
    let obs_b: Vec<f64> = data.valid_metrics[bench_idx].iter().map(|m| m.bips).collect();
    let obs_w: Vec<f64> = data.valid_metrics[bench_idx].iter().map(|m| m.watts).collect();
    (median_abs_rel_error(&obs_b, &pred_b), median_abs_rel_error(&obs_w, &pred_w))
}

fn run_variants(ctx: &Context, variants: &[(&str, ModelSpec, ModelSpec)]) -> String {
    let cfg = ctx.config();
    let data = gather(ctx, cfg.train_samples, cfg.validation_samples);
    let mut rows = Vec::new();
    for (name, perf_spec, power_spec) in variants {
        for (bi, b) in ABLATION_BENCHES.iter().enumerate() {
            let (pe, we) = variant_error(&data, bi, perf_spec, power_spec);
            rows.push(vec![
                name.to_string(),
                b.name().to_string(),
                fmt(pe * 100.0, 1),
                fmt(we * 100.0, 1),
            ]);
        }
    }
    format_table(&["variant", "bench", "perf_med_err%", "pow_med_err%"], &rows)
}

/// Ablation: spline knot count (linear-only / 3 / paper's 3-4 mix / 5).
pub fn knots(ctx: &Context) -> String {
    let with_inter = |terms: Vec<TermSpec>| {
        let mut t = terms;
        t.extend(interaction_terms());
        t
    };
    let variants = vec![
        (
            "linear",
            ModelSpec::new(ResponseTransform::Sqrt).with_terms(with_inter(linear_terms())),
            ModelSpec::new(ResponseTransform::Log).with_terms(with_inter(linear_terms())),
        ),
        (
            "rcs3",
            ModelSpec::new(ResponseTransform::Sqrt).with_terms(with_inter(spline_terms(3, 3))),
            ModelSpec::new(ResponseTransform::Log).with_terms(with_inter(spline_terms(3, 3))),
        ),
        (
            "rcs4/3(paper)",
            ModelSpec::new(ResponseTransform::Sqrt).with_terms(with_inter(spline_terms(4, 3))),
            ModelSpec::new(ResponseTransform::Log).with_terms(with_inter(spline_terms(4, 3))),
        ),
        (
            "rcs5",
            ModelSpec::new(ResponseTransform::Sqrt).with_terms(with_inter(spline_terms(5, 5))),
            ModelSpec::new(ResponseTransform::Log).with_terms(with_inter(spline_terms(5, 5))),
        ),
    ];
    format!(
        "Ablation: spline knot count (median validation error)\n\n{}",
        run_variants(ctx, &variants)
    )
}

/// Ablation: with vs without the §3.2 interaction terms.
pub fn interactions(ctx: &Context) -> String {
    let base = spline_terms(4, 3);
    let mut with = base.clone();
    with.extend(interaction_terms());
    let variants = vec![
        (
            "no-interactions",
            ModelSpec::new(ResponseTransform::Sqrt).with_terms(base.clone()),
            ModelSpec::new(ResponseTransform::Log).with_terms(base.clone()),
        ),
        (
            "paper",
            ModelSpec::new(ResponseTransform::Sqrt).with_terms(with.clone()),
            ModelSpec::new(ResponseTransform::Log).with_terms(with.clone()),
        ),
    ];
    format!(
        "Ablation: predictor interactions (median validation error)\n\n{}",
        run_variants(ctx, &variants)
    )
}

/// Ablation: response transforms (identity vs the paper's sqrt/log).
pub fn transforms(ctx: &Context) -> String {
    let mut terms = spline_terms(4, 3);
    terms.extend(interaction_terms());
    let variants = vec![
        (
            "identity",
            ModelSpec::new(ResponseTransform::Identity).with_terms(terms.clone()),
            ModelSpec::new(ResponseTransform::Identity).with_terms(terms.clone()),
        ),
        (
            "sqrt/log(paper)",
            ModelSpec::new(ResponseTransform::Sqrt).with_terms(terms.clone()),
            ModelSpec::new(ResponseTransform::Log).with_terms(terms.clone()),
        ),
    ];
    format!(
        "Ablation: response transforms (median validation error)\n\n{}",
        run_variants(ctx, &variants)
    )
}

/// Ablation: training sample size (the paper's "1,000 samples suffice").
pub fn sample_size(ctx: &Context) -> String {
    let cfg = ctx.config();
    let sizes: Vec<usize> =
        [50usize, 100, 200, 500, 1_000].into_iter().filter(|&n| n <= cfg.train_samples).collect();
    let data = gather(ctx, cfg.train_samples, cfg.validation_samples);
    let mut terms = spline_terms(4, 3);
    terms.extend(interaction_terms());
    let perf_spec = ModelSpec::new(ResponseTransform::Sqrt).with_terms(terms.clone());
    let power_spec = ModelSpec::new(ResponseTransform::Log).with_terms(terms);
    let mut rows = Vec::new();
    for &n in &sizes {
        let sub = SharedData {
            train: data.train[..n].to_vec(),
            train_metrics: data.train_metrics.iter().map(|v| v[..n].to_vec()).collect(),
            valid: data.valid.clone(),
            valid_metrics: data.valid_metrics.clone(),
        };
        for (bi, b) in ABLATION_BENCHES.iter().enumerate() {
            let (pe, we) = variant_error(&sub, bi, &perf_spec, &power_spec);
            rows.push(vec![
                n.to_string(),
                b.name().to_string(),
                fmt(pe * 100.0, 1),
                fmt(we * 100.0, 1),
            ]);
        }
    }
    format!(
        "Ablation: training sample size (median validation error)\n\n{}",
        format_table(&["n_train", "bench", "perf_med_err%", "pow_med_err%"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interaction_ablation_runs_quick() {
        let ctx = Context::new(true);
        let s = interactions(&ctx);
        assert!(s.contains("no-interactions"));
        assert!(s.contains("paper"));
    }

    #[test]
    fn sample_size_ablation_monotone_header() {
        let ctx = Context::new(true);
        let s = sample_size(&ctx);
        assert!(s.contains("n_train"));
        assert!(s.contains("50"));
    }
}
