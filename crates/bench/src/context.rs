//! Shared experiment context: one oracle, one trained model suite.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use udse_core::studies::depth::DepthStudy;
use udse_core::studies::pareto::{self, Characterization};
use udse_core::studies::{StudyConfig, TrainedSuite};
use udse_core::{CachedOracle, Engine, SimOracle};

use crate::shard::{GroundTruth, ShardedOracle};

/// Lazily trains the nine benchmark model pairs once and shares them
/// across all experiment drivers, mirroring the paper's "formulated once,
/// used in multiple studies" workflow (§7). `Send + Sync` (lazy slots sit
/// behind mutexes), so one context can feed parallel drivers.
///
/// The ground truth behind the memoizing cache is a [`GroundTruth`]:
/// in-process simulation by default ([`Context::new`]), or fan-out to
/// `repro worker` child processes ([`Context::sharded`]). Because the
/// cache sits above the ground truth, every study batch dedups first and
/// then shards automatically.
#[derive(Debug)]
pub struct Context {
    oracle: CachedOracle<GroundTruth>,
    config: StudyConfig,
    suite: Mutex<Option<TrainedSuite>>,
    engine: Mutex<Option<Arc<Engine>>>,
    depth: Mutex<Option<DepthStudy>>,
    characterizations: Mutex<Option<Arc<Vec<Characterization>>>>,
}

/// Trace length used in quick mode (tests, smoke runs).
const QUICK_TRACE_LEN: usize = 20_000;

fn base(quick: bool) -> (SimOracle, StudyConfig) {
    if quick {
        (SimOracle::with_trace_len(QUICK_TRACE_LEN), StudyConfig::quick())
    } else {
        (SimOracle::new(), StudyConfig::paper())
    }
}

impl Context {
    /// Creates an in-process context. `quick` selects reduced sample
    /// counts and short traces for smoke runs; otherwise the paper-scale
    /// configuration is used (1,000 training samples, exhaustive
    /// evaluation).
    pub fn new(quick: bool) -> Self {
        let (oracle, config) = base(quick);
        Self::with_ground_truth(GroundTruth::Local(oracle), config)
    }

    /// Creates a context whose simulation batches fork to `shards`
    /// `repro worker` child processes (`exe` is the `repro` binary,
    /// `dir` receives plan/shard/manifest files, `worker_jobs` caps each
    /// worker's thread pool). Results are bitwise-identical to
    /// [`Context::new`] — see [`crate::shard`].
    pub fn sharded(
        quick: bool,
        shards: usize,
        exe: PathBuf,
        dir: PathBuf,
        worker_jobs: usize,
    ) -> Self {
        let (oracle, config) = base(quick);
        let sharded = ShardedOracle::new(oracle, shards, exe, dir, worker_jobs);
        Self::with_ground_truth(GroundTruth::Sharded(sharded), config)
    }

    fn with_ground_truth(oracle: GroundTruth, config: StudyConfig) -> Self {
        Context {
            oracle: CachedOracle::new(oracle),
            config,
            suite: Mutex::new(None),
            engine: Mutex::new(None),
            depth: Mutex::new(None),
            characterizations: Mutex::new(None),
        }
    }

    /// The ground-truth oracle (memoized: studies that revisit the same
    /// designs pay for each simulation once).
    pub fn oracle(&self) -> &CachedOracle<GroundTruth> {
        &self.oracle
    }

    /// The underlying simulation oracle (trace access, warmup length).
    pub fn sim_oracle(&self) -> &SimOracle {
        self.oracle.inner().sim()
    }

    /// The study configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// Returns the trained suite, training it on first use.
    ///
    /// # Panics
    ///
    /// Panics if model fitting fails (cannot happen for the paper spec on
    /// well-formed samples; indicates a configuration error).
    pub fn suite(&self) -> TrainedSuite {
        let mut slot = self.suite.lock().expect("suite slot poisoned");
        if slot.is_none() {
            let t0 = std::time::Instant::now();
            let suite = TrainedSuite::train(&self.oracle, &self.config)
                .expect("paper-standard models fit on UAR samples");
            udse_obs::info!(
                "context",
                "trained 9 benchmark model pairs on {} samples in {:.1}s",
                self.config.train_samples,
                t0.elapsed().as_secs_f64()
            );
            *slot = Some(suite);
        }
        slot.as_ref().expect("just trained").clone()
    }

    /// Returns the query engine over the trained suite, building it on
    /// first use. Every study driver routes its predictions through this
    /// one engine, so the full-space sweep is memoized once and repeated
    /// queries are LRU cache hits.
    pub fn engine(&self) -> Arc<Engine> {
        let suite = self.suite();
        let mut slot = self.engine.lock().expect("engine slot poisoned");
        if slot.is_none() {
            *slot = Some(Arc::new(Engine::new(suite, &self.config)));
        }
        Arc::clone(slot.as_ref().expect("just built"))
    }

    /// Returns the exploration-space characterizations of all nine
    /// benchmarks, slicing them out of the engine's memoized fused grid
    /// walk on first use (Figures 2–4 all consume them; see
    /// [`pareto::characterize_all`]).
    pub fn characterizations(&self) -> Arc<Vec<Characterization>> {
        let engine = self.engine();
        let mut slot = self.characterizations.lock().expect("characterization slot poisoned");
        if slot.is_none() {
            *slot = Some(Arc::new(pareto::characterize_all(&engine)));
        }
        Arc::clone(slot.as_ref().expect("just computed"))
    }

    /// Returns the §5 depth study, computing it on first use (four
    /// figures consume it).
    pub fn depth_study(&self) -> DepthStudy {
        let engine = self.engine();
        let mut slot = self.depth.lock().expect("depth slot poisoned");
        if slot.is_none() {
            *slot = Some(DepthStudy::run(&engine));
        }
        slot.as_ref().expect("just computed").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_trains() {
        let ctx = Context::new(true);
        let suite = ctx.suite();
        assert_eq!(suite.all_models().len(), 9);
        // Second call reuses the cached suite (cheap).
        let again = ctx.suite();
        assert_eq!(again.training_samples().len(), suite.training_samples().len());
    }

    #[test]
    fn engine_is_shared_across_calls() {
        let ctx = Context::new(true);
        let e1 = ctx.engine();
        let e2 = ctx.engine();
        assert!(Arc::ptr_eq(&e1, &e2), "one engine serves every driver");
    }

    #[test]
    fn characterizations_cover_all_benchmarks_and_cache() {
        let ctx = Context::new(true);
        let chs = ctx.characterizations();
        assert_eq!(chs.len(), 9);
        let again = ctx.characterizations();
        assert!(Arc::ptr_eq(&chs, &again), "second call reuses the cached sweep");
    }

    #[test]
    fn context_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Context>();
    }
}
