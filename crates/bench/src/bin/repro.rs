//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro [--quick] [--verbose] [--jobs N] [--shards N] [--shard-dir <dir>]
//!       [--csv <dir>] [--manifest <path>] [--trace <path>] <artifact>...
//! repro plan [--quick] [--out <path>]
//! repro query [--quick] [--jobs N] [--manifest <path>] (--file <path> | '<json>')
//! repro worker --plan <file> --shard i/N --out <file>
//!              [--manifest <path>] [--telemetry <path>] [--jobs W]
//!
//! artifacts:
//!   space     Table 1 design space summary
//!   baseline  Table 3 baseline machine
//!   fig1      validation error boxplots
//!   fig2      design space characterization
//!   fig3      pareto frontiers, predicted vs simulated
//!   fig4      frontier error distributions
//!   table2    per-benchmark bips^3/w optima
//!   fig5a     depth study: original line + enhanced boxplots
//!   fig5b     D-L1 distribution of top designs per depth
//!   fig6      depth study validation (efficiency)
//!   fig7      depth study validation (bips & watts)
//!   table4    K=4 compromise architectures
//!   fig8      optima vs compromises scatter
//!   fig9      heterogeneity gains vs cluster count
//!   search    heuristic search vs exhaustive prediction (paper §8)
//!   stalls    per-benchmark bottleneck attribution on the baseline
//!   assoc     cache-associativity extension (paper §8) + significance
//!   inorder   in-order vs out-of-order execution (paper §8)
//!   workloads synthetic-workload characterization diagnostics
//!   residuals residual analysis of the power model (paper §3)
//!   significance  coefficient t-tests for one fitted model
//!   ablations knots/interactions/transforms/sample-size ablations
//!   all       everything above
//! ```
//!
//! `--quick` uses reduced samples and short traces (smoke test); the
//! default is the paper-scale configuration (1,000 training samples,
//! exhaustive 262,500-point evaluation).
//!
//! `--jobs N` caps the simulation/fitting worker pool at `N` threads
//! (default: all available cores; `--jobs 1` runs fully sequentially on
//! the calling thread). Results are deterministic regardless of `N` —
//! every simulation is a pure function of its inputs and the pool
//! preserves input order — so parallel runs differ only in wall time.
//!
//! `--verbose` raises logging to `info` (equivalent to `UDSE_LOG=info`;
//! never lowers an explicit `UDSE_LOG`) and prints an end-of-run span
//! timing table to stderr. `--manifest <path>` writes a JSON run manifest
//! with per-artifact wall times, metric snapshots (simulated
//! instructions, oracle cache hits/misses, sweep throughput, …), span
//! totals, and model-quality records (`udse-inspect` consumes these).
//! `--trace <path>` records discrete span events (like `UDSE_TRACE=1`)
//! and writes them as Chrome `trace_event` JSON loadable in Perfetto;
//! combined with `--shards N` the written trace is the *merged*
//! multi-process timeline — parent plus one pid lane per worker shard,
//! with worker clocks normalized onto the parent's via the anchors in
//! their telemetry sidecars. Only the paper's tables and figures go to
//! stdout.
//!
//! `--shards N` distributes every simulation batch across `N` forked
//! `repro worker` child processes instead of in-process threads: each
//! batch becomes an on-disk evaluation plan (see `repro plan`), each
//! worker evaluates a deterministic contiguous job-ID slice and writes a
//! result shard plus its own manifest, and the parent reassembles the
//! shards in job-ID order. Outputs are bitwise-identical to `--jobs`-only
//! runs. `--shard-dir <dir>` (default `target/shards`) holds the plan,
//! shard, per-worker manifest, and telemetry sidecar files; aggregate
//! the manifests with `udse-inspect merge` and summarize a whole run
//! with `udse-inspect report`. While workers run, the parent tails
//! their sidecars: per-shard completion renders live on stderr, worker
//! log lines are prefixed `[shard i/N]`, and a worker silent past
//! `UDSE_STALL_SECS` (default 30) is flagged as a straggler/stall with
//! its last-known job. The `plan` and `worker` subcommands are the
//! pieces: `plan` emits the training plan document, `worker` evaluates
//! one shard of a plan file (the parent forks these, and a failed or
//! killed worker is reported with the exact command to retry).
//!
//! `query` answers a single design-space question from the command line:
//! it trains the model suite (or reuses nothing — training is cheap at
//! `--quick` scale), parses the canonical query JSON (inline argument or
//! `--file <path>`), executes it on the unified query engine, and prints
//! the canonical `QueryResult` JSON to stdout. Errors (malformed JSON,
//! unknown fields, invalid constraints) go to stderr with a non-zero
//! exit. `--manifest <path>` snapshots the engine's `query.*` counters
//! (executed, cache hits/misses, designs/sec) for `udse-inspect`.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use udse_bench::{
    ablations, csv_export, depth_figs, extensions, figures, hetero_figs, plot_export, Context,
};
use udse_core::report::format_table;
use udse_core::space::DesignSpace;
use udse_core::studies::TrainedSuite;
use udse_core::{EvalPlan, Oracle, Query, SimSpec};
use udse_obs::{cputime, sidecar, span, trace, Json, Level, ResultShard, RunManifest};
use udse_sim::MachineConfig;

// Count every heap allocation (parent and forked workers alike — the
// worker is this same binary) so manifests, telemetry sidecars, and
// span attribution report measured numbers instead of "not measured".
// See `udse_obs::alloc` for the near-zero disabled/enabled cost.
#[global_allocator]
static ALLOC: udse_obs::CountingAlloc = udse_obs::CountingAlloc::new();

fn print_space() -> String {
    let rows = vec![
        vec!["S1 depth (FO4)".into(), "9::3::36".into(), "10".into()],
        vec![
            "S2 width (decode/LSQ/SQ/FU)".into(),
            "(2,15,14,1) (4,30,28,2) (8,45,42,4)".into(),
            "3".into(),
        ],
        vec![
            "S3 registers (GPR/FPR/SPR)".into(),
            "40::10::130 / 40::8::112 / 42::6::96".into(),
            "10".into(),
        ],
        vec![
            "S4 reservations (BR/FX/FP)".into(),
            "6::1::15 / 10::2::28 / 5::1::14".into(),
            "10".into(),
        ],
        vec!["S5 I-L1 (KB)".into(), "16::2x::256".into(), "5".into()],
        vec!["S6 D-L1 (KB)".into(), "8::2x::128".into(), "5".into()],
        vec!["S7 L2 (MB)".into(), "0.25::2x::4".into(), "5".into()],
    ];
    format!(
        "Table 1: design space ({} sampling points, {} exploration points)\n\n{}",
        DesignSpace::paper().len(),
        DesignSpace::exploration().len(),
        format_table(&["set", "range", "|Si|"], &rows)
    )
}

fn print_baseline() -> String {
    let cfg = MachineConfig::power4_baseline();
    let t = cfg.timing();
    format!(
        "Table 3: POWER4-like baseline\n\n\
         depth: {} FO4/stage ({:.2} GHz, {} front-end stages)\n\
         width: {}-decode / {}-dispatch, {} units per class\n\
         registers: {} GPR, {} FPR, {} SPR\n\
         reservations: BR {}, FX {}, FP {}; LSQ {}, SQ {}\n\
         caches: I-L1 {} KB ({}-way), D-L1 {} KB ({}-way), L2 {} KB ({}-way)\n\
         latencies (cycles): L1D {}, L2 {}, memory {}\n\
         predictor: {} x 1-bit BHT; ROB {}\n",
        cfg.fo4_per_stage,
        t.frequency_ghz,
        t.front_stages,
        cfg.decode_width,
        cfg.dispatch_width(),
        cfg.units_per_class,
        cfg.gpr,
        cfg.fpr,
        cfg.spr,
        cfg.resv_br,
        cfg.resv_fx,
        cfg.resv_fp,
        cfg.lsq_entries,
        cfg.store_queue_entries,
        cfg.il1_kb,
        cfg.il1_assoc,
        cfg.dl1_kb,
        cfg.dl1_assoc,
        cfg.l2_kb,
        cfg.l2_assoc,
        t.dl1_latency,
        t.l2_latency,
        t.memory_latency,
        cfg.bht_entries,
        cfg.rob_entries,
    )
}

fn run(artifact: &str, ctx: &Context) -> Result<(), String> {
    let out = match artifact {
        "space" => print_space(),
        "baseline" => print_baseline(),
        "fig1" => figures::fig1(ctx),
        "fig2" => figures::fig2(ctx),
        "fig3" => figures::fig3(ctx),
        "fig4" => figures::fig4(ctx),
        "table2" => figures::table2(ctx),
        "fig5a" => depth_figs::fig5a(ctx),
        "fig5b" => depth_figs::fig5b(ctx),
        "fig6" => depth_figs::fig6(ctx),
        "fig7" => depth_figs::fig7(ctx),
        "table4" => hetero_figs::table4(ctx),
        "fig8" => hetero_figs::fig8(ctx),
        "fig9" => hetero_figs::fig9(ctx),
        "search" => extensions::search(ctx),
        "stalls" => extensions::stalls(ctx),
        "assoc" => extensions::associativity(ctx),
        "inorder" => extensions::inorder(ctx),
        "workloads" => extensions::workloads(ctx),
        "residuals" => extensions::residuals(ctx),
        "significance" => extensions::significance(ctx),
        "ablations" => format!(
            "{}\n{}\n{}\n{}",
            ablations::knots(ctx),
            ablations::interactions(ctx),
            ablations::transforms(ctx),
            ablations::sample_size(ctx)
        ),
        other => return Err(format!("unknown artifact `{other}` (try --help)")),
    };
    println!("{out}");
    Ok(())
}

const ALL: [&str; 22] = [
    "space",
    "baseline",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "table2",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7",
    "table4",
    "fig8",
    "fig9",
    "search",
    "stalls",
    "assoc",
    "inorder",
    "workloads",
    "residuals",
    "significance",
    "ablations",
];

const USAGE: &str = "usage: repro [--quick] [--verbose] [--jobs N] [--shards N] \
     [--shard-dir <dir>] [--csv <dir>] [--manifest <path>] [--trace <path>] <artifact>...";

const PLAN_USAGE: &str = "usage: repro plan [--quick] [--out <path>]";

const QUERY_USAGE: &str =
    "usage: repro query [--quick] [--jobs N] [--manifest <path>] (--file <path> | '<json>')";

const WORKER_USAGE: &str = "usage: repro worker --plan <file> --shard i/N --out <file> \
     [--manifest <path>] [--telemetry <path>] [--jobs W]";

/// `repro plan`: emit the canonical training evaluation plan as JSON, to
/// stdout or `--out <path>`. The document is what `repro worker`
/// consumes and what `--shards` writes per batch.
fn plan_main(args: &[String]) -> ExitCode {
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{PLAN_USAGE}");
        return ExitCode::SUCCESS;
    }
    let ctx = Context::new(quick);
    let plan = TrainedSuite::training_plan(ctx.config());
    let doc = plan.to_json(&SimSpec::of(ctx.sim_oracle())).to_string_pretty();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    match out {
        Some(path) => match udse_obs::manifest::write_with_parents(&path, &doc) {
            Ok(()) => {
                udse_obs::info!("plan", "wrote {} jobs to {}", plan.len(), path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                udse_obs::error!("plan", "cannot write plan: {e}");
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{doc}");
            ExitCode::SUCCESS
        }
    }
}

/// `repro query`: execute one canonical query JSON document against the
/// unified query engine and print the canonical result JSON. Exit codes:
/// 0 on success, 1 for usage/IO problems, 2 when the query itself is
/// rejected (parse error or engine validation).
fn query_main(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{QUERY_USAGE}");
        return ExitCode::SUCCESS;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let value = |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1));
    if let Some(v) = value("--jobs") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => udse_obs::pool::set_max_workers(n),
            _ => {
                eprintln!("--jobs expects a positive integer\n{QUERY_USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    // The query text is either the one positional argument or --file.
    let mut skip_next = false;
    let mut positional: Vec<&String> = Vec::new();
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--jobs" || a == "--manifest" || a == "--file" {
            skip_next = true;
            continue;
        }
        if !a.starts_with('-') {
            positional.push(a);
        }
    }
    let text = match (value("--file"), positional.as_slice()) {
        (Some(path), []) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                udse_obs::error!("query", "cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, [inline]) => (*inline).clone(),
        _ => {
            eprintln!("expected exactly one query: inline JSON or --file <path>\n{QUERY_USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let query = match Query::parse(&text) {
        Ok(q) => q,
        Err(e) => {
            udse_obs::error!("query", "invalid query: {e}");
            return ExitCode::from(2);
        }
    };
    let ctx = Context::new(quick);
    let started = std::time::Instant::now();
    let engine = ctx.engine();
    let result = match engine.execute(&query) {
        Ok(r) => r,
        Err(e) => {
            udse_obs::error!("query", "{e}");
            return ExitCode::from(2);
        }
    };
    // Pretty output already ends in a newline; `print!` avoids a blank
    // trailing line so stdout is byte-stable for smoke-test diffs.
    print!("{}", result.to_json().to_string_pretty());
    if let Some(mpath) = value("--manifest") {
        let mut manifest = RunManifest::new("repro-query");
        manifest.set("quick", Json::Bool(quick));
        manifest.set("seed", Json::Int(ctx.config().seed as i64));
        manifest.set("eval_stride", Json::Int(ctx.config().eval_stride as i64));
        manifest.record_artifact("query", started.elapsed().as_secs_f64());
        if let Err(e) = manifest.write_to_path(std::path::Path::new(mpath.as_str())) {
            udse_obs::error!("query", "cannot write manifest: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `repro worker`: evaluate one deterministic contiguous shard of a plan
/// file and write the result shard (and optionally a worker manifest).
/// The parent `repro --shards N` forks these; the exit code tells it
/// whether the shard file is trustworthy.
fn worker_main(args: &[String]) -> ExitCode {
    let value = |flag: &str| args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1));
    let (Some(plan_path), Some(shard_arg), Some(out_path)) =
        (value("--plan"), value("--shard"), value("--out"))
    else {
        eprintln!("{WORKER_USAGE}");
        return ExitCode::FAILURE;
    };
    let parsed = shard_arg
        .split_once('/')
        .and_then(|(i, n)| Some((i.parse::<usize>().ok()?, n.parse::<usize>().ok()?)));
    let Some((index, count)) = parsed.filter(|&(i, n)| n >= 1 && i < n) else {
        eprintln!("--shard expects i/N with i < N\n{WORKER_USAGE}");
        return ExitCode::FAILURE;
    };
    if let Some(v) = value("--jobs") {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => udse_obs::pool::set_max_workers(n),
            _ => {
                eprintln!("--jobs expects a positive integer\n{WORKER_USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let text = match std::fs::read_to_string(plan_path) {
        Ok(t) => t,
        Err(e) => {
            udse_obs::error!("worker", "cannot read plan {plan_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (plan, spec) = match EvalPlan::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            udse_obs::error!("worker", "plan {plan_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let oracle = spec.build();
    let range = plan.shard_range(index, count);
    let started = std::time::Instant::now();
    // The parent re-emits worker stderr under a `[shard i/N]` prefix, so
    // this line both announces the range and proves log attribution.
    udse_obs::info!(
        "worker",
        "shard {index}/{count} of plan `{}`: {} jobs",
        plan.label(),
        range.len()
    );
    // Telemetry sidecar: meta first, then heartbeats from a companion
    // thread while evaluation runs, then spans/events/summary at exit.
    // Telemetry failures must never take down the work itself, so a
    // sidecar that cannot be created is warned about and skipped.
    let writer = value("--telemetry").and_then(|tpath| {
        let meta = sidecar::SidecarMeta {
            pid: std::process::id() as u64,
            plan_label: plan.label().to_string(),
            shard_index: index as u64,
            shard_count: count as u64,
            jobs: range.len() as u64,
            anchor_unix_us: udse_obs::trace::anchor_unix_us(),
        };
        match sidecar::SidecarWriter::create(std::path::Path::new(tpath.as_str()), &meta) {
            Ok(w) => Some(w),
            Err(e) => {
                udse_obs::warn!("worker", "telemetry disabled: {e}");
                None
            }
        }
    });
    let total = range.len() as u64;
    let done = AtomicU64::new(0);
    // Last completed plan-global job id, offset by one so 0 means none.
    let last_job = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let beat = |writer: &sidecar::SidecarWriter| {
        let job = last_job.load(Ordering::Relaxed);
        writer.heartbeat(&sidecar::Heartbeat {
            t_us: udse_obs::trace::since_anchor_us(),
            done: done.load(Ordering::Relaxed),
            total,
            last_job: job.checked_sub(1),
            rss_kb: cputime::read_rss_kb(),
        });
    };
    let mut metrics = Vec::with_capacity(range.len());
    std::thread::scope(|scope| {
        if let Some(writer) = &writer {
            beat(writer);
            scope.spawn(|| {
                let interval = std::env::var("UDSE_HEARTBEAT_MS")
                    .ok()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|ms| *ms > 0)
                    .unwrap_or(250);
                let slice = std::time::Duration::from_millis(10);
                let mut slept = 0;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(slice);
                    slept += 10;
                    if slept >= interval {
                        slept = 0;
                        beat(writer);
                    }
                }
            });
        }
        // Evaluate in job-id-ordered chunks so the heartbeat counters
        // advance mid-shard. Every job is a pure function and chunks
        // concatenate in input order, so the chunk size cannot affect
        // the assembled values — only heartbeat granularity.
        let _w = span::enter("worker");
        let chunk = range.len().div_ceil(64).max(udse_obs::pool::max_workers()).max(1);
        let mut at = range.start;
        while at < range.end {
            let upto = (at + chunk).min(range.end);
            metrics.extend(oracle.evaluate_many(&plan.jobs()[at..upto]));
            done.store((upto - range.start) as u64, Ordering::Relaxed);
            last_job.store(upto as u64, Ordering::Relaxed);
            at = upto;
        }
        drop(_w);
        stop.store(true, Ordering::Relaxed);
    });
    if let Some(writer) = &writer {
        beat(writer);
    }
    let rows: Vec<(u64, Vec<f64>)> =
        range.clone().zip(&metrics).map(|(id, m)| (id as u64, vec![m.bips, m.watts])).collect();
    let shard =
        match ResultShard::new(plan.label(), plan.len() as u64, index as u64, count as u64, rows) {
            Ok(s) => s,
            Err(e) => {
                udse_obs::error!("worker", "shard {index}/{count} of plan `{}`: {e}", plan.label());
                return ExitCode::FAILURE;
            }
        };
    if let Err(e) = shard.write_to_path(std::path::Path::new(out_path.as_str())) {
        udse_obs::error!("worker", "cannot write result shard: {e}");
        return ExitCode::FAILURE;
    }
    let dropped = udse_obs::trace::global().dropped();
    if let Some(mpath) = value("--manifest") {
        // Trace-buffer overflow is a counter, so the manifest snapshot
        // (and any later `udse-inspect diff`) sees it, not just stderr.
        udse_obs::metrics::counter("trace.dropped_events").add(dropped);
        let mut manifest = RunManifest::new("repro-worker");
        manifest.set("plan", Json::str(plan.label()));
        manifest.set("shard_index", Json::Int(index as i64));
        manifest.set("shard_count", Json::Int(count as i64));
        manifest.set("trace_len", Json::Int(spec.trace_len as i64));
        manifest.set("seed", Json::Int(spec.seed as i64));
        manifest.record_artifact("worker", started.elapsed().as_secs_f64());
        if let Err(e) = manifest.write_to_path(std::path::Path::new(mpath.as_str())) {
            udse_obs::error!("worker", "cannot write manifest: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(writer) = &writer {
        let spans = sidecar::span_lines(&span::global().snapshot());
        let events = if udse_obs::trace::enabled() {
            udse_obs::trace::global().snapshot()
        } else {
            Vec::new()
        };
        let stats = udse_obs::alloc::stats();
        let summary = sidecar::Summary {
            done: done.load(Ordering::Relaxed),
            wall_us: udse_obs::trace::since_anchor_us(),
            dropped_events: dropped,
            cpu_us: cputime::process_cpu_us(),
            allocs: udse_obs::alloc::counting().then_some(stats.allocs),
            alloc_bytes: udse_obs::alloc::counting().then_some(stats.bytes_allocated),
            peak_rss_kb: cputime::peak_rss_kb(),
            // Memo effectiveness travels with the shard: a worker only
            // sees its own job range, so the parent needs these to
            // judge sub-config reuse across the whole plan.
            precompute_hits: Some(udse_obs::metrics::counter("sim.precompute.hits").get()),
            precompute_misses: Some(udse_obs::metrics::counter("sim.precompute.misses").get()),
        };
        if let Err(e) = writer.finish(&spans, &events, &summary) {
            udse_obs::warn!("worker", "telemetry incomplete: {e}");
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    udse_obs::log::init();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("plan") => return plan_main(&args[1..]),
        Some("query") => return query_main(&args[1..]),
        Some("worker") => return worker_main(&args[1..]),
        _ => {}
    }
    let quick = args.iter().any(|a| a == "--quick");
    let verbose = args.iter().any(|a| a == "--verbose" || a == "-v");
    if verbose {
        udse_obs::log::raise_level(Level::Info);
    }
    // --csv <dir>: also export tabular series next to the text output.
    let arg_value = |flag: &str| -> Option<std::path::PathBuf> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(std::path::PathBuf::from)
    };
    let csv_dir = arg_value("--csv");
    let manifest_path = arg_value("--manifest");
    let trace_path = arg_value("--trace");
    if trace_path.is_some() {
        udse_obs::trace::enable();
    }
    // --jobs N: cap the simulation/fitting worker pool. Default is all
    // available cores; 1 restores fully sequential execution.
    let jobs = match arg_value("--jobs") {
        Some(v) => match v.to_string_lossy().parse::<usize>() {
            Ok(n) if n >= 1 => {
                udse_obs::pool::set_max_workers(n);
                n
            }
            _ => {
                eprintln!("--jobs expects a positive integer\n{USAGE}");
                return ExitCode::FAILURE;
            }
        },
        None => udse_obs::pool::max_workers(),
    };
    // --shards N: fork every simulation batch across N worker processes
    // (bitwise-identical results; see the module docs above).
    let shards = match arg_value("--shards") {
        Some(v) => match v.to_string_lossy().parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                eprintln!("--shards expects a positive integer\n{USAGE}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let shard_dir =
        arg_value("--shard-dir").unwrap_or_else(|| std::path::PathBuf::from("target/shards"));
    let mut skip_next = false;
    let mut artifacts: Vec<&str> = Vec::new();
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--csv"
            || a == "--manifest"
            || a == "--trace"
            || a == "--jobs"
            || a == "--shards"
            || a == "--shard-dir"
        {
            skip_next = true;
            continue;
        }
        if !a.starts_with('-') {
            artifacts.push(a.as_str());
        }
    }
    if args.iter().any(|a| a == "--help" || a == "-h") || artifacts.is_empty() {
        eprintln!("{USAGE}\nartifacts: {} all", ALL.join(" "));
        return if artifacts.is_empty() { ExitCode::FAILURE } else { ExitCode::SUCCESS };
    }
    if artifacts.contains(&"all") {
        artifacts = ALL.to_vec();
    }
    let ctx = match shards {
        Some(n) => {
            let exe = match std::env::current_exe() {
                Ok(p) => p,
                Err(e) => {
                    udse_obs::error!("repro", "cannot locate own binary for --shards: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Split the thread budget so N workers do not oversubscribe
            // the machine N-fold.
            let worker_jobs = jobs.div_ceil(n).max(1);
            Context::sharded(quick, n, exe, shard_dir.clone(), worker_jobs)
        }
        None => Context::new(quick),
    };
    let mut manifest = RunManifest::new("repro");
    manifest.set("quick", Json::Bool(quick));
    manifest.set("jobs", Json::Int(jobs as i64));
    manifest.set("shards", Json::Int(shards.unwrap_or(1) as i64));
    manifest.set("seed", Json::Int(ctx.config().seed as i64));
    manifest.set("train_samples", Json::Int(ctx.config().train_samples as i64));
    manifest.set("eval_stride", Json::Int(ctx.config().eval_stride as i64));
    manifest.set("trace_len", Json::Int(ctx.sim_oracle().trace_len() as i64));
    let t0 = std::time::Instant::now();
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            udse_obs::error!("repro", "cannot create csv directory {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    for artifact in artifacts {
        println!("==================== {artifact} ====================");
        let started = std::time::Instant::now();
        let guard = span::enter(artifact);
        let outcome = run(artifact, &ctx);
        drop(guard);
        if let Err(e) = outcome {
            udse_obs::error!("repro", "{e}");
            return ExitCode::FAILURE;
        }
        manifest.record_artifact(artifact, started.elapsed().as_secs_f64());
        if let Some(dir) = &csv_dir {
            match csv_export::export(&ctx, artifact, dir) {
                Ok(Some(path)) => udse_obs::info!("csv", "wrote {}", path.display()),
                Ok(None) => {}
                Err(e) => {
                    udse_obs::error!("repro", "csv export for {artifact}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            match plot_export::export(artifact, dir) {
                Ok(Some(path)) => udse_obs::info!("gp", "wrote {}", path.display()),
                Ok(None) => {}
                Err(e) => {
                    udse_obs::error!("repro", "gnuplot export for {artifact}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    manifest.set(
        "oracle_cache",
        Json::obj([
            ("hits", Json::Int(ctx.oracle().hits() as i64)),
            ("misses", Json::Int(ctx.oracle().misses() as i64)),
        ]),
    );
    // Surface trace-buffer overflow as a counter so the manifest (and
    // the diff gate reading it) records it, not just a stderr warning.
    let dropped = trace::global().dropped();
    if trace::enabled() {
        udse_obs::metrics::counter("trace.dropped_events").add(dropped);
    }
    // Allocation totals as counters so `udse-inspect diff
    // --tol-resource alloc.bytes:pct[:floor]` can gate allocation
    // regressions between runs (the `resources` section carries the
    // same totals; counters additionally merge across shard manifests).
    if udse_obs::alloc::counting() {
        let a = udse_obs::alloc::stats();
        udse_obs::metrics::counter("alloc.count").add(a.allocs);
        udse_obs::metrics::counter("alloc.bytes").add(a.bytes_allocated);
    }
    if let Some(path) = &manifest_path {
        match manifest.write_to_path(path) {
            Ok(()) => udse_obs::info!("repro", "wrote manifest {}", path.display()),
            Err(e) => {
                udse_obs::error!("repro", "cannot write manifest: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &trace_path {
        let events = trace::global().snapshot();
        if dropped > 0 {
            udse_obs::warn!("repro", "trace buffer full: {dropped} events dropped");
        }
        // Sharded runs merge every worker's sidecar events onto the
        // parent's timeline, one pid lane per shard index, clocks
        // normalized via the sidecar anchors.
        let doc = if shards.is_some() {
            let (sidecars, problems) = sidecar::collect(&shard_dir);
            for problem in &problems {
                udse_obs::warn!("repro", "trace merge: {problem}");
            }
            let mut worker_traces = Vec::new();
            let mut lanes = vec![(trace::PARENT_PID, "repro (parent)".to_string())];
            for (spath, doc) in &sidecars {
                let Some(meta) = &doc.meta else {
                    udse_obs::warn!("repro", "trace merge: {} has no meta", spath.display());
                    continue;
                };
                let lane = meta.shard_index;
                if !lanes.iter().any(|(pid, _)| *pid == trace::worker_pid(lane)) {
                    lanes.push((trace::worker_pid(lane), format!("worker shard {lane}")));
                }
                worker_traces.push(trace::WorkerTrace {
                    lane,
                    anchor_unix_us: meta.anchor_unix_us,
                    events: doc.events.clone(),
                });
            }
            lanes.sort_by_key(|(pid, _)| *pid);
            let merged =
                trace::merge_process_traces(&events, trace::anchor_unix_us(), &worker_traces);
            udse_obs::info!(
                "repro",
                "merged {} worker sidecar(s) into the trace ({} lanes)",
                worker_traces.len(),
                lanes.len()
            );
            trace::chrome_trace_json_named(&merged, &lanes)
        } else {
            trace::chrome_trace_json(&events)
        };
        match udse_obs::manifest::write_with_parents(path, &doc.to_string_pretty()) {
            Ok(()) => {
                udse_obs::info!(
                    "repro",
                    "wrote {} trace events to {}",
                    events.len(),
                    path.display()
                );
            }
            Err(e) => {
                udse_obs::error!("repro", "cannot write trace: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if udse_obs::log::enabled(Level::Info) {
        if let Some(table) = span::global().report_table() {
            eprintln!("\n{table}");
        }
    }
    udse_obs::info!("repro", "completed in {:.1}s", t0.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
